"""Tests for the memory server (§3.1): segments, processes, remote exec."""

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.errors import (
    BadRequest,
    InvalidCapability,
    OutOfSpace,
    PermissionDenied,
    ProcessStateError,
)
from repro.kernel.machine import Machine
from repro.kernel.memory import R_CTL, R_READ, R_WRITE, MemoryClient
from repro.net.network import SimNetwork


@pytest.fixture
def world():
    net = SimNetwork()
    server_machine = Machine(net, rng=RandomSource(seed=1), memory_capacity=1 << 16)
    client_machine = Machine(net, rng=RandomSource(seed=2),
                             with_memory_server=False)
    memory = client_machine.memory_client(remote_port=server_machine.memory_port)
    return net, server_machine, client_machine, memory


class TestSegments:
    def test_create_write_read(self, world):
        _, _, _, memory = world
        seg = memory.create_segment(1024)
        memory.write(seg, 100, b"stack data")
        assert memory.read(seg, 100, 10) == b"stack data"

    def test_initial_contents(self, world):
        _, _, _, memory = world
        seg = memory.create_segment(64, initial=b"text segment")
        assert memory.read(seg, 0, 12) == b"text segment"

    def test_initial_larger_than_size(self, world):
        _, _, _, memory = world
        with pytest.raises(BadRequest):
            memory.create_segment(4, initial=b"too much data")

    def test_segment_size(self, world):
        _, _, _, memory = world
        seg = memory.create_segment(777)
        assert memory.segment_size(seg) == 777

    def test_bounds_enforced(self, world):
        _, _, _, memory = world
        seg = memory.create_segment(16)
        with pytest.raises(BadRequest):
            memory.read(seg, 10, 10)
        with pytest.raises(BadRequest):
            memory.write(seg, 14, b"xxx")

    def test_capacity_enforced(self, world):
        _, _, _, memory = world
        memory.create_segment(1 << 15)
        with pytest.raises(OutOfSpace):
            memory.create_segment(1 << 15 + 1)

    def test_destroy_releases_capacity(self, world):
        _, server_machine, _, memory = world
        seg = memory.create_segment(1 << 15)
        used_before = server_machine.memory_server.used
        memory.destroy(seg)
        assert server_machine.memory_server.used == used_before - (1 << 15)

    def test_rights_enforced(self, world):
        _, _, _, memory = world
        seg = memory.create_segment(64)
        read_only = memory.restrict(seg, R_READ)
        assert memory.read(read_only, 0, 4) == bytes(4)
        with pytest.raises(PermissionDenied):
            memory.write(read_only, 0, b"nope")

    def test_electronic_disk_usage(self, world):
        """§3.1: a big segment read and written at offsets IS a disk."""
        _, _, _, memory = world
        disk = memory.create_segment(8192)
        block = 512
        memory.write(disk, 3 * block, b"sector three")
        memory.write(disk, 7 * block, b"sector seven")
        assert memory.read(disk, 3 * block, 12) == b"sector three"
        assert memory.read(disk, 7 * block, 12) == b"sector seven"


class TestProcesses:
    def test_make_process_from_segments(self, world):
        """The §3.1 walkthrough: CREATE SEGMENT (text, data, stack) then
        MAKE PROCESS with the capabilities as parameters."""
        _, _, _, memory = world
        text = memory.create_segment(128, initial=b"code")
        data = memory.create_segment(128, initial=b"globals")
        stack = memory.create_segment(256)
        proc = memory.make_process("child", [text, data, stack])
        assert "child" in memory.process_info(proc)
        assert "segments=3" in memory.process_info(proc)

    def test_start_stop(self, world):
        _, _, _, memory = world
        seg = memory.create_segment(16)
        proc = memory.make_process("p", [seg])
        assert memory.start(proc) == "running"
        assert memory.stop(proc) == "stopped"

    def test_double_start_is_state_error(self, world):
        _, _, _, memory = world
        proc = memory.make_process("p", [memory.create_segment(16)])
        memory.start(proc)
        with pytest.raises(ProcessStateError):
            memory.start(proc)

    def test_process_control_needs_ctl_right(self, world):
        _, _, _, memory = world
        proc = memory.make_process("p", [memory.create_segment(16)])
        observer = memory.restrict(proc, R_READ)
        with pytest.raises(PermissionDenied):
            memory.start(observer)
        assert "stopped" in memory.process_info(observer)

    def test_foreign_segment_capability_rejected(self, world):
        net, server_machine, client_machine, memory = world
        other = Machine(net, rng=RandomSource(seed=3), memory_capacity=1 << 16)
        other_memory = client_machine.memory_client(remote_port=other.memory_port)
        foreign_seg = other_memory.create_segment(16)
        with pytest.raises(InvalidCapability):
            memory.make_process("p", [foreign_seg])

    def test_segment_cap_without_read_right_rejected(self, world):
        _, _, _, memory = world
        seg = memory.create_segment(16)
        no_read = memory.restrict(seg, R_WRITE)
        with pytest.raises(PermissionDenied):
            memory.make_process("p", [no_read])

    def test_process_cap_cannot_read_segments(self, world):
        _, _, _, memory = world
        proc = memory.make_process("p", [memory.create_segment(16)])
        with pytest.raises(BadRequest):
            memory.read(proc, 0, 4)


class TestRemoteProcessCreation:
    def test_child_on_chosen_machine(self, world):
        """'By directing the CREATE SEGMENT requests to a memory server on
        a remote machine, the parent can create the child wherever it
        wants to.'"""
        net, server_machine, client_machine, _ = world
        far = Machine(net, rng=RandomSource(seed=4), memory_capacity=1 << 16)
        for target in (server_machine, far):
            memory = client_machine.memory_client(remote_port=target.memory_port)
            seg = memory.create_segment(64, initial=b"program text")
            proc = memory.make_process("remote-child", [seg])
            assert memory.start(proc) == "running"
            # The process object lives in the *target* machine's table.
            assert proc.port == target.memory_port


class TestDescribe:
    def test_info_distinguishes_kinds(self, world):
        _, _, _, memory = world
        seg = memory.create_segment(64)
        proc = memory.make_process("p", [seg])
        assert "segment" in memory.info(seg)
        assert "process" in memory.info(proc)
