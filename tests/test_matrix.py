"""Tests for §2.4 software protection: key matrix, sealing, caches.

The headline property: a capability captured on the wire and replayed
from a different source machine decrypts under the wrong matrix key and
is rejected — "No matter what the intruder does, he cannot trick the
server into using a decryption key that decrypts the capabilities to
make sense."
"""

import pytest

from repro.core.capability import Capability
from repro.core.ports import Port
from repro.core.rights import Rights
from repro.crypto.randomsrc import RandomSource
from repro.errors import (
    AmoebaError,
    InvalidCapability,
    NoSuchObject,
    SecurityError,
)
from repro.ipc.client import ServiceClient
from repro.ipc.locate import Locator, install_locate_responder
from repro.ipc.server import ObjectServer
from repro.ipc.stdops import STD_INFO
from repro.net.intruder import Intruder
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.softprot.cache import ClientCapabilityCache, ServerCapabilityCache
from repro.softprot.matrix import CapabilitySealer, KeyMatrix, MachineKeyView


def make_cap(check=b"\x11" * 6):
    return Capability(port=Port(42), object=7, rights=Rights(0x0F), check=check)


class TestKeyMatrix:
    def test_keys_are_per_direction(self):
        matrix = KeyMatrix(rng=RandomSource(seed=1))
        assert matrix.key(1, 2) != matrix.key(2, 1)

    def test_keys_stable(self):
        matrix = KeyMatrix(rng=RandomSource(seed=1))
        assert matrix.key(1, 2) == matrix.key(1, 2)

    def test_view_knows_row_and_column_only(self):
        matrix = KeyMatrix(rng=RandomSource(seed=1))
        view = matrix.view(5)
        view.key(5, 9)
        view.key(9, 5)
        with pytest.raises(SecurityError):
            view.key(1, 2)

    def test_set_key_validates_length(self):
        matrix = KeyMatrix(rng=RandomSource(seed=1))
        with pytest.raises(ValueError):
            matrix.set_key(1, 2, b"short")


class TestSealer:
    @pytest.fixture
    def sealers(self):
        matrix = KeyMatrix(rng=RandomSource(seed=2))
        client = CapabilitySealer(matrix.view(1))
        server = CapabilitySealer(matrix.view(2))
        return client, server

    def test_seal_unseal_roundtrip(self, sealers):
        client, server = sealers
        cap = make_cap()
        sealed = client.seal(cap, dst=2)
        assert server.unseal(sealed, src=1) == cap

    def test_sealed_bytes_hide_the_capability(self, sealers):
        client, _ = sealers
        cap = make_cap()
        sealed = client.seal(cap, dst=2)
        assert cap.check not in sealed
        assert cap.port.to_bytes() not in sealed

    def test_wrong_source_decrypts_to_garbage(self, sealers):
        client, server = sealers
        cap = make_cap()
        sealed = client.seal(cap, dst=2)
        # Replayed from machine 3: key M[3][2] is wrong.  The result is
        # either structural garbage or a semantically wrong capability.
        try:
            garbled = server.unseal(sealed, src=3)
        except InvalidCapability:
            return
        assert garbled != cap

    def test_extended_capabilities_seal_too(self, sealers):
        client, server = sealers
        cap = make_cap(check=b"\x77" * 64)
        sealed = client.seal(cap, dst=2)
        assert server.unseal(sealed, src=1) == cap

    def test_seal_message_moves_all_capabilities(self, sealers):
        client, server = sealers
        header = make_cap(b"\x01" * 6)
        extra = make_cap(b"\x02" * 6)
        message = Message(capability=header, extra_caps=(extra,), data=b"d")
        sealed = client.seal_message(message, dst=2)
        assert sealed.capability is None
        assert sealed.extra_caps == ()
        assert sealed.sealed_caps
        back = server.unseal_message(sealed, src=1)
        assert back.capability == header
        assert back.extra_caps == (extra,)
        assert back.data == b"d"

    def test_seal_message_without_caps_is_identity(self, sealers):
        client, _ = sealers
        message = Message(data=b"nothing to seal")
        assert client.seal_message(message, dst=2) is message

    def test_extra_caps_only(self, sealers):
        client, server = sealers
        extra = make_cap(b"\x03" * 6)
        message = Message(extra_caps=(extra,))
        back = server.unseal_message(client.seal_message(message, dst=2), src=1)
        assert back.capability is None
        assert back.extra_caps == (extra,)

    def test_truncated_blob_rejected(self, sealers):
        _, server = sealers
        with pytest.raises(InvalidCapability):
            server.unseal_message(Message(sealed_caps=b"\x01"), src=1)


class TestCaches:
    def test_client_cache_skips_cipher(self):
        matrix = KeyMatrix(rng=RandomSource(seed=3))
        sealer = CapabilitySealer(
            matrix.view(1), client_cache=ClientCapabilityCache()
        )
        cap = make_cap()
        sealer.seal(cap, dst=2)
        ops_after_first = sealer.cipher_ops
        sealer.seal(cap, dst=2)
        assert sealer.cipher_ops == ops_after_first
        assert sealer.client_cache.hits == 1

    def test_server_cache_skips_cipher(self):
        matrix = KeyMatrix(rng=RandomSource(seed=3))
        client = CapabilitySealer(matrix.view(1))
        server = CapabilitySealer(
            matrix.view(2), server_cache=ServerCapabilityCache()
        )
        sealed = client.seal(make_cap(), dst=2)
        server.unseal(sealed, src=1)
        ops = server.cipher_ops
        server.unseal(sealed, src=1)
        assert server.cipher_ops == ops

    def test_cache_keyed_by_destination(self):
        matrix = KeyMatrix(rng=RandomSource(seed=3))
        sealer = CapabilitySealer(
            matrix.view(1), client_cache=ClientCapabilityCache()
        )
        cap = make_cap()
        assert sealer.seal(cap, dst=2) != sealer.seal(cap, dst=3)
        assert sealer.cipher_ops == 2

    def test_invalidate_object_purges_both_caches(self):
        matrix = KeyMatrix(rng=RandomSource(seed=3))
        client = CapabilitySealer(
            matrix.view(1), client_cache=ClientCapabilityCache()
        )
        server = CapabilitySealer(
            matrix.view(2), server_cache=ServerCapabilityCache()
        )
        cap = make_cap()
        other = Capability(
            port=Port(42), object=8, rights=Rights(0x0F), check=b"\x22" * 6
        )
        sealed = client.seal(cap, dst=2)
        client.seal(other, dst=2)
        server.unseal(sealed, src=1)
        assert client.invalidate_object(cap.port, cap.object) == 1
        assert server.invalidate_object(cap.port, cap.object) == 1
        # The revoked object's triples are gone; unrelated ones remain.
        assert len(client.client_cache) == 1
        assert len(server.server_cache) == 0
        # Re-sealing and re-unsealing must hit the cipher again.
        ops = client.cipher_ops
        client.seal(cap, dst=2)
        assert client.cipher_ops == ops + 1


class TestRevokeThenReplay:
    """Regression: cached (sealed, source) triples must not survive
    ``ObjectTable.refresh`` — the cache exists to *accelerate* the §2.4
    mechanism, never to outlive a revocation."""

    def test_table_refresh_purges_server_cache(self):
        from repro.core.registry import ObjectTable
        from repro.core.schemes import XorOneWayScheme

        matrix = KeyMatrix(rng=RandomSource(seed=11))
        client = CapabilitySealer(
            matrix.view(1), client_cache=ClientCapabilityCache()
        )
        server = CapabilitySealer(
            matrix.view(2), server_cache=ServerCapabilityCache()
        )
        table = ObjectTable(
            XorOneWayScheme(), Port(42), rng=RandomSource(seed=12)
        )
        # Mirror ObjectServer's wiring: the table announces dead secrets.
        table.on_revocation(
            lambda port, number, _gen, _shard: server.invalidate_object(
                port, number
            )
        )
        cap = table.create("precious")
        sealed = client.seal(cap, dst=2)
        assert server.unseal(sealed, src=1) == cap  # now cached
        table.refresh(cap)
        # The replayed blob must not short-circuit through the cache …
        assert server.server_cache.lookup(sealed, 1) is None
        ops = server.cipher_ops
        replayed = server.unseal(sealed, src=1)
        assert server.cipher_ops == ops + 1  # went through real decryption
        # … and the table rejects what it decrypts to.
        with pytest.raises(InvalidCapability):
            table.lookup(replayed)

    def test_table_destroy_and_age_purge_server_cache(self):
        from repro.core.registry import ObjectTable
        from repro.core.schemes import XorOneWayScheme

        matrix = KeyMatrix(rng=RandomSource(seed=13))
        client = CapabilitySealer(matrix.view(1))
        server = CapabilitySealer(
            matrix.view(2), server_cache=ServerCapabilityCache()
        )
        table = ObjectTable(
            XorOneWayScheme(),
            Port(42),
            rng=RandomSource(seed=14),
            default_lifetime=1,
        )
        table.on_revocation(
            lambda port, number, _gen, _shard: server.invalidate_object(
                port, number
            )
        )
        doomed = table.create("destroyed")
        aged = table.create("aged out")
        for cap in (doomed, aged):
            server.unseal(client.seal(cap, dst=2), src=1)
        assert len(server.server_cache) == 2
        table.destroy(doomed)
        assert len(server.server_cache) == 1
        table.age()  # first sweep expires "aged out" (lifetime=1)
        assert len(server.server_cache) == 0

    def test_service_client_refresh_purges_client_cache(self, sealed_world):
        _, server, client, _ = sealed_world
        cap = server.table.create("revocable")
        client.info(cap)  # seals the capability -> client cache entry
        cache = client.sealer.client_cache
        assert cache.lookup(cap, server.node.address) is not None
        fresh = client.refresh(cap)
        assert cache.lookup(cap, server.node.address) is None
        # The stale capability is dead end to end; the fresh one works.
        with pytest.raises(InvalidCapability):
            client.info(cap)
        assert "object" in client.info(fresh)

    def test_server_cache_purged_end_to_end(self, sealed_world):
        """The full replay: client uses a capability (server caches its
        sealed form), the owner refreshes, the identical sealed blob is
        replayed — the server must reject it."""
        net, server, client, intruder = sealed_world
        cap = server.table.create("loot")
        intruder.start_capture()
        client.info(cap)
        sealed_requests = [
            f
            for f in intruder.captured_requests()
            if f.message.sealed_caps and f.message.command == STD_INFO
        ]
        assert sealed_requests
        client.refresh(cap)
        # Replay the captured sealed request from the *original* client
        # machine (the strongest replay: the matrix key is right, only
        # the secret has died).
        frame = sealed_requests[0]
        reply_private = Port(0x00BEEF00)
        client.node.listen(reply_private)
        replay = frame.message.copy(reply=reply_private)
        client.node.put(replay, dst_machine=server.node.address)
        got = client.node.poll(reply_private)
        assert got is not None and got.message.status != 0


@pytest.fixture
def sealed_world():
    """A matrix-protected client/server pair plus an intruder."""
    net = SimNetwork()
    matrix = KeyMatrix(rng=RandomSource(seed=4))

    server_nic = Nic(net)
    install_locate_responder(server_nic)
    server = ObjectServer(
        server_nic,
        rng=RandomSource(seed=5),
        sealer=CapabilitySealer(
            matrix.view(server_nic.address),
            server_cache=ServerCapabilityCache(),
        ),
        require_sealed=True,
    ).start()

    client_nic = Nic(net)
    client = ServiceClient(
        client_nic,
        server.put_port,
        rng=RandomSource(seed=6),
        locator=Locator(client_nic, rng=RandomSource(seed=7)),
        sealer=CapabilitySealer(
            matrix.view(client_nic.address),
            client_cache=ClientCapabilityCache(),
        ),
        expect_signature=server.signature_image,
    )
    intruder = Intruder(net, rng=RandomSource(seed=8))
    return net, server, client, intruder


class TestSealedRPC:
    def test_sealed_round_trip(self, sealed_world):
        _, server, client, _ = sealed_world
        cap = server.table.create("sealed object")
        assert "object" in client.info(cap)

    def test_sealed_reply_capabilities(self, sealed_world):
        _, server, client, _ = sealed_world
        cap = server.table.create("x")
        weak = client.restrict(cap, 0x01)
        assert weak.rights == Rights(0x01)
        assert "object" in client.info(weak)

    def test_plaintext_capability_refused(self, sealed_world):
        net, server, _, _ = sealed_world
        bare_client_nic = Nic(net)
        bare = ServiceClient(
            bare_client_nic, server.put_port, rng=RandomSource(seed=9)
        )
        cap = server.table.create("x")
        with pytest.raises(InvalidCapability):
            bare.call(STD_INFO, capability=cap)

    def test_stolen_sealed_capability_useless(self, sealed_world):
        """The §2.4 replay defence, end to end."""
        net, server, client, intruder = sealed_world
        cap = server.table.create("loot")
        intruder.start_capture()
        client.info(cap)
        sealed_requests = [
            f
            for f in intruder.captured_requests()
            if f.message.sealed_caps and f.message.command == STD_INFO
        ]
        assert sealed_requests, "expected to capture the sealed request"
        # Replay with the intruder's own reply port (the full §2.4 attack).
        reply_private, sent = intruder.steal_capability(sealed_requests[0])
        frame = intruder.nic.poll(reply_private)
        # The server decrypted with M[intruder][server]: garbage.  It
        # must NOT have performed the operation.
        assert frame is None or frame.message.status != 0

    def test_intruder_sees_only_ciphertext(self, sealed_world):
        net, server, client, intruder = sealed_world
        cap = server.table.create("loot")
        intruder.start_capture()
        client.info(cap)
        for frame in intruder.captured_requests():
            if frame.message.sealed_caps:
                assert cap.check not in frame.message.sealed_caps

    def test_server_without_sealer_rejects_sealed(self):
        net = SimNetwork()
        matrix = KeyMatrix(rng=RandomSource(seed=1))
        server_nic = Nic(net)
        install_locate_responder(server_nic)
        server = ObjectServer(server_nic, rng=RandomSource(seed=2)).start()
        client_nic = Nic(net)
        client = ServiceClient(
            client_nic,
            server.put_port,
            rng=RandomSource(seed=3),
            locator=Locator(client_nic, rng=RandomSource(seed=4)),
            sealer=CapabilitySealer(matrix.view(client_nic.address)),
        )
        cap = server.table.create("x")
        with pytest.raises(AmoebaError):
            client.call(STD_INFO, capability=cap)

    def test_sealer_requires_locator(self):
        net = SimNetwork()
        matrix = KeyMatrix(rng=RandomSource(seed=1))
        nic = Nic(net)
        with pytest.raises(ValueError):
            ServiceClient(
                nic,
                Port(1),
                sealer=CapabilitySealer(matrix.view(nic.address)),
            )
