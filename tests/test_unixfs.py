"""Tests for the UNIX-like file system facade (§3.5's third file system)."""

import os

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.errors import BadRequest, NameNotFound
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.servers.directory import DirectoryServer
from repro.servers.flatfile import FlatFileServer
from repro.servers.unixfs import UnixFs


@pytest.fixture
def fs():
    net = SimNetwork()
    dirs = DirectoryServer(Nic(net), rng=RandomSource(seed=1)).start()
    files = FlatFileServer(Nic(net), rng=RandomSource(seed=2)).start()
    root = dirs.create_root()
    return UnixFs(Nic(net), root, files.put_port, rng=RandomSource(seed=3))


class TestCreateOpenClose:
    def test_creat_then_open_read(self, fs):
        fs.creat("hello.txt")
        fd = fs.open("hello.txt", "a")
        fs.write(fd, b"hi")
        fs.lseek(fd, 0)
        assert fs.read(fd, 10) == b"hi"
        fs.close(fd)

    def test_open_missing_read_fails(self, fs):
        with pytest.raises(NameNotFound):
            fs.open("ghost.txt", "r")

    def test_append_mode_creates(self, fs):
        fd = fs.open("new.txt", "a")
        assert fs.write(fd, b"created by append") == 17

    def test_bad_mode(self, fs):
        with pytest.raises(BadRequest):
            fs.open("x", "rw+")

    def test_closed_fd_unusable(self, fs):
        fd = fs.open("f", "a")
        fs.close(fd)
        with pytest.raises(BadRequest):
            fs.read(fd, 1)

    def test_fds_are_distinct(self, fs):
        a = fs.open("a.txt", "a")
        b = fs.open("b.txt", "a")
        assert a != b


class TestReadWriteSeek:
    def test_sequential_reads_advance(self, fs):
        fd = fs.open("seq.txt", "a")
        fs.write(fd, b"0123456789")
        fs.lseek(fd, 0)
        assert fs.read(fd, 4) == b"0123"
        assert fs.read(fd, 4) == b"4567"
        assert fs.read(fd, 4) == b"89"

    def test_seek_modes(self, fs):
        fd = fs.open("seek.txt", "a")
        fs.write(fd, b"0123456789")
        assert fs.lseek(fd, 2, os.SEEK_SET) == 2
        assert fs.lseek(fd, 3, os.SEEK_CUR) == 5
        assert fs.lseek(fd, -1, os.SEEK_END) == 9
        assert fs.read(fd, 1) == b"9"

    def test_seek_before_start(self, fs):
        fd = fs.open("x", "a")
        with pytest.raises(BadRequest):
            fs.lseek(fd, -1, os.SEEK_SET)

    def test_write_in_read_mode_refused(self, fs):
        fs.creat("ro.txt")
        fd = fs.open("ro.txt", "r")
        with pytest.raises(BadRequest):
            fs.write(fd, b"x")

    def test_append_positions_at_end(self, fs):
        fd = fs.open("log", "a")
        fs.write(fd, b"line1\n")
        fs.close(fd)
        fd = fs.open("log", "a")
        fs.write(fd, b"line2\n")
        fs.lseek(fd, 0)
        assert fs.read(fd, 100) == b"line1\nline2\n"


class TestTruncatingOpen:
    def test_w_mode_truncates(self, fs):
        fd = fs.open("data", "a")
        fs.write(fd, b"old contents that are long")
        fs.close(fd)
        fd = fs.open("data", "w")
        fs.write(fd, b"new")
        fs.lseek(fd, 0)
        assert fs.read(fd, 100) == b"new"

    def test_w_mode_creates_fresh_file_object(self, fs):
        fd = fs.open("data", "a")
        fs.write(fd, b"v1")
        old = fs.stat("data")
        fs.close(fd)
        fs.open("data", "w")
        new = fs.stat("data")
        assert (old["object"], old["port"]) != (new["object"], new["port"]) or (
            old["object"] != new["object"]
        )


class TestDirectories:
    def test_mkdir_and_nested_paths(self, fs):
        fs.mkdir("usr")
        fs.mkdir("usr/lib")
        fs.creat("usr/lib/libc.a")
        assert fs.listdir("usr") == ["lib"]
        assert fs.listdir("usr/lib") == ["libc.a"]

    def test_listdir_root(self, fs):
        fs.creat("a")
        fs.mkdir("b")
        assert fs.listdir("/") == ["a", "b"]

    def test_unlink(self, fs):
        fs.creat("doomed")
        fs.unlink("doomed")
        assert fs.listdir("/") == []
        with pytest.raises(NameNotFound):
            fs.open("doomed", "r")

    def test_stat(self, fs):
        fd = fs.open("stats.txt", "a")
        fs.write(fd, b"12345")
        info = fs.stat("stats.txt")
        assert info["size"] == 5

    def test_empty_path_rejected(self, fs):
        with pytest.raises(BadRequest):
            fs.creat("/")


class TestUnixOnAmoebaSemantics:
    def test_open_cap_bypasses_paths(self, fs):
        """The facade is capability-based underneath: a raw capability can
        be opened with no directory entry at all."""
        cap = fs.creat("visible.txt")
        fd = fs.open_cap(cap, "a")
        fs.write(fd, b"written via bare capability")
        assert fs.stat("visible.txt")["size"] == 27
