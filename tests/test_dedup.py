"""Tests for server-side duplicate suppression (:class:`ReplyCache`).

The dedup contracts:

* the transaction id is ``(frame.src, F(G'))`` — both already on the
  wire, the src network-stamped and the reply port fresh per
  transaction yet stable across retransmissions;
* a retried non-idempotent operation (a bank transfer) executes exactly
  once: the duplicate replays the cached reply, error replies included;
* both cache dimensions are LRU-bounded;
* an intruder replaying a captured frame presents its *own* src, so it
  lands in its own cache bucket and can never read or disturb another
  principal's entries.
"""

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.errors import InsufficientFunds
from repro.ipc.rpc import RetryPolicy
from repro.ipc.server import ReplyCache
from repro.net.faults import FaultPlan
from repro.net.intruder import Intruder
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.servers.bank import BANK_TRANSFER, BankClient, BankServer


class TestReplyCacheUnit:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            ReplyCache(per_client=0)
        with pytest.raises(ValueError):
            ReplyCache(clients=0)

    def test_miss_busy_store_hit(self):
        cache = ReplyCache()
        reply = Message(data=b"done", is_reply=True)
        assert cache.begin(1, 0xAB) == ("miss", None)
        # While executing, duplicates are dropped, not replayed.
        assert cache.begin(1, 0xAB) == ("busy", None)
        cache.store(1, 0xAB, reply)
        verdict, cached = cache.begin(1, 0xAB)
        assert verdict == "hit" and cached is reply
        assert (cache.misses, cache.busy_drops, cache.hits) == (1, 1, 1)

    def test_forget_reopens_the_slot(self):
        cache = ReplyCache()
        cache.begin(1, 0xAB)
        cache.forget(1, 0xAB)
        assert cache.begin(1, 0xAB) == ("miss", None)

    def test_per_client_lru_eviction(self):
        cache = ReplyCache(per_client=2)
        reply = Message(is_reply=True)
        for key in (1, 2):
            cache.begin(9, key)
            cache.store(9, key, reply)
        cache.begin(9, 1)  # touch 1: now 2 is the LRU entry
        cache.begin(9, 3)  # evicts 2
        assert cache.evictions == 1
        verdict, _ = cache.begin(9, 1)  # the touched entry survived
        assert verdict == "hit"
        assert cache.begin(9, 2) == ("miss", None)  # re-executes: stale dup

    def test_client_dimension_lru_eviction(self):
        cache = ReplyCache(clients=2)
        reply = Message(is_reply=True)
        for src in (1, 2):
            cache.begin(src, 0xAB)
            cache.store(src, 0xAB, reply)
        cache.begin(3, 0xAB)  # third client evicts the LRU one (src=1)
        assert cache.evictions == 1
        assert cache.begin(1, 0xAB) == ("miss", None)

    def test_store_after_eviction_is_a_noop(self):
        cache = ReplyCache(per_client=1)
        cache.begin(9, 1)
        cache.begin(9, 2)  # evicts the in-progress entry for 1
        cache.store(9, 1, Message(is_reply=True))
        assert cache.begin(9, 1)[0] == "miss"

    def test_stats_keys(self):
        stats = ReplyCache().stats()
        assert set(stats) == {"hits", "misses", "busy_drops", "evictions",
                              "clients", "entries"}


def bank_world(plan=None, dedup=True):
    net = SimNetwork(faults=plan)
    server = BankServer(Nic(net), rng=RandomSource(seed=1),
                        dedup=dedup).start()
    client = BankClient(Nic(net), server.put_port, rng=RandomSource(seed=2),
                        expect_signature=server.signature_image)
    central = server.create_account({"USD": 10_000}, mint_right=True)
    return net, server, client, central


class TestEffectivelyOnce:
    def test_duplicate_without_dedup_double_executes(self):
        """The hazard itself: at-least-once + non-idempotent op, no cache."""
        _, server, client, central = bank_world(
            FaultPlan(seed=1, duplicate=1.0), dedup=False)
        alice = client.open_account()
        client.transfer(central, alice, "USD", 100)
        # Both copies of the transfer executed: money moved twice.
        assert client.balance(alice) == {"USD": 200}

    def test_duplicate_with_dedup_executes_once(self):
        _, server, client, central = bank_world(
            FaultPlan(seed=1, duplicate=1.0), dedup=True)
        alice = client.open_account()
        client.transfer(central, alice, "USD", 100)
        assert client.balance(alice) == {"USD": 100}
        assert server.reply_cache.hits >= 1

    def test_error_replies_replay_too(self):
        _, server, client, central = bank_world(
            FaultPlan(seed=1, duplicate=1.0), dedup=True)
        alice = client.open_account()
        client.transfer(central, alice, "USD", 5)
        before = server.request_counts[BANK_TRANSFER]
        with pytest.raises(InsufficientFunds):
            client.transfer(alice, central, "USD", 50)
        # The duplicate was answered from the cache, not re-executed.
        assert server.request_counts[BANK_TRANSFER] == before + 1
        assert server.reply_cache.hits >= 1

    def test_retried_transfers_under_loss_land_exactly_once(self):
        """The acceptance scenario in miniature: every completed transfer
        moved money exactly once, under drops and duplicates."""
        plan = FaultPlan(seed=11, drop=0.1, duplicate=0.05)
        net = SimNetwork(faults=plan)
        server = BankServer(Nic(net), rng=RandomSource(seed=1),
                            dedup=True).start()
        client = BankClient(Nic(net), server.put_port,
                            rng=RandomSource(seed=2),
                            expect_signature=server.signature_image,
                            timeout=5.0,
                            retry=RetryPolicy(attempts=10, seed=3))
        central = server.create_account({"USD": 10_000}, mint_right=True)
        alice = client.open_account()
        completed = 0
        for _ in range(200):
            client.transfer(central, alice, "USD", 1)
            completed += 1
        assert completed == 200
        assert client.balance(alice) == {"USD": 200}
        assert server.total_in_circulation("USD") == 10_000
        assert plan.injected_drops > 0
        # Lost replies forced retransmissions; the cache absorbed them.
        assert server.reply_cache.hits > 0


class TestIntruderIsolation:
    def _world(self):
        net = SimNetwork()
        server = BankServer(Nic(net), rng=RandomSource(seed=1),
                            dedup=True).start()
        client = BankClient(Nic(net), server.put_port,
                            rng=RandomSource(seed=2),
                            expect_signature=server.signature_image)
        central = server.create_account({"USD": 1_000}, mint_right=True)
        intruder = Intruder(net, rng=RandomSource(seed=9))
        return net, server, client, central, intruder

    def test_replay_lands_in_its_own_bucket(self):
        net, server, client, central, intruder = self._world()
        alice = client.open_account()
        intruder.start_capture()
        client.transfer(central, alice, "USD", 10)
        cache = server.reply_cache
        hits_before = cache.hits
        buckets_before = len(cache._clients)
        transfer = [f for f in intruder.captured_requests()
                    if f.message.command == BANK_TRANSFER][0]
        victim_src = transfer.src
        intruder.replay(transfer)
        # The replay presented the intruder's own network-stamped src:
        # a fresh bucket, not the victim's — its cached reply was neither
        # read (no hit) nor disturbed.
        assert len(cache._clients) == buckets_before + 1
        assert cache.hits == hits_before
        assert intruder.address in cache._clients
        assert victim_src != intruder.address
        assert cache._clients[victim_src] is not cache._clients[
            intruder.address]

    def test_replayed_bearer_transfer_is_the_documented_residual_risk(self):
        # Without §2.4 sealing the capability is a bearer token, so the
        # replayed transfer DOES execute again — as a new transaction,
        # never as a replay of the victim's cached reply.  (The matrix
        # tests show sealing close this; dedup is not a replay defence.)
        net, server, client, central, intruder = self._world()
        alice = client.open_account()
        intruder.start_capture()
        client.transfer(central, alice, "USD", 10)
        transfer = [f for f in intruder.captured_requests()
                    if f.message.command == BANK_TRANSFER][0]
        intruder.replay(transfer)
        assert client.balance(alice) == {"USD": 20}
        assert server.reply_cache.hits == 0

    def test_replayed_reply_goes_to_a_dark_port(self):
        # The replay's reply port was double-one-wayed by the intruder's
        # F-box, so the (replayed) reply lands nowhere the intruder can
        # hear — the cache replays to the same dark port.
        net, server, client, central, intruder = self._world()
        alice = client.open_account()
        intruder.start_capture()
        client.transfer(central, alice, "USD", 10)
        transfer = [f for f in intruder.captured_requests()
                    if f.message.command == BANK_TRANSFER][0]
        dropped_before = net.frames_dropped
        intruder.replay(transfer)
        intruder.replay(transfer)  # second copy: a "hit" in its bucket
        # The intruder's F-box re-one-ways the captured wire reply port
        # F(G') on egress, so its transactions are keyed by F(F(G')).
        dark_reply = intruder.nic.fbox.transform_egress(
            transfer.message).reply.value
        assert server.reply_cache.begin(
            intruder.address, dark_reply)[0] == "hit"
        # Neither reply was deliverable.
        assert net.frames_dropped >= dropped_before + 2

    def test_victim_retry_still_dedups_after_replay(self):
        net, server, client, central, intruder = self._world()
        alice = client.open_account()
        intruder.start_capture()
        client.transfer(central, alice, "USD", 10)
        transfer = [f for f in intruder.captured_requests()
                    if f.message.command == BANK_TRANSFER][0]
        intruder.replay(transfer)
        # The victim's own (late) retransmission — same src, same F(G')
        # — still replays from the victim's cache entry: the intruder's
        # traffic did not evict or confuse it.
        verdict, cached = server.reply_cache.begin(
            transfer.src, transfer.message.reply.value)
        assert verdict == "hit"
        assert cached is not None and cached.status == 0
