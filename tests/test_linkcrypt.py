"""Tests for link-level encryption (the last §2.4 alternative)."""

import pytest

from repro.core.ports import Port, PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.errors import SecurityError
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.softprot.linkcrypt import LinkCryptNode


@pytest.fixture
def linked():
    net = SimNetwork()
    a_nic, b_nic = Nic(net), Nic(net)
    a = LinkCryptNode(a_nic, rng=RandomSource(seed=1))
    b = LinkCryptNode(b_nic, rng=RandomSource(seed=2))
    key = RandomSource(seed=3).bytes(16)
    a.add_line(b_nic.address, b.endpoint[1], key)
    b.add_line(a_nic.address, a.endpoint[1], key)
    return net, a, b


class TestDelivery:
    def test_message_delivered_through_line(self, linked):
        net, a, b = linked
        g = PrivatePort(5)
        wire = b.nic.listen(g)
        assert a.put(Message(dest=wire, data=b"through the tunnel"),
                     dst_machine=b.nic.address)
        frame = b.nic.poll(g)
        assert frame is not None
        assert frame.message.data == b"through the tunnel"
        assert frame.src == a.nic.address

    def test_no_line_configured(self, linked):
        _, a, _ = linked
        with pytest.raises(SecurityError):
            a.put(Message(), dst_machine=9999)

    def test_reply_fields_still_one_wayed(self, linked):
        net, a, b = linked
        g = PrivatePort(5)
        wire = b.nic.listen(g)
        secret = PrivatePort(777)
        a.put(Message(dest=wire, reply=Port(secret.secret)),
              dst_machine=b.nic.address)
        frame = b.nic.poll(g)
        assert frame.message.reply == secret.public


class TestConfidentiality:
    def test_tap_sees_only_ciphertext(self, linked):
        net, a, b = linked
        captured = []
        net.add_tap(captured.append)
        g = PrivatePort(5)
        wire = b.nic.listen(g)
        plaintext = b"the capability bytes are in here"
        a.put(Message(dest=wire, data=plaintext), dst_machine=b.nic.address)
        assert captured
        for frame in captured:
            assert plaintext not in frame.message.data
            # Even the inner destination port is hidden inside the tunnel.
            assert frame.message.dest != wire

    def test_wrong_key_traffic_dropped(self, linked):
        net, a, b = linked
        # Reconfigure b's line with a different key: a's traffic garbles.
        b.add_line(a.nic.address, a.endpoint[1], RandomSource(seed=99).bytes(16))
        g = PrivatePort(5)
        wire = b.nic.listen(g)
        a.put(Message(dest=wire, data=b"x"), dst_machine=b.nic.address)
        assert b.nic.poll(g) is None

    def test_carrier_from_unknown_machine_ignored(self, linked):
        net, a, b = linked
        stranger = Nic(net)
        carrier = Message(dest=b.endpoint[1], command=30, data=b"\x00" * 32)
        stranger.put(carrier, dst_machine=b.nic.address)
        # No crash, nothing delivered.
        g = PrivatePort(5)
        b.nic.listen(g)
        assert b.nic.poll(g) is None
