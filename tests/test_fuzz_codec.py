"""Fuzz the wire codecs: hostile bytes must map to clean protocol errors.

A server that crashes (rather than erroring) on a malformed frame is a
denial-of-service hole; these property tests pin the failure mode of
every unpack path to the documented exceptions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capability import Capability
from repro.core.ports import Port
from repro.core.rights import Rights
from repro.errors import AmoebaError, BadRequest, MalformedCapability
from repro.net.message import Message
from repro.softprot.boot import Announcement


class TestCapabilityFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=300)
    def test_unpack_never_crashes(self, blob):
        try:
            cap = Capability.unpack(blob)
        except MalformedCapability:
            return
        except ValueError:
            return  # port/rights range errors from hostile field values
        # Anything that parses must re-pack to the identical bytes.
        assert cap.pack() == blob

    @given(st.binary(min_size=16, max_size=16))
    def test_any_16_bytes_parse(self, blob):
        cap = Capability.unpack(blob)
        assert cap.pack() == blob


class TestMessageFuzz:
    @given(st.binary(max_size=300))
    @settings(max_examples=300)
    def test_unpack_never_crashes(self, blob):
        try:
            message = Message.unpack(blob)
        except (BadRequest, MalformedCapability, ValueError):
            return
        assert message.pack() == blob

    @given(st.binary(max_size=120))
    @settings(max_examples=100)
    def test_mutated_valid_message(self, mutation):
        """Splice random bytes into a valid frame: parse or clean error."""
        base = bytearray(
            Message(dest=Port(1), command=7, data=b"payload bytes").pack()
        )
        for i, b in enumerate(mutation):
            base[i % len(base)] ^= b
        try:
            Message.unpack(bytes(base))
        except (BadRequest, MalformedCapability, ValueError):
            pass

    def test_server_survives_garbage_frames(self):
        """End to end: a server fed undecodable/hostile requests keeps
        answering well-formed ones."""
        from repro.crypto.randomsrc import RandomSource
        from repro.ipc.client import ServiceClient
        from repro.ipc.server import ObjectServer
        from repro.net.network import SimNetwork
        from repro.net.nic import Nic

        net = SimNetwork()
        server = ObjectServer(Nic(net), rng=RandomSource(seed=1)).start()
        hostile = Nic(net)
        rng = RandomSource(seed=2)
        for _ in range(50):
            hostile.put(
                Message(
                    dest=server.put_port,
                    command=rng.randint(0, 65535),
                    offset=rng.randint(0, 2**32),
                    size=rng.randint(0, 2**16),
                    data=rng.bytes(rng.randint(0, 64)),
                )
            )
        cap = server.table.create("still here")
        client = ServiceClient(Nic(net), server.put_port, rng=RandomSource(seed=3))
        assert "object" in client.info(cap)


class TestAnnouncementFuzz:
    @given(st.binary(max_size=100))
    @settings(max_examples=200)
    def test_unpack_never_crashes_uncontrolled(self, blob):
        try:
            Announcement.unpack(blob)
        except (AmoebaError, ValueError, UnicodeDecodeError, IndexError):
            pass
