"""Tests for the ObjectServer skeleton: dispatch, std ops, error replies."""

import pytest

from repro.core.rights import Rights
from repro.crypto.randomsrc import RandomSource
from repro.errors import (
    BadRequest,
    InvalidCapability,
    NoSuchObject,
    PermissionDenied,
)
from repro.ipc.client import ServiceClient
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import STD_INFO, USER_BASE
from repro.net.network import SimNetwork
from repro.net.nic import Nic

from tests.conftest import make_client


class CounterServer(ObjectServer):
    service_name = "counter"

    @command(USER_BASE)
    def _increment(self, ctx):
        entry, _ = ctx.lookup(Rights(0x02))
        entry.data["count"] += ctx.request.size
        return ctx.ok(size=entry.data["count"])

    @command(USER_BASE + 1)
    def _get(self, ctx):
        entry, _ = ctx.lookup(Rights(0x01))
        return ctx.ok(size=entry.data["count"])

    @command(USER_BASE + 2)
    def _boom(self, ctx):
        raise RuntimeError("not an AmoebaError")


@pytest.fixture
def world():
    net = SimNetwork()
    server = CounterServer(Nic(net), rng=RandomSource(seed=1)).start()
    client = make_client(Nic(net), server, RandomSource(seed=2))
    return net, server, client


class TestDispatch:
    def test_user_command(self, world):
        _, server, client = world
        cap = server.table.create({"count": 0})
        assert client.call(USER_BASE, capability=cap, size=5).size == 5
        assert client.call(USER_BASE + 1, capability=cap).size == 5

    def test_unknown_opcode(self, world):
        _, server, client = world
        with pytest.raises(BadRequest):
            client.call(9999)

    def test_request_counts(self, world):
        _, server, client = world
        cap = server.table.create({"count": 0})
        client.call(USER_BASE + 1, capability=cap)
        client.call(USER_BASE + 1, capability=cap)
        assert server.request_counts[USER_BASE + 1] == 2

    def test_duplicate_opcode_rejected_at_definition(self):
        with pytest.raises(ValueError):

            class Broken(ObjectServer):
                @command(USER_BASE)
                def _a(self, ctx):
                    pass

                @command(USER_BASE)
                def _b(self, ctx):
                    pass

            Broken(Nic(SimNetwork()))

    def test_stop_prevents_delivery(self, world):
        _, server, client = world
        server.stop()
        from repro.errors import PortNotLocated

        with pytest.raises(PortNotLocated):
            client.call(STD_INFO)


class TestErrorReplies:
    def test_amoeba_errors_map_to_status(self, world):
        _, server, client = world
        cap = server.table.create({"count": 0})
        weak = server.table.restrict(cap, Rights(0x01))
        with pytest.raises(PermissionDenied):
            client.call(USER_BASE, capability=weak, size=1)

    def test_invalid_capability_over_wire(self, world):
        _, server, client = world
        cap = server.table.create({"count": 0})
        with pytest.raises(InvalidCapability):
            client.call(USER_BASE + 1, capability=cap.with_rights(0x55))

    def test_missing_capability(self, world):
        _, server, client = world
        with pytest.raises(BadRequest):
            client.call(USER_BASE)

    def test_error_message_preserved(self, world):
        _, server, client = world
        try:
            client.call(9999)
        except BadRequest as exc:
            assert "9999" in str(exc)

    def test_crashing_handler_becomes_generic_error(self, world):
        from repro.errors import AmoebaError

        _, server, client = world
        with pytest.raises(AmoebaError) as excinfo:
            client.call(USER_BASE + 2)
        assert "internal error" in str(excinfo.value)


class TestStdOps:
    def test_info(self, world):
        _, server, client = world
        cap = server.table.create({"count": 1})
        assert "counter" in client.info(cap)

    def test_restrict_refresh_destroy_flow(self, world):
        _, server, client = world
        cap = server.table.create({"count": 0})
        weak = client.restrict(cap, 0x03)
        assert client.call(USER_BASE, capability=weak, size=2).size == 2
        fresh = client.refresh(cap)
        with pytest.raises(InvalidCapability):
            client.call(USER_BASE + 1, capability=weak)
        client.destroy(fresh)
        with pytest.raises(NoSuchObject):
            client.info(fresh)

    def test_refresh_needs_admin_bit(self, world):
        _, server, client = world
        cap = server.table.create({"count": 0})
        no_admin = client.restrict(cap, 0x7F)
        with pytest.raises(PermissionDenied):
            client.refresh(no_admin)

    def test_destroy_needs_admin_bit(self, world):
        _, server, client = world
        cap = server.table.create({"count": 0})
        no_admin = client.restrict(cap, 0x7F)
        with pytest.raises(PermissionDenied):
            client.destroy(no_admin)

    def test_touch(self, world):
        _, server, client = world
        cap = server.table.create({"count": 0})
        client.touch(cap)
        entry, _ = server.table.lookup(cap)
        assert entry.touches >= 2


class TestSignedReplies:
    def test_replies_carry_signature_image(self, world):
        net, server, _ = world
        captured = []
        net.add_tap(lambda f: f.message.is_reply and captured.append(f.message))
        client = make_client(Nic(net), server, RandomSource(seed=3))
        cap = server.table.create({"count": 0})
        client.info(cap)
        assert captured
        assert all(m.signature == server.signature_image for m in captured)
