"""Tests for touch-based garbage collection (Amoeba's aging sweep).

With no central record of capability holders, a server cannot refcount;
liveness is proven only by use.  STD_TOUCH exists precisely so reachable
objects can be kept alive between sweeps.
"""

import pytest

from repro.core.ports import Port
from repro.core.registry import ObjectTable
from repro.core.schemes import scheme_by_name
from repro.crypto.randomsrc import RandomSource
from repro.errors import NoSuchObject
from repro.ipc.client import ServiceClient
from repro.ipc.server import ObjectServer
from repro.net.network import SimNetwork
from repro.net.nic import Nic


def make_table(lifetime):
    return ObjectTable(
        scheme_by_name("xor-oneway"),
        Port(1),
        rng=RandomSource(seed=1),
        default_lifetime=lifetime,
    )


class TestTableAging:
    def test_untouched_object_expires(self):
        table = make_table(lifetime=2)
        cap = table.create("ephemeral")
        assert table.age() == []
        expired = table.age()
        assert [e.data for e in expired] == ["ephemeral"]
        with pytest.raises(NoSuchObject):
            table.lookup(cap)

    def test_touch_resets_lifetime(self):
        table = make_table(lifetime=2)
        cap = table.create("kept")
        for _ in range(6):
            table.age()
            table.lookup(cap)  # any use proves liveness
        assert len(table) == 1

    def test_any_lookup_counts_as_touch(self):
        table = make_table(lifetime=1)
        cap = table.create("busy")
        table.lookup(cap)
        # lifetime was reset to 1 by the lookup; one sweep kills it only
        # if nothing happens in between.
        assert table.age() != []

    def test_expired_numbers_are_recycled(self):
        table = make_table(lifetime=1)
        cap = table.create("a")
        table.age()
        again = table.create("b")
        assert again.object == cap.object

    def test_aging_disabled_by_default(self):
        table = ObjectTable(
            scheme_by_name("xor-oneway"), Port(1), rng=RandomSource(seed=2)
        )
        table.create("immortal")
        for _ in range(10):
            assert table.age() == []
        assert len(table) == 1

    def test_mixed_lifetimes(self):
        table = make_table(lifetime=3)
        doomed = table.create("doomed")
        kept = table.create("kept")
        for _ in range(3):
            table.age()
            table.lookup(kept)
        assert len(table) == 1
        table.lookup(kept)
        with pytest.raises(NoSuchObject):
            table.lookup(doomed)

    def test_on_expire_callback(self):
        table = make_table(lifetime=1)
        table.create("x")
        released = []
        table.age(on_expire=lambda entry: released.append(entry.data))
        assert released == ["x"]

    def test_bad_lifetime_rejected(self):
        with pytest.raises(ValueError):
            make_table(lifetime=0)


class TestServerSweep:
    @pytest.fixture
    def world(self):
        net = SimNetwork()
        server = ObjectServer(Nic(net), rng=RandomSource(seed=3)).start()
        server.table.default_lifetime = 2
        client = ServiceClient(Nic(net), server.put_port,
                               rng=RandomSource(seed=4))
        return server, client

    def test_touch_over_the_wire_keeps_alive(self, world):
        server, client = world
        cap = server.table.create("remote-kept")
        for _ in range(5):
            server.sweep()
            client.touch(cap)
        assert len(server.table) == 1

    def test_sweep_calls_on_destroy(self, world):
        server, client = world
        released = []
        server.on_destroy = lambda entry: released.append(entry.data)
        server.table.create("swept")
        server.sweep()
        server.sweep()
        assert released == ["swept"]

    def test_sweep_releases_real_resources(self):
        """A block server sweep must return expired blocks to the disk."""
        from repro.disk.virtualdisk import VirtualDisk
        from repro.servers.block import BlockClient, BlockServer

        net = SimNetwork()
        disk = VirtualDisk(n_blocks=8)
        server = BlockServer(Nic(net), disk=disk, rng=RandomSource(seed=5)).start()
        server.table.default_lifetime = 2
        client = BlockClient(Nic(net), server.put_port, rng=RandomSource(seed=6))
        kept, _ = client.alloc()
        client.alloc()  # leaked: capability discarded, never touched
        assert disk.used_blocks == 2
        client.touch(kept)
        server.sweep()
        client.touch(kept)
        server.sweep()  # second sweep expires the untouched block
        assert disk.used_blocks == 1
        assert client.read(kept) == bytes(512)
