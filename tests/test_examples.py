"""Every example script must run to completion and print OK."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)

pytestmark = pytest.mark.integration


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        "%s failed:\nstdout:\n%s\nstderr:\n%s"
        % (script.name, result.stdout, result.stderr)
    )
    assert "OK" in result.stdout


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
