"""Tests for the virtual-clock discrete-event network mode.

The DES invariants under test:

* time only moves on event delivery or a timed-out wait, never from the
  host clock — so identical seeds reproduce identical event orders and
  final clock readings;
* a serial transaction costs exactly one virtual RTT, a 16-deep
  pipelined batch costs one RTT for the whole batch (the latency
  amortization the paper's §4 economics predict);
* blocking polls and LOCATE timeouts *consume* virtual time;
* admission is re-checked at the arrival instant, so frames to stations
  that died in flight drop like packets to a dead host.
"""

import time

import pytest

from repro.core.ports import Port, PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.errors import PortNotLocated, RPCTimeout
from repro.ipc.locate import Locator, install_locate_responder
from repro.ipc.rpc import trans, trans_many
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.net.sched import LatencyModel, VirtualClock

RTT_MS = 2.8
RTT = RTT_MS / 1000.0


class EchoServer(ObjectServer):
    service_name = "des test echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


def des_network(**latency_kwargs):
    latency_kwargs.setdefault("rtt_ms", RTT_MS)
    return SimNetwork(clock=VirtualClock(), latency=LatencyModel(**latency_kwargs))


@pytest.fixture
def world():
    net = des_network()
    server = EchoServer(Nic(net), rng=RandomSource(seed=1)).start()
    client = Nic(net)
    return net, server, client


class TestVirtualClock:
    def test_advance_to_is_monotonic(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        clock.advance_to(2.0)  # time never runs backwards
        assert clock.now == 5.0
        clock.advance(1.5)
        assert clock.now == 6.5

    def test_latency_model_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyModel(rtt_ms=-1)

    def test_latency_only_implies_a_clock(self):
        net = SimNetwork(latency=LatencyModel(rtt_ms=2.0))
        assert net.clock is not None
        assert not net.synchronous

    def test_max_queue_depth_rejected_in_des_mode(self):
        # The DES wire has no per-port ingress queues to bound; silently
        # voiding the drop-and-count contract would be worse than refusing.
        with pytest.raises(ValueError):
            SimNetwork(clock=VirtualClock(), max_queue_depth=8)

    def test_jitter_is_seeded(self):
        def draws(seed):
            model = LatencyModel(rtt_ms=2.0, jitter_ms=1.0, seed=seed)
            frame = None  # jitter path never touches the frame
            return [model.delay(frame) for _ in range(16)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)


class TestVirtualTimeDelivery:
    def test_send_does_not_deliver_without_time(self, world):
        net, _, client = world
        receiver = Nic(net)
        wire = receiver.listen(Port(777))
        assert client.put(Message(dest=wire, command=1))
        assert receiver.poll_wire(wire) is None  # still in flight
        assert net.pending == 1
        net.pump()
        assert net.clock.now == pytest.approx(RTT / 2)
        assert receiver.poll_wire(wire).message.command == 1

    def test_unadmitted_port_rejected_at_send(self, world):
        net, _, client = world
        assert not client.put(Message(dest=Port(0xDEAD), command=1))
        assert net.pending == 0

    def test_ties_deliver_in_send_order(self, world):
        net, _, client = world
        receiver = Nic(net)
        wire = receiver.listen(Port(778))
        for i in range(5):
            client.put(Message(dest=wire, command=10 + i))
        net.pump()
        got = []
        while True:
            frame = receiver.poll_wire(wire)
            if frame is None:
                break
            got.append(frame.message.command)
        assert got == [10, 11, 12, 13, 14]

    def test_detach_in_flight_drops_dead(self, world):
        net, _, client = world
        receiver = Nic(net)
        wire = receiver.listen(Port(779))
        assert client.put(Message(dest=wire, command=1))
        net.detach(receiver.address)
        net.pump()
        assert net.loop.dropped_dead == 1
        assert net.frames_dropped == 1

    def test_timed_poll_consumes_virtual_not_wall_time(self, world):
        net, _, client = world
        client.listen(Port(555))
        wall = time.monotonic()
        assert client.poll(Port(555), timeout=30.0) is None
        assert time.monotonic() - wall < 5.0  # 30 virtual seconds, not wall
        assert net.clock.now == pytest.approx(30.0)


class TestDESTransactions:
    def test_serial_trans_costs_one_rtt(self, world):
        net, server, client = world
        rng = RandomSource(seed=2)
        request = Message(command=USER_BASE, data=b"x")
        start = net.clock.now
        reply = trans(client, server.put_port, request, rng)
        assert reply.data == b"x"
        assert net.clock.now - start == pytest.approx(RTT)

    def test_pipelined_batch_costs_one_rtt_total(self, world):
        net, server, client = world
        rng = RandomSource(seed=3)
        requests = [Message(command=USER_BASE, data=b"x")] * 16
        start = net.clock.now
        replies = trans_many(client, server.put_port, requests, rng)
        assert len(replies) == 16
        # 16 transactions, one RTT of virtual time: the >= 8x
        # amortization the paper's latency economics predict (here 16x).
        assert net.clock.now - start == pytest.approx(RTT)

    def test_trans_timeout_consumes_virtual_timeout(self, world):
        net, _, client = world
        dead_port = Nic(net).listen(Port(9999))  # admitted, never answered
        start = net.clock.now
        with pytest.raises(RPCTimeout):
            trans(
                client,
                dead_port,
                Message(command=USER_BASE),
                RandomSource(seed=4),
                timeout=0.25,
            )
        assert net.clock.now - start == pytest.approx(0.25)

    def test_nested_transaction_inside_handler(self):
        """A server that calls another server mid-request: the nested
        round trip steps the same heap, so the outer transaction costs
        two RTTs of virtual time."""
        net = des_network()
        inner = EchoServer(Nic(net), rng=RandomSource(seed=5)).start()
        outer_nic = Nic(net)
        rng = RandomSource(seed=6)

        class Proxy(ObjectServer):
            @command(USER_BASE)
            def _proxy(self, ctx):
                nested = trans(
                    outer_nic, inner.put_port, Message(
                        command=USER_BASE, data=ctx.request.data
                    ), rng,
                )
                return ctx.ok(data=nested.data + b"!")

        proxy = Proxy(outer_nic, rng=RandomSource(seed=7)).start()
        client = Nic(net)
        start = net.clock.now
        reply = trans(
            client, proxy.put_port, Message(command=USER_BASE, data=b"hi"),
            RandomSource(seed=8),
        )
        assert reply.data == b"hi!"
        assert net.clock.now - start == pytest.approx(2 * RTT)

    def test_bandwidth_adds_serialization_delay(self):
        net = des_network(bytes_per_sec=10_000)
        receiver = Nic(net)
        wire = receiver.listen(Port(80))
        sender = Nic(net)
        message = Message(dest=wire, command=1, data=b"d" * 100)
        size = len(net._nics[sender.address].fbox.transform_egress(message).pack())
        sender.put(message)
        net.pump()
        assert net.clock.now == pytest.approx(RTT / 2 + size / 10_000)


class TestDeterminism:
    def _run(self, seed):
        """One full workload: pipelined batches with jitter; returns the
        final clock reading and the delivery order seen by a tap."""
        net = SimNetwork(
            clock=VirtualClock(),
            latency=LatencyModel(rtt_ms=RTT_MS, jitter_ms=0.7, seed=seed),
        )
        order = []
        net.add_tap(lambda frame: order.append(frame.message.command))
        server = EchoServer(Nic(net), rng=RandomSource(seed=1)).start()
        client = Nic(net)
        rng = RandomSource(seed=2)
        for batch in range(4):
            requests = [
                Message(command=USER_BASE, data=bytes([batch, i]))
                for i in range(8)
            ]
            trans_many(client, server.put_port, requests, rng)
        return net.clock.now, order

    def test_same_seed_same_event_order_and_clock(self):
        assert self._run(13) == self._run(13)

    def test_different_seed_different_clock(self):
        now_a, _ = self._run(13)
        now_b, _ = self._run(14)
        assert now_a != now_b  # jitter draws differ


class TestDESLocate:
    def test_locate_costs_one_rtt(self):
        net = des_network()
        server_nic = Nic(net)
        install_locate_responder(server_nic)
        wire = server_nic.listen(PrivatePort(1234))
        client_nic = Nic(net)
        locator = Locator(client_nic, rng=RandomSource(seed=9))
        start = net.clock.now
        assert locator.locate(wire) == server_nic.address
        # Broadcast out (half RTT) + HERE unicast back (half RTT).
        assert net.clock.now - start == pytest.approx(RTT)

    def test_unanswered_locate_consumes_virtual_timeout(self):
        net = des_network()
        Nic(net)  # a station with no responder
        client_nic = Nic(net)
        locator = Locator(client_nic, rng=RandomSource(seed=10))
        start = net.clock.now
        with pytest.raises(PortNotLocated):
            locator.locate(Port(0xDEAD), timeout=0.5)
        assert net.clock.now - start == pytest.approx(0.5)

    def test_loop_stats_expose_virtual_now(self):
        net = des_network()
        stats = net.stats()
        assert stats["scheduler"]["virtual_now"] == net.clock.now
