"""Tests for the standard message format and its wire codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capability import Capability
from repro.core.ports import NULL_PORT, Port
from repro.core.rights import Rights
from repro.errors import BadRequest
from repro.net.message import HEADER_BYTES, Message

ports = st.integers(min_value=0, max_value=(1 << 48) - 1).map(Port)
caps = st.builds(
    Capability,
    port=ports,
    object=st.integers(min_value=0, max_value=(1 << 24) - 1),
    rights=st.integers(min_value=0, max_value=0xFF).map(Rights),
    check=st.binary(min_size=6, max_size=6),
)

messages = st.builds(
    Message,
    dest=ports,
    reply=ports,
    signature=ports,
    command=st.integers(min_value=0, max_value=0xFFFF),
    status=st.integers(min_value=0, max_value=0xFFFF),
    offset=st.integers(min_value=0, max_value=(1 << 64) - 1),
    size=st.integers(min_value=0, max_value=(1 << 32) - 1),
    capability=st.none() | caps,
    data=st.binary(max_size=200),
    is_reply=st.booleans(),
    extra_caps=st.lists(caps, max_size=3).map(tuple),
)


class TestRoundtrip:
    @given(messages)
    @settings(max_examples=80)
    def test_pack_unpack_identity(self, message):
        assert Message.unpack(message.pack()) == message

    def test_empty_message(self):
        message = Message()
        assert Message.unpack(message.pack()) == message

    def test_extended_capability_in_header(self):
        cap = Capability(
            port=Port(5), object=1, rights=Rights(0xFF), check=b"\xab" * 64
        )
        message = Message(capability=cap)
        assert Message.unpack(message.pack()).capability == cap

    def test_sealed_caps_roundtrip(self):
        message = Message(sealed_caps=b"\x01\x02opaque-encrypted-blob")
        back = Message.unpack(message.pack())
        assert back.sealed_caps == message.sealed_caps
        assert back.capability is None

    def test_sealed_and_plaintext_mutually_exclusive(self):
        cap = Capability(
            port=Port(5), object=1, rights=Rights(0xFF), check=b"\x00" * 6
        )
        with pytest.raises(ValueError):
            Message(capability=cap, sealed_caps=b"blob").pack()


class TestValidation:
    def test_field_bounds(self):
        with pytest.raises(ValueError):
            Message(command=1 << 16)
        with pytest.raises(ValueError):
            Message(status=-1)
        with pytest.raises(ValueError):
            Message(offset=1 << 64)
        with pytest.raises(ValueError):
            Message(size=1 << 32)

    def test_string_data_coerced(self):
        assert Message(data="text").data == b"text"


class TestUnpackRejectsGarbage:
    def test_truncated_header(self):
        with pytest.raises(BadRequest):
            Message.unpack(b"\x00" * (HEADER_BYTES - 1))

    def test_bad_magic(self):
        raw = bytearray(Message().pack())
        raw[0] = ord("X")
        with pytest.raises(BadRequest):
            Message.unpack(bytes(raw))

    def test_bad_version(self):
        raw = bytearray(Message().pack())
        raw[2] = 99
        with pytest.raises(BadRequest):
            Message.unpack(bytes(raw))

    def test_length_mismatch(self):
        raw = Message(data=b"hello").pack()
        with pytest.raises(BadRequest):
            Message.unpack(raw[:-2])
        with pytest.raises(BadRequest):
            Message.unpack(raw + b"!")

    def test_truncated_extra_caps(self):
        cap = Capability(
            port=Port(5), object=1, rights=Rights(0xFF), check=b"\x00" * 6
        )
        raw = bytearray(Message(extra_caps=(cap,)).pack())
        # Claim two extra caps but provide one.
        count_index = HEADER_BYTES  # no header capability present
        raw[count_index] = 2
        with pytest.raises(BadRequest):
            Message.unpack(bytes(raw))


class TestReplyTo:
    def test_reply_addresses_the_reply_port(self):
        request = Message(
            dest=Port(111), reply=Port(222), command=7, data=b"req"
        )
        reply = request.reply_to(data=b"answer")
        assert reply.dest == Port(222)
        assert reply.is_reply
        assert reply.command == 7
        assert reply.data == b"answer"
        assert reply.reply == NULL_PORT

    def test_reply_overrides(self):
        request = Message(reply=Port(9), command=3)
        reply = request.reply_to(status=42)
        assert reply.status == 42


class TestCopy:
    def test_copy_is_independent(self):
        message = Message(data=b"original", command=1)
        changed = message.copy(command=2)
        assert message.command == 1
        assert changed.command == 2
        assert changed.data == b"original"
