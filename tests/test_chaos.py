"""Tests for partitions, DES timers, and the chaos engine.

The contracts under test:

* the partition primitive (:meth:`FaultPlan.sever` / ``heal`` /
  ``isolate`` / ``partition``) severs and heals links on all three
  delivery disciplines — synchronous, deferred event loop, and the DES
  virtual-clock wire — with directed (egress-only, ingress-only,
  pairwise) cuts, and every partitioned frame is counted per link;
* :meth:`VirtualTimeLoop.call_at` timers ride the DES event heap:
  they fire at their virtual instants, in order, even scheduled from
  inside a running step;
* whole-pool silence surfaces as :class:`PartitionSuspected` (a
  *network* verdict, still an :class:`RPCTimeout`), single-server
  silence stays a plain timeout, and a suspecting
  :class:`Locator` re-broadcasts LOCATE so a heal is *observed*;
* the chaos engine replays bit-identically per seed, its invariant
  checkers actually fire on seeded violations, and the multi-hop
  delegation scenario preserves exactly the intended rights across a
  partition-and-heal.
"""

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.errors import PartitionSuspected, PermissionDenied, RPCTimeout
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.faults import FaultPlan
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.net.sched import LatencyModel, VirtualClock
from repro.testing.chaos import (
    CMD_GET,
    CMD_INCR,
    RIGHT_READ,
    RIGHT_WRITE,
    STANDARD_INVARIANTS,
    ScenarioRunner,
    effectively_once,
    no_lost_authority,
    no_phantom_authority,
)


class EchoServer(ObjectServer):
    service_name = "chaos test echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


def world(discipline, plan):
    if discipline == "des":
        net = SimNetwork(
            clock=VirtualClock(),
            latency=LatencyModel(rtt_ms=2.8, jitter_ms=0.2, seed=3),
            faults=plan,
        )
    else:
        net = SimNetwork(synchronous=(discipline == "synchronous"),
                         faults=plan)
    server = EchoServer(Nic(net), rng=RandomSource(seed=3)).start()
    return net, server, Nic(net)


def echo(client, server, payload, timeout=0.25):
    from repro.ipc.rpc import trans

    reply = trans(
        client,
        server.put_port,
        Message(command=USER_BASE, data=payload),
        rng=RandomSource(seed=7),
        timeout=timeout,
    )
    assert reply.data == payload


DISCIPLINES = ("synchronous", "deferred", "des")


class TestPartitionPrimitive:
    @pytest.mark.parametrize("discipline", DISCIPLINES)
    def test_pairwise_sever_and_heal(self, discipline):
        plan = FaultPlan(seed=1)
        net, server, client = world(discipline, plan)
        echo(client, server, b"before")
        plan.sever(src=client.address, dst=server.node.address)
        assert plan.has_partitions
        with pytest.raises(RPCTimeout):
            echo(client, server, b"during")
        plan.heal(src=client.address, dst=server.node.address)
        assert not plan.has_partitions
        echo(client, server, b"after")
        assert plan.stats()["partition_drops"] >= 1

    @pytest.mark.parametrize("discipline", DISCIPLINES)
    def test_egress_cut_silences_a_machine(self, discipline):
        plan = FaultPlan(seed=1)
        net, server, client = world(discipline, plan)
        plan.sever(src=client.address)  # (client, *): nothing leaves
        with pytest.raises(RPCTimeout):
            echo(client, server, b"egress")
        plan.heal(src=client.address)
        echo(client, server, b"healed")

    @pytest.mark.parametrize("discipline", DISCIPLINES)
    def test_ingress_cut_deafens_a_machine(self, discipline):
        plan = FaultPlan(seed=1)
        net, server, client = world(discipline, plan)
        plan.sever(dst=server.node.address)  # (*, server): nothing arrives
        with pytest.raises(RPCTimeout):
            echo(client, server, b"ingress")
        plan.heal(dst=server.node.address)
        echo(client, server, b"healed")

    def test_isolate_and_rejoin(self):
        plan = FaultPlan(seed=1)
        net, server, client = world("synchronous", plan)
        plan.isolate(server.node.address)
        with pytest.raises(RPCTimeout):
            echo(client, server, b"dark")
        plan.rejoin(server.node.address)
        echo(client, server, b"back")
        assert not plan.has_partitions

    def test_asymmetric_cut_loses_only_the_reply(self):
        plan = FaultPlan(seed=1)
        net, server, client = world("synchronous", plan)
        # Cut only server -> client: the request executes, the reply dies.
        plan.sever(src=server.node.address, dst=client.address)
        with pytest.raises(RPCTimeout):
            echo(client, server, b"half")
        assert sum(server.request_counts.values()) >= 1

    def test_partition_groups_and_heal_partition(self):
        plan = FaultPlan(seed=1)
        plan.partition(["a"], ["b", "c"])
        assert plan.link_severed("a", "b")
        assert plan.link_severed("c", "a")  # symmetric by default
        plan.heal_partition(["a"], ["b", "c"])
        assert not plan.has_partitions
        plan.partition(["a"], ["b"], symmetric=False)
        assert plan.link_severed("a", "b")
        assert not plan.link_severed("b", "a")

    def test_sever_requires_an_endpoint_and_heal_all(self):
        plan = FaultPlan(seed=1)
        with pytest.raises(ValueError):
            plan.sever()
        plan.sever(src="a")
        plan.sever(dst="b")
        plan.heal()  # no args: heal everything
        assert not plan.has_partitions

    def test_partitioned_frames_counted_per_link(self):
        from repro.ipc.rpc import trans

        plan = FaultPlan(seed=1)
        net, server, client = world("synchronous", plan)
        plan.sever(src=client.address, dst=server.node.address)
        with pytest.raises(RPCTimeout):
            # Unicast (dst_machine given) so the drop is attributed to
            # the exact link, not the broadcast's "src->*" bucket.
            trans(
                client,
                server.put_port,
                Message(command=USER_BASE, data=b"counted"),
                rng=RandomSource(seed=7),
                timeout=0.25,
                dst_machine=server.node.address,
            )
        by_link = plan.stats()["by_link"]
        key = "%s->%s" % (client.address, server.node.address)
        assert by_link[key]["partition"] >= 1


class TestVirtualTimers:
    def test_timers_fire_at_their_instants_in_order(self):
        clock = VirtualClock()
        net = SimNetwork(clock=clock, latency=LatencyModel(seed=1))
        fired = []
        net.loop.call_at(0.30, lambda: fired.append(("b", clock.now)))
        net.loop.call_at(0.10, lambda: fired.append(("a", clock.now)))
        net.loop.run()
        assert fired == [("a", 0.10), ("b", 0.30)]
        assert net.loop.stats()["timers_fired"] == 2

    def test_past_instant_clamps_to_now(self):
        clock = VirtualClock()
        net = SimNetwork(clock=clock, latency=LatencyModel(seed=1))
        clock.advance_to(1.0)
        fired = []
        net.loop.call_at(0.2, lambda: fired.append(clock.now))
        net.loop.run()
        assert fired == [1.0]

    def test_timer_can_schedule_another_timer(self):
        clock = VirtualClock()
        net = SimNetwork(clock=clock, latency=LatencyModel(seed=1))
        fired = []

        def first():
            fired.append("first")
            net.loop.call_at(0.5, lambda: fired.append("second"))

        net.loop.call_at(0.1, first)
        net.loop.run()
        assert fired == ["first", "second"]

    def test_timer_fires_mid_transaction(self):
        # A cut scheduled on the heap lands while the client is blocked
        # polling for its reply — the re-entrant stepping contract.
        r = ScenarioRunner("timer-mid-trans", seed=3)
        r.at(0.0005, "cut", r.partition_client)
        assert r.incr() is None  # the cut landed before the reply
        r.heal_client()
        assert r.incr() is not None


class TestPartitionSuspicion:
    def test_pool_silence_raises_partition_suspected(self):
        r = ScenarioRunner("pool-silence", seed=5, client_timeout=0.4)
        r.incr()
        r.partition_client()
        with pytest.raises(PartitionSuspected):
            r.client.call(CMD_INCR, capability=r.capability)

    def test_single_server_silence_stays_plain_timeout(self):
        r = ScenarioRunner("single-silence", seed=5, replicas=1,
                          client_timeout=0.4)
        r.incr()
        r.partition_client()
        with pytest.raises(RPCTimeout) as excinfo:
            r.client.call(CMD_INCR, capability=r.capability)
        # One silent machine is a crash verdict, not a network one.
        assert not isinstance(excinfo.value, PartitionSuspected)

    def test_suspecting_locator_rebroadcasts_and_observes_heal(self):
        r = ScenarioRunner("suspect-heal", seed=5, client_timeout=0.4)
        r.incr()
        r.partition_client()
        with pytest.raises(PartitionSuspected):
            r.client.call(CMD_INCR, capability=r.capability)
        assert r.locator.suspects(r.put_port)
        r.heal_client()
        assert r.incr() is not None  # re-LOCATE found the pool again
        assert not r.locator.suspects(r.put_port)

    def test_suspected_cache_hit_probes_instead_of_trusting(self):
        # The Locator's own contract: a *suspected* port's warm cache
        # entry is not trusted — locate re-broadcasts, and the HERE
        # answer clears the suspicion (the heal is observed).
        r = ScenarioRunner("suspect-probe", seed=5)
        locator = r.locator
        locator.locate(r.put_port)
        hits_before = locator.hits
        locator.locate(r.put_port)
        assert locator.hits == hits_before + 1
        locator.suspect(r.put_port)
        assert locator.suspects(r.put_port)
        locator.locate(r.put_port)
        assert locator.suspicion_probes == 1
        assert not locator.suspects(r.put_port)


class TestChaosEngine:
    def _scenario(self, seed):
        r = ScenarioRunner("engine", seed)
        state = {"fresh": None}
        r.at(0.10, "isolate_r2", lambda: r.isolate_replica(2))
        r.at(0.12, "refresh",
             lambda: state.__setitem__("fresh", r.refresh()))
        r.at(0.40, "rejoin_r2", lambda: r.rejoin_replica(2))
        r.at(0.45, "reconcile", r.reconcile)
        r.continuously(*STANDARD_INVARIANTS[:3])
        r.run_ops(4, spacing=0.05)
        r.run_ops(4, capability=state["fresh"], spacing=0.05)
        r.quiesce()
        r.check(*STANDARD_INVARIANTS)
        r.check(no_phantom_authority(r.capability))
        if state["fresh"] is not None:
            r.check(no_lost_authority(state["fresh"]))
        return r.result()

    def test_double_run_is_bit_identical(self):
        assert self._scenario(17) == self._scenario(17)

    def test_different_seeds_still_hold_invariants(self):
        for seed in (1, 2):
            assert self._scenario(seed)["violations"] == []

    def test_reconcile_repairs_the_dark_replica(self):
        result = self._scenario(17)
        repaired = [detail for _t, kind, detail in result["trace"]
                    if kind == "reconcile"]
        assert repaired == ["repaired=1"]
        assert result["faults"]["partition_drops"] >= 1

    def test_effectively_once_checker_fires_on_a_seeded_duplicate(self):
        r = ScenarioRunner("seeded-dup", seed=9)
        r.run_ops(2)
        r.quiesce()
        server = r.servers[0]
        server.execution_log.append(server.execution_log[-1])
        r.check(effectively_once)
        assert any("re-executed" in v for v in r.violations)

    def test_delegation_chain_survives_partition_and_heal(self):
        # A -> B -> C, each hop restricting rights, with a replica out
        # and back *between* the hops: exactly read survives at C.
        r = ScenarioRunner("delegation", seed=13)
        alice = r._make_client("alice")
        bob = r._make_client("bob")
        carol = r._make_client("carol")
        cap_b = alice.restrict(r.capability, int(RIGHT_READ | RIGHT_WRITE))
        r.isolate_replica(1)
        cap_c = bob.restrict(cap_b, int(RIGHT_READ))
        r.rejoin_replica(1)
        assert int(carol.call(CMD_GET, capability=cap_c).data) >= 0
        with pytest.raises(PermissionDenied):
            carol.call(CMD_INCR, capability=cap_c)
        r.quiesce()
        r.check(*STANDARD_INVARIANTS)
        r.check(no_lost_authority(cap_c, RIGHT_READ))
        assert r.violations == []
