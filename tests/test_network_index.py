"""The routing index and its leak guarantees.

Indexed routing replaced the per-frame scan of every NIC; its soundness
rests on one invariant — a (machine, port) pair is in the index exactly
when that NIC's admission filter admits the port — and on pruning: no
index entries, round-robin counters, or owned taps may survive the
machine or GET they belong to.
"""

from repro.core.ports import Port, PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.ipc.rpc import trans, trans_many
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.intruder import Intruder
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic


class Echo(ObjectServer):
    service_name = "echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


class TestIndexMirrorsAdmission:
    def test_listen_registers(self):
        net = SimNetwork()
        nic = Nic(net)
        wire = nic.listen(Port(5))
        assert net._listeners[wire] == [nic.address]
        assert nic.admits(wire)

    def test_unlisten_unregisters(self):
        net = SimNetwork()
        nic = Nic(net)
        wire = nic.listen(Port(5))
        nic.unlisten(Port(5))
        assert wire not in net._listeners
        assert not nic.admits(wire)

    def test_serve_registers_and_stop_unregisters(self):
        net = SimNetwork()
        server = Echo(Nic(net), rng=RandomSource(seed=1)).start()
        wire = server.node.fbox.listen_port(Port(server.get_port.secret))
        assert net._listeners[wire] == [server.node.address]
        server.stop()
        assert wire not in net._listeners

    def test_double_listen_registers_once(self):
        net = SimNetwork()
        nic = Nic(net)
        wire = nic.listen(Port(5))
        assert nic.listen(Port(5)) == wire
        assert net._listeners[wire] == [nic.address]
        nic.unlisten(Port(5))
        assert wire not in net._listeners

    def test_listen_then_serve_single_entry(self):
        net = SimNetwork()
        nic = Nic(net)
        wire = nic.listen(Port(5))
        nic.serve(Port(5), lambda frame: None)
        assert net._listeners[wire] == [nic.address]
        nic.unlisten(Port(5))
        assert wire not in net._listeners


class TestRoutingThroughIndex:
    def test_port_addressed_delivery(self):
        net = SimNetwork()
        a, b = Nic(net), Nic(net)
        wire = b.listen(Port(5))
        assert a.put(Message(dest=wire))
        assert b.poll(Port(5)) is not None

    def test_round_robin_still_rotates(self):
        net = SimNetwork()
        a = Nic(net)
        s1, s2, s3 = Nic(net), Nic(net), Nic(net)
        g = PrivatePort(5)
        wire = s1.listen(g)
        s2.listen(g)
        s3.listen(g)
        for _ in range(6):
            a.put(Message(dest=wire))
        assert [s.pending(g) for s in (s1, s2, s3)] == [2, 2, 2]

    def test_detached_machine_not_routed_to(self):
        net = SimNetwork()
        a = Nic(net)
        s1, s2 = Nic(net), Nic(net)
        g = PrivatePort(5)
        wire = s1.listen(g)
        s2.listen(g)
        net.detach(s1.address)
        for _ in range(4):
            assert a.put(Message(dest=wire))
        assert s2.pending(g) == 4
        assert s1.pending(g) == 0

    def test_drop_when_no_listener(self):
        net = SimNetwork()
        a = Nic(net)
        assert not a.put(Message(dest=Port(404)))
        assert net.frames_dropped == 1


class TestLeakPruning:
    def test_transactions_leave_no_residue(self):
        net = SimNetwork()
        server = Echo(Nic(net), rng=RandomSource(seed=1)).start()
        client = Nic(net)
        rng = RandomSource(seed=2)
        request = Message(command=USER_BASE, data=b"x")
        for _ in range(200):
            trans(client, server.put_port, request, rng)
        # Only the server's own GET remains; per-transaction reply ports
        # and their round-robin counters are gone.
        assert len(net._listeners) == 1
        assert net._round_robin == {}
        assert len(client._sinks) == 0

    def test_round_robin_counter_pruned_with_last_listener(self):
        net = SimNetwork()
        a = Nic(net)
        s1, s2 = Nic(net), Nic(net)
        g = PrivatePort(5)
        wire = s1.listen(g)
        s2.listen(g)
        for _ in range(4):
            a.put(Message(dest=wire))
        assert wire in net._round_robin
        s1.unlisten(g)
        s2.unlisten(g)
        assert wire not in net._round_robin
        assert wire not in net._listeners

    def test_detach_prunes_index_and_counters(self):
        net = SimNetwork()
        a = Nic(net)
        listeners = [Nic(net) for _ in range(5)]
        g = PrivatePort(5)
        wire = listeners[0].listen(g)
        for nic in listeners[1:]:
            nic.listen(g)
        for _ in range(3):
            a.put(Message(dest=wire))
        for nic in listeners:
            net.detach(nic.address)
        assert net._listeners == {}
        assert net._round_robin == {}
        assert net._ports_by_addr.keys() == {a.address}

    def test_detach_removes_owned_taps(self):
        net = SimNetwork()
        sender, receiver = Nic(net), Nic(net)
        intruder = Intruder(net)
        intruder.start_capture()
        wire = receiver.listen(Port(5))
        sender.put(Message(dest=wire))
        assert len(intruder.captured) == 1
        net.detach(intruder.address)
        sender.put(Message(dest=wire))
        assert len(intruder.captured) == 1  # tap died with the machine
        assert net._taps == []

    def test_unowned_taps_survive_detach(self):
        net = SimNetwork()
        sender, receiver = Nic(net), Nic(net)
        seen = []
        net.add_tap(seen.append)
        net.detach(receiver.address)
        sender.put(Message(dest=Port(1)))
        assert len(seen) == 1

    def test_remove_tap_clears_ownership(self):
        net = SimNetwork()
        nic = Nic(net)
        seen = []
        net.add_tap(seen.append, owner=nic.address)
        net.remove_tap(seen.append)
        assert net._taps == []
        assert net._tap_owners == {}

    def test_stop_capture_after_detach_is_noop(self):
        # detach() already removed the owned tap; stop_capture must not
        # crash on the second removal.
        net = SimNetwork()
        intruder = Intruder(net)
        intruder.start_capture()
        net.detach(intruder.address)
        intruder.stop_capture()
        assert net._taps == []


class TestServeBacklog:
    def test_serve_drains_frames_queued_by_listen(self):
        net = SimNetwork()
        sender, receiver = Nic(net), Nic(net)
        g = PrivatePort(5)
        wire = receiver.listen(g)
        sender.put(Message(dest=wire, data=b"early"))
        assert receiver.pending(g) == 1
        handled = []
        receiver.serve(g, handled.append)
        # The queued frame became the handler's backlog, not a stranded
        # entry in a replaced queue.
        assert [f.message.data for f in handled] == [b"early"]
        sender.put(Message(dest=wire, data=b"late"))
        assert [f.message.data for f in handled] == [b"early", b"late"]


class TestPipelinedTransactions:
    """Pipelined transactions against a replicated service: every reply
    must land on its own transaction's fresh reply port, replicas must
    share the load, and completion must leave the index as it found it."""

    def _replicated(self, net, replicas=3):
        first = Echo(Nic(net), rng=RandomSource(seed=1)).start()
        servers = [first]
        for i in range(replicas - 1):
            servers.append(
                Echo(
                    Nic(net),
                    rng=RandomSource(seed=2 + i),
                    get_port=first.get_port,
                    signature=first.signature,
                ).start()
            )
        return servers

    def test_replies_land_on_right_reply_ports(self):
        net = SimNetwork(synchronous=False, auto_drain=False)
        servers = self._replicated(net)
        client = Nic(net)
        n = 32
        requests = [Message(command=USER_BASE, data=b"r%d" % i) for i in range(n)]
        replies = trans_many(client, servers[0].put_port, requests,
                             rng=RandomSource(seed=9))
        # In-order, content-matched: reply i answered request i, so each
        # landed on the port its own transaction listened on.
        assert [r.data for r in replies] == [b"r%d" % i for i in range(n)]
        assert all(r.is_reply for r in replies)

    def test_fairness_across_replicas(self):
        net = SimNetwork(synchronous=False, auto_drain=False)
        servers = self._replicated(net, replicas=3)
        client = Nic(net)
        requests = [Message(command=USER_BASE, data=b"x")] * 30
        trans_many(client, servers[0].put_port, requests,
                   rng=RandomSource(seed=9))
        counts = [s.request_counts[USER_BASE] for s in servers]
        assert sum(counts) == 30
        # The arbiter rotates strictly, so the split is exactly even.
        assert counts == [10, 10, 10]

    def test_no_listener_index_leaks_after_completion(self):
        net = SimNetwork(synchronous=False, auto_drain=False)
        servers = self._replicated(net)
        client = Nic(net)
        service_wire = servers[0].node.fbox.listen_port(
            Port(servers[0].get_port.secret)
        )
        for _ in range(5):
            requests = [Message(command=USER_BASE, data=b"x")] * 16
            trans_many(client, servers[0].put_port, requests,
                       rng=RandomSource(seed=9))
        # Only the service port remains indexed; the 80 per-transaction
        # reply ports and their round-robin counters are gone, as are
        # the client's sinks and the loop's queues.
        assert set(net._listeners) == {service_wire}
        assert set(net._round_robin) <= {service_wire}
        assert len(client._sinks) == 0
        assert net.loop._queues == {}

    def test_pipelined_on_synchronous_network_still_works(self):
        net = SimNetwork()  # plain synchronous seed-era network
        servers = self._replicated(net, replicas=2)
        client = Nic(net)
        requests = [Message(command=USER_BASE, data=b"s%d" % i) for i in range(8)]
        replies = trans_many(client, servers[0].put_port, requests,
                             rng=RandomSource(seed=9))
        assert [r.data for r in replies] == [b"s%d" % i for i in range(8)]
        assert len(net._listeners) == 1
        assert len(client._sinks) == 0


class TestReplyFieldGuard:
    def test_bad_handler_offset_becomes_error_reply(self):
        # A buggy handler returning an out-of-range offset must produce a
        # proper error reply, not a silently corrupt success.
        class Buggy(ObjectServer):
            service_name = "buggy"

            @command(USER_BASE)
            def _bad(self, ctx):
                return ctx.ok(offset=-1)

        net = SimNetwork()
        server = Buggy(Nic(net), rng=RandomSource(seed=1)).start()
        client = Nic(net)
        reply = trans(client, server.put_port, Message(command=USER_BASE),
                      RandomSource(seed=2))
        assert reply.status != 0
        assert b"offset" in reply.data
