"""Integration: the complete §2.4 deployment, announce to sealed RPC.

The full software-protection lifecycle over the simulated wire:

1. the file server machine boots and broadcasts its announcement
   (name, put-port, public key);
2. a client machine hears it and runs the three-step bootstrap exchange
   *over the network* to establish matrix keys;
3. matrix-sealed RPC proceeds; an intruder who captured everything —
   including the bootstrap traffic — can neither recover the keys nor
   replay the sealed capabilities.
"""

import pytest

from repro.core.ports import PrivatePort, as_port
from repro.core.rights import Rights
from repro.crypto.publickey import generate_keypair
from repro.crypto.randomsrc import RandomSource
from repro.ipc.client import ServiceClient
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.intruder import Intruder
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.kernel.machine import Machine
from repro.softprot.boot import BootProtocol
from repro.softprot.cache import ClientCapabilityCache, ServerCapabilityCache
from repro.softprot.matrix import CapabilitySealer, KeyMatrix

pytestmark = pytest.mark.integration

#: Kernel-level command for bootstrap key exchange frames.
BOOT_KEYEX = 22


class VaultServer(ObjectServer):
    service_name = "vault"

    @command(USER_BASE)
    def _read(self, ctx):
        entry, _ = ctx.lookup(Rights(0x01))
        return ctx.ok(data=entry.data)


@pytest.fixture(scope="module")
def server_keys():
    return generate_keypair(bits=512, rng=RandomSource(seed=1906))


def test_full_lifecycle(server_keys):
    net = SimNetwork()
    server_machine = Machine(net, rng=RandomSource(seed=1), name="vault")
    client_machine = Machine(net, rng=RandomSource(seed=2), name="user",
                             with_memory_server=False)
    intruder = Intruder(net, rng=RandomSource(seed=3))
    intruder.start_capture()

    server_matrix = KeyMatrix(rng=RandomSource(seed=4))
    client_matrix = KeyMatrix(rng=RandomSource(seed=5))

    # --- step 0: the server answers key-exchange requests on a known port
    keyex_port = PrivatePort.generate(RandomSource(seed=6))
    server_rng = RandomSource(seed=7)

    def keyex_handler(frame):
        reply_blob, forward, reverse = BootProtocol.server_accept(
            server_keys, frame.message.data, server_rng
        )
        server_matrix.set_key(frame.src, server_machine.address, forward)
        server_matrix.set_key(server_machine.address, frame.src, reverse)
        server_machine.nic.put(frame.message.reply_to(data=reply_blob),
                               dst_machine=frame.src)

    keyex_wire = server_machine.nic.serve(keyex_port, keyex_handler)

    # --- step 1: broadcast announcement ---------------------------------
    server_machine.announce("vault", keyex_wire, server_keys.public)
    heard = client_machine.heard_announcements["vault"]
    assert heard.public_key == server_keys.public

    # --- step 2: the client runs the handshake over the wire -------------
    client_rng = RandomSource(seed=8)
    offer, forward = BootProtocol.client_offer(heard.public_key, client_rng)
    reply_private = PrivatePort.generate(client_rng)
    client_machine.nic.listen(reply_private)
    client_machine.nic.put(
        Message(dest=heard.put_port, command=BOOT_KEYEX, data=offer,
                reply=as_port(reply_private)),
    )
    frame = client_machine.nic.poll(reply_private)
    assert frame is not None
    reverse = BootProtocol.client_confirm(heard.public_key, forward,
                                          frame.message.data)
    client_matrix.set_key(client_machine.address, server_machine.address,
                          forward)
    client_matrix.set_key(server_machine.address, client_machine.address,
                          reverse)

    # Both sides now agree without ever putting a key on the wire.
    assert (client_matrix.key(client_machine.address, server_machine.address)
            == server_matrix.key(client_machine.address,
                                 server_machine.address))

    # --- step 3: matrix-sealed RPC ----------------------------------------
    vault = VaultServer(
        server_machine.nic,
        rng=RandomSource(seed=9),
        sealer=CapabilitySealer(
            server_matrix.view(server_machine.address),
            server_cache=ServerCapabilityCache(),
        ),
        require_sealed=True,
    ).start()
    gold = vault.table.create(b"the crown jewels")
    client = ServiceClient(
        client_machine.nic,
        vault.put_port,
        rng=RandomSource(seed=10),
        locator=client_machine.locator,
        sealer=CapabilitySealer(
            client_matrix.view(client_machine.address),
            client_cache=ClientCapabilityCache(),
        ),
        expect_signature=vault.signature_image,
    )
    assert client.call(USER_BASE, capability=gold).data == b"the crown jewels"

    # --- the intruder captured every frame and still loses ----------------
    # It saw: the announcement (public), the RSA-encrypted offer, the
    # key-sealed reply, and sealed capabilities.  Replaying the sealed
    # request from its own machine fails.
    sealed = [f for f in intruder.captured_requests() if f.message.sealed_caps]
    assert sealed, "the sealed request must have crossed the wire"
    assert gold.check not in sealed[0].message.sealed_caps
    reply_port, _ = intruder.steal_capability(sealed[0])
    answer = intruder.nic.poll(reply_port)
    assert answer is None or answer.message.status != 0

    # And the raw conventional keys never crossed the wire.
    for frame in intruder.captured:
        payload = frame.message.data
        assert forward not in payload
        assert reverse not in payload
