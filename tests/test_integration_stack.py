"""Integration: the whole §3 server suite composed into one system.

One network, several machines, every server the paper describes, driven
through realistic multi-server workflows.
"""

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.errors import InsufficientFunds, InvalidCapability, PermissionDenied
from repro.kernel.machine import Machine
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.servers.bank import BankClient, BankServer
from repro.servers.block import BlockClient, BlockServer
from repro.servers.directory import DirectoryClient, DirectoryServer, resolve_path
from repro.servers.flatfile import FlatFileClient, FlatFileServer
from repro.servers.multiversion import MultiversionClient, MultiversionFileServer
from repro.servers.unixfs import UnixFs

pytestmark = pytest.mark.integration


@pytest.fixture
def system():
    """Three machines: storage, services, and a user workstation."""
    net = SimNetwork()
    storage = Machine(net, rng=RandomSource(seed=1), name="storage")
    services = Machine(net, rng=RandomSource(seed=2), name="services")
    workstation = Machine(net, rng=RandomSource(seed=3), name="workstation",
                          with_memory_server=False)

    blocks = BlockServer(storage.nic, rng=RandomSource(seed=4)).start()
    files = FlatFileServer(
        storage.nic,
        block_client=BlockClient(storage.nic, blocks.put_port,
                                 rng=RandomSource(seed=5)),
        rng=RandomSource(seed=6),
    ).start()
    dirs = DirectoryServer(services.nic, rng=RandomSource(seed=7)).start()
    mv = MultiversionFileServer(services.nic, rng=RandomSource(seed=8)).start()
    bank = BankServer(services.nic, rng=RandomSource(seed=9)).start()

    return {
        "net": net,
        "storage": storage,
        "services": services,
        "workstation": workstation,
        "blocks": blocks,
        "files": files,
        "dirs": dirs,
        "mv": mv,
        "bank": bank,
    }


class TestPaperWalkthrough:
    def test_the_paper_example_end_to_end(self, system):
        """§2.3's running example: create a file, write data, give another
        client read (but not modify) permission."""
        ws = system["workstation"]
        files = system["files"]
        fclient = FlatFileClient(ws.nic, files.put_port, rng=RandomSource(seed=10))
        cap = fclient.create()
        fclient.write(cap, 0, b"some data written by the first client")
        read_only = fclient.restrict(cap, 0x01)

        # "Another client": a different machine entirely.
        other = Machine(system["net"], rng=RandomSource(seed=11),
                        with_memory_server=False)
        other_client = FlatFileClient(other.nic, files.put_port,
                                      rng=RandomSource(seed=12))
        assert other_client.read(read_only, 0, 9) == b"some data"
        with pytest.raises(PermissionDenied):
            other_client.write(read_only, 0, b"vandalism")

    def test_directory_tree_spanning_servers(self, system):
        """Paths hop between directory servers and end at file servers,
        all invisible to the user."""
        ws = system["workstation"]
        dirs = system["dirs"]
        files = system["files"]
        dclient = DirectoryClient(ws.nic, dirs.put_port, rng=RandomSource(seed=13))
        fclient = FlatFileClient(ws.nic, files.put_port, rng=RandomSource(seed=14))

        # A second directory server on the storage machine.
        from repro.servers.directory import DIR_CREATE

        dirs2 = DirectoryServer(system["storage"].nic,
                                rng=RandomSource(seed=15)).start()
        dclient2 = DirectoryClient(ws.nic, dirs2.put_port,
                                   rng=RandomSource(seed=16))

        root = dirs.create_root()
        home = dclient.create_directory(root, "home")
        remote_dir = dclient2.call(DIR_CREATE).capability
        dclient.enter(home, "remote", remote_dir)
        file_cap = fclient.create(b"distributed!")
        dclient2.enter(remote_dir, "data.txt", file_cap)

        found = resolve_path(ws.nic, root, "home/remote/data.txt",
                             rng=RandomSource(seed=17))
        assert found == file_cap
        assert fclient.read(found, 0, 12) == b"distributed!"

    def test_unixfs_over_the_distributed_stack(self, system):
        ws = system["workstation"]
        root = system["dirs"].create_root()
        fs = UnixFs(ws.nic, root, system["files"].put_port,
                    rng=RandomSource(seed=18))
        fs.mkdir("project")
        fd = fs.open("project/notes.md", "a")
        fs.write(fd, b"# Amoeba notes\n")
        fs.write(fd, b"capabilities are bearer tokens\n")
        fs.close(fd)
        fd = fs.open("project/notes.md", "r")
        assert fs.read(fd, 14) == b"# Amoeba notes"
        assert fs.stat("project/notes.md")["size"] == 46

    def test_editing_session_with_versions(self, system):
        """A realistic multiversion flow: draft, commit, concurrent edits,
        conflict, retry."""
        ws = system["workstation"]
        mv = system["mv"]
        mvc = MultiversionClient(ws.nic, mv.put_port, rng=RandomSource(seed=19))
        doc = mvc.create_file()

        v1, _ = mvc.new_version(doc)
        mvc.write(v1, 0, b"Draft 1 of the ICDCS paper")
        mvc.commit(v1)

        alice, _ = mvc.new_version(doc)
        bob, _ = mvc.new_version(doc)
        mvc.write(alice, 0, b"Alice edit")
        mvc.write(bob, 6, b"Bob's edit")
        mvc.commit(bob)
        from repro.errors import VersionConflict

        with pytest.raises(VersionConflict):
            mvc.commit(alice)
        retry, base = mvc.new_version(doc)
        assert base == 2
        mvc.write(retry, 0, b"Alice ")
        mvc.commit(retry)
        assert mvc.n_versions(doc) == 4
        assert mvc.read(doc, 0, 16) == b"Alice Bob's edit"

    def test_economy_funds_the_storage(self, system):
        """Bank + charging file server, three machines apart."""
        from repro.servers.bank import R_DEPOSIT, R_INSPECT, R_WITHDRAW
        from repro.servers.charging import ChargingFlatFileServer
        from repro.servers.flatfile import FILE_CREATE

        net = system["net"]
        ws = system["workstation"]
        bank = system["bank"]
        central = bank.create_account({"USD": 1_000}, mint_right=True)
        revenue = bank.create_account()
        charging = ChargingFlatFileServer(
            system["storage"].nic,
            bank_client=BankClient(system["storage"].nic, bank.put_port,
                                   rng=RandomSource(seed=20)),
            revenue_cap=revenue,
            price=1,
            charge_unit=512,
            rng=RandomSource(seed=21),
        ).start()
        bclient = BankClient(ws.nic, bank.put_port, rng=RandomSource(seed=22))
        wallet = bclient.open_account()
        bclient.transfer(central, wallet, "USD", 5)
        pay = bclient.restrict(wallet, R_WITHDRAW | R_DEPOSIT | R_INSPECT)
        fclient = FlatFileClient(ws.nic, charging.put_port,
                                 rng=RandomSource(seed=23))
        cap = fclient.call(FILE_CREATE, data=b"paid bytes",
                           extra_caps=(pay,)).capability
        assert bclient.balance(wallet)["USD"] == 4
        # Four remaining dollars buy four more 512-byte units; six are
        # refused — running out of money IS the quota.
        from repro.servers.flatfile import FILE_WRITE

        with pytest.raises(InsufficientFunds):
            fclient.call(
                FILE_WRITE,
                capability=cap,
                offset=0,
                data=b"x" * (6 * 512),
                extra_caps=(pay,),
            )


class TestCrossMachineProcesses:
    def test_parent_builds_child_remotely(self, system):
        """§3.1 remote process creation across the simulated LAN."""
        ws = Machine(system["net"], rng=RandomSource(seed=24),
                     with_memory_server=False, name="parent")
        target = system["storage"]
        memory = ws.memory_client(remote_port=target.memory_port)
        text = memory.create_segment(256, initial=b"program text here")
        data = memory.create_segment(128, initial=b"initialised data")
        stack = memory.create_segment(512)
        child = memory.make_process("remote-child", [text, data, stack])
        assert memory.start(child) == "running"
        info = memory.process_info(child)
        assert "remote-child" in info and "segments=3" in info
        assert memory.stop(child) == "stopped"


class TestSystemWideRevocation:
    def test_refresh_cascades_nowhere_else(self, system):
        """Revoking one object must not disturb any other object, even
        under heavy sharing."""
        ws = system["workstation"]
        files = system["files"]
        fclient = FlatFileClient(ws.nic, files.put_port, rng=RandomSource(seed=25))
        caps = [fclient.create(b"file %d" % i) for i in range(5)]
        shared = [fclient.restrict(c, 0x01) for c in caps]
        fresh2 = fclient.refresh(caps[2])
        for i, cap in enumerate(shared):
            if i == 2:
                with pytest.raises(InvalidCapability):
                    fclient.read(cap, 0, 6)
            else:
                assert fclient.read(cap, 0, 6) == b"file %d" % i
        assert fclient.read(fresh2, 0, 6) == b"file 2"
