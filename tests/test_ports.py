"""Tests for ports and the get/put relationship P = F(G)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ports import NULL_PORT, Port, PrivatePort, as_port
from repro.crypto.oneway import default_oneway
from repro.crypto.randomsrc import RandomSource

port_values = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestPort:
    @given(port_values)
    def test_bytes_roundtrip(self, value):
        port = Port(value)
        assert Port.from_bytes(port.to_bytes()) == port

    def test_wire_width(self):
        assert len(Port(0).to_bytes()) == 6

    def test_bounds(self):
        with pytest.raises(ValueError):
            Port(1 << 48)
        with pytest.raises(ValueError):
            Port(-1)

    def test_from_bytes_wrong_length(self):
        with pytest.raises(ValueError):
            Port.from_bytes(b"\x00" * 5)

    def test_null(self):
        assert NULL_PORT.is_null
        assert not Port(1).is_null

    def test_random_ports_distinct(self):
        rng = RandomSource(seed=1)
        ports = {Port.random(rng) for _ in range(100)}
        assert len(ports) == 100

    def test_hashable_and_ordered(self):
        assert Port(1) < Port(2)
        assert len({Port(1), Port(1), Port(2)}) == 2

    def test_to_bytes_cached_on_instance(self):
        port = Port(0xABCDEF)
        assert port.to_bytes() is port.to_bytes()

    def test_from_wire_interns(self):
        wire = Port(0x123456789ABC).to_bytes()
        a = Port.from_wire(wire)
        b = Port.from_wire(bytes(wire))
        assert a is b  # identity, not mere equality
        assert a.value == 0x123456789ABC
        assert a.to_bytes() == wire

    def test_null_port_is_interned(self):
        # Hot-path identity comparisons against NULL_PORT are pointer
        # checks: every decoded all-zero field IS the singleton.
        assert Port.from_bytes(b"\x00" * 6) is NULL_PORT
        assert Port.from_wire(b"\x00" * 6) is NULL_PORT

    @given(port_values)
    def test_from_wire_matches_from_bytes(self, value):
        wire = Port(value).to_bytes()
        assert Port.from_wire(wire) == Port.from_bytes(wire) == Port(value)


class TestPrivatePort:
    def test_public_is_f_of_secret(self):
        private = PrivatePort(12345)
        assert private.public == Port(default_oneway()(12345))

    def test_generate_uses_rng(self):
        a = PrivatePort.generate(RandomSource(seed=5))
        b = PrivatePort.generate(RandomSource(seed=5))
        assert a == b
        assert a.public == b.public

    def test_distinct_secrets_distinct_publics(self):
        rng = RandomSource(seed=6)
        pairs = [PrivatePort.generate(rng) for _ in range(50)]
        assert len({p.public for p in pairs}) == 50

    def test_repr_never_leaks_secret(self):
        # "The get-port is kept secret" — not even in logs.
        private = PrivatePort(0xDEADBEEF0123)
        assert "deadbeef0123" not in repr(private).lower()
        assert "%x" % private.secret not in repr(private).lower()

    def test_bounds(self):
        with pytest.raises(ValueError):
            PrivatePort(1 << 48)


class TestAsPort:
    def test_port_passthrough(self):
        p = Port(7)
        assert as_port(p) is p

    def test_int_coerces(self):
        assert as_port(7) == Port(7)

    def test_private_coerces_to_secret(self):
        # A PrivatePort in a header field must carry the *secret*: the
        # F-box applies F on egress, nothing else may.
        private = PrivatePort(99)
        assert as_port(private) == Port(99)
        assert as_port(private) != private.public

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            as_port("not a port")
