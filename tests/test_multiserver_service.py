"""A service replicated across machines: one put-port, many servers.

§2.2: "Every server has one or more ports ... ports which are known only
to the server processes that comprise the service".  Several processes
doing GET on the same get-port form one load-balanced service; the
network's admission arbiter rotates among them.
"""

import pytest

from repro.core.ports import PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.errors import PortNotLocated
from repro.ipc.client import ServiceClient
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.network import SimNetwork
from repro.net.nic import Nic


class WhoAmI(ObjectServer):
    service_name = "replicated"

    def __init__(self, node, replica_id, **kwargs):
        super().__init__(node, **kwargs)
        self.replica_id = replica_id

    @command(USER_BASE)
    def _whoami(self, ctx):
        return ctx.ok(data=b"replica %d" % self.replica_id)


@pytest.fixture
def service():
    net = SimNetwork()
    # The service's get-port is the shared secret among its members.
    service_port = PrivatePort.generate(RandomSource(seed=1))
    replicas = [
        WhoAmI(
            Nic(net), replica_id=i, get_port=service_port,
            rng=RandomSource(seed=10 + i),
        ).start()
        for i in range(3)
    ]
    client = ServiceClient(Nic(net), replicas[0].put_port,
                           rng=RandomSource(seed=2))
    return net, replicas, client


class TestReplicatedService:
    def test_all_replicas_share_the_put_port(self, service):
        _, replicas, _ = service
        assert len({r.put_port for r in replicas}) == 1

    def test_requests_rotate_among_replicas(self, service):
        _, replicas, client = service
        answers = {client.call(USER_BASE).data for _ in range(9)}
        assert answers == {b"replica 0", b"replica 1", b"replica 2"}

    def test_load_is_balanced(self, service):
        _, replicas, client = service
        for _ in range(30):
            client.call(USER_BASE)
        counts = [r.request_counts.get(USER_BASE, 0) for r in replicas]
        assert counts == [10, 10, 10]

    def test_replica_failure_masked(self, service):
        """A crashed replica just stops answering GET; the rest carry on."""
        _, replicas, client = service
        replicas[1].stop()
        answers = {client.call(USER_BASE).data for _ in range(10)}
        assert answers == {b"replica 0", b"replica 2"}

    def test_whole_service_down(self, service):
        _, replicas, client = service
        for replica in replicas:
            replica.stop()
        with pytest.raises(PortNotLocated):
            client.call(USER_BASE)

    def test_capabilities_are_replica_local(self, service):
        """Object tables are NOT replicated: a capability minted by one
        replica validates only there.  (Real Amoeba services replicate
        state below this layer; the port mechanism is indifferent.)"""
        from repro.errors import AmoebaError

        _, replicas, client = service
        cap = replicas[0].table.create("on replica 0")
        outcomes = set()
        for _ in range(6):
            try:
                client.info(cap)
                outcomes.add("ok")
            except AmoebaError:
                outcomes.add("err")
        assert outcomes == {"ok", "err"}
