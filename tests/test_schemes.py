"""Tests for the four rights-protection algorithms of §2.3.

The common contract is tested across all four schemes parametrically;
each scheme's distinctive properties get their own test classes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capability import Capability
from repro.core.ports import Port
from repro.core.rights import ALL_RIGHTS, Rights
from repro.core.schemes import (
    CommutativeScheme,
    EncryptedRightsScheme,
    SimpleCheckScheme,
    XorOneWayScheme,
    all_scheme_names,
    scheme_by_name,
)
from repro.crypto.randomsrc import RandomSource
from repro.errors import BadRequest, InvalidCapability

RIGHTS_PROTECTING = ("encrypted", "xor-oneway", "commutative")
ALL_SCHEMES = all_scheme_names()

rights_values = st.integers(min_value=0, max_value=0xFF)


def fresh(scheme_name, seed=1):
    scheme = scheme_by_name(scheme_name)
    secret = scheme.new_secret(RandomSource(seed=seed))
    return scheme, secret


class TestCommonContract:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_mint_then_verify(self, name):
        scheme, secret = fresh(name)
        rights_field, check = scheme.mint(secret, ALL_RIGHTS)
        assert scheme.verify(secret, rights_field, check) == ALL_RIGHTS

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_check_field_width_is_declared(self, name):
        scheme, secret = fresh(name)
        _, check = scheme.mint(secret, ALL_RIGHTS)
        assert len(check) == scheme.check_bytes

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_wrong_secret_rejected(self, name):
        scheme, secret = fresh(name, seed=1)
        other_secret = scheme.new_secret(RandomSource(seed=2))
        rights_field, check = scheme.mint(secret, ALL_RIGHTS)
        with pytest.raises(InvalidCapability):
            scheme.verify(other_secret, rights_field, check)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_corrupted_check_rejected(self, name):
        scheme, secret = fresh(name)
        rights_field, check = scheme.mint(secret, ALL_RIGHTS)
        corrupted = bytes([check[0] ^ 0x01]) + check[1:]
        with pytest.raises(InvalidCapability):
            scheme.verify(secret, rights_field, corrupted)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_wrong_width_check_rejected(self, name):
        scheme, secret = fresh(name)
        rights_field, check = scheme.mint(secret, ALL_RIGHTS)
        with pytest.raises(InvalidCapability):
            scheme.verify(secret, rights_field, check + b"\x00")

    @pytest.mark.parametrize("name", RIGHTS_PROTECTING)
    def test_restrict_yields_verifiable_subset(self, name):
        scheme, secret = fresh(name)
        rights_field, check = scheme.mint(secret, ALL_RIGHTS)
        new_rights, new_check = scheme.restrict(
            secret, rights_field, check, Rights(0b0011)
        )
        assert scheme.verify(secret, new_rights, new_check) == Rights(0b0011)

    @pytest.mark.parametrize("name", RIGHTS_PROTECTING)
    @given(rights_values)
    @settings(max_examples=20, deadline=None)
    def test_any_rights_value_mintable(self, name, bits):
        scheme, secret = fresh(name)
        rights_field, check = scheme.mint(secret, Rights(bits))
        assert scheme.verify(secret, rights_field, check) == Rights(bits)


class TestRightsTampering:
    """The central claim: "although a user can tamper with the plaintext
    RIGHTS field, such tampering will result in the server ultimately
    rejecting the capability."""

    @pytest.mark.parametrize("name", RIGHTS_PROTECTING)
    @given(st.integers(min_value=1, max_value=0xFF))
    @settings(max_examples=40, deadline=None)
    def test_every_rights_flip_detected(self, name, flip):
        scheme, secret = fresh(name)
        rights_field, check = scheme.mint(secret, Rights(0b00001111))
        tampered = Rights(int(rights_field) ^ flip)
        with pytest.raises(InvalidCapability):
            scheme.verify(secret, tampered, check)

    @pytest.mark.parametrize("name", RIGHTS_PROTECTING)
    def test_cannot_upgrade_restricted_capability(self, name):
        scheme, secret = fresh(name)
        rights_field, check = scheme.mint(secret, ALL_RIGHTS)
        weak_rights, weak_check = scheme.restrict(
            secret, rights_field, check, Rights(0x01)
        )
        # Claiming all rights with the weak check must fail.
        with pytest.raises(InvalidCapability):
            scheme.verify(secret, ALL_RIGHTS, weak_check)


class TestSimpleScheme:
    """§2.3 "simplest" system: genuine-or-not, no rights distinction."""

    def test_verify_grants_everything(self):
        scheme, secret = fresh("simple")
        rights_field, check = scheme.mint(secret, Rights(0x01))
        # The scheme cannot represent fewer rights: verification of a
        # genuine capability yields ALL rights regardless.
        assert scheme.verify(secret, rights_field, check) == ALL_RIGHTS

    def test_restriction_refused(self):
        scheme, secret = fresh("simple")
        rights_field, check = scheme.mint(secret, ALL_RIGHTS)
        with pytest.raises(BadRequest):
            scheme.restrict(secret, rights_field, check, Rights(0x01))

    def test_flags(self):
        scheme = SimpleCheckScheme()
        assert not scheme.supports_restriction
        assert not scheme.client_restrictable


class TestEncryptedScheme:
    """§2.3 first algorithm: E(rights || known constant)."""

    def test_rights_field_is_ciphertext(self):
        scheme, secret = fresh("encrypted")
        rights_field, _ = scheme.mint(secret, Rights(0b10101010))
        # The wire rights field should (almost always) differ from the
        # plaintext rights: it is half of a 56-bit ciphertext.
        minted = [
            scheme.mint(secret, Rights(r))[0] == Rights(r) for r in range(64)
        ]
        assert sum(minted) < 8  # chance matches only

    def test_known_constant_checked(self):
        scheme, secret = fresh("encrypted")
        # A random rights/check pair decrypts to a random constant:
        # 2**-48 acceptance probability.
        with pytest.raises(InvalidCapability):
            scheme.verify(secret, Rights(0x5A), b"\xa5" * 6)

    def test_per_object_keys_differ(self):
        scheme = EncryptedRightsScheme()
        s1 = scheme.new_secret(RandomSource(seed=1))
        s2 = scheme.new_secret(RandomSource(seed=2))
        f1, c1 = scheme.mint(s1, ALL_RIGHTS)
        with pytest.raises(InvalidCapability):
            scheme.verify(s2, f1, c1)


class TestXorOneWayScheme:
    """§2.3 second algorithm: check = F(random XOR rights)."""

    def test_rights_field_is_plaintext(self):
        scheme, secret = fresh("xor-oneway")
        rights_field, _ = scheme.mint(secret, Rights(0b1010))
        assert rights_field == Rights(0b1010)

    def test_check_depends_on_rights(self):
        scheme, secret = fresh("xor-oneway")
        _, c1 = scheme.mint(secret, Rights(0b01))
        _, c2 = scheme.mint(secret, Rights(0b10))
        assert c1 != c2

    def test_mint_is_deterministic(self):
        # Same secret + same rights -> identical capability bytes, so
        # handing out "an exact copy of its capability" is just copying.
        scheme, secret = fresh("xor-oneway")
        assert scheme.mint(secret, Rights(7)) == scheme.mint(secret, Rights(7))


class TestCommutativeScheme:
    """§2.3 third algorithm: client-side restriction, order-independence."""

    @pytest.fixture()
    def setup(self):
        scheme = CommutativeScheme()
        secret = scheme.new_secret(RandomSource(seed=3))
        port = Port(0xABCDEF)
        rights_field, check = scheme.mint(secret, ALL_RIGHTS)
        cap = Capability(port=port, object=5, rights=rights_field, check=check)
        return scheme, secret, cap

    def test_client_restrict_verifies(self, setup):
        scheme, secret, cap = setup
        weaker = scheme.client_restrict(cap, Rights(0b00000110))
        assert scheme.verify(secret, weaker.rights, weaker.check) == Rights(0b0110)

    def test_client_restrict_needs_no_secret(self, setup):
        scheme, _, cap = setup
        # The method signature itself proves it, but assert the produced
        # capability differs from the original (one-way applied).
        weaker = scheme.client_restrict(cap, Rights(0x0F))
        assert weaker.check != cap.check
        assert weaker.rights == Rights(0x0F)

    def test_restriction_order_does_not_matter(self, setup):
        scheme, secret, cap = setup
        path_a = scheme.client_restrict(
            scheme.client_restrict(cap, Rights(0xFF).without(0x01)),
            Rights(0xFF).without(0x06),
        )
        path_b = scheme.client_restrict(
            scheme.client_restrict(cap, Rights(0xFF).without(0x06)),
            Rights(0xFF).without(0x01),
        )
        assert path_a.check == path_b.check
        assert path_a.rights == path_b.rights

    def test_cannot_regain_dropped_right(self, setup):
        scheme, secret, cap = setup
        weaker = scheme.client_restrict(cap, Rights(0b11111110))
        forged = weaker.with_rights(ALL_RIGHTS)
        with pytest.raises(InvalidCapability):
            scheme.verify(secret, forged.rights, forged.check)

    def test_restrict_to_same_rights_is_identity(self, setup):
        scheme, _, cap = setup
        same = scheme.client_restrict(cap, ALL_RIGHTS)
        assert same.check == cap.check

    def test_recover_rights_bruteforce(self, setup):
        # "In theory at least, the RIGHTS field is not even needed."
        scheme, secret, cap = setup
        weaker = scheme.client_restrict(cap, Rights(0b00010001))
        assert scheme.recover_rights(secret, weaker.check) == Rights(0b00010001)

    def test_recover_rights_rejects_garbage(self, setup):
        scheme, secret, _ = setup
        with pytest.raises(InvalidCapability):
            scheme.recover_rights(secret, b"\x01" * scheme.check_bytes)

    def test_check_not_a_group_element_rejected(self, setup):
        scheme, secret, cap = setup
        too_big = b"\xff" * scheme.check_bytes
        with pytest.raises(InvalidCapability):
            scheme.verify(secret, cap.rights, too_big)

    def test_extended_capability_roundtrips(self, setup):
        _, _, cap = setup
        assert Capability.unpack(cap.pack()) == cap
        assert not cap.is_canonical


class TestFactory:
    def test_all_names_construct(self):
        for name in ALL_SCHEMES:
            assert scheme_by_name(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            scheme_by_name("rot13")

    def test_presentation_order(self):
        assert ALL_SCHEMES == ("simple", "encrypted", "xor-oneway", "commutative")
