"""Tests for the Feistel ciphers (scheme 1 and the §2.4 key matrix)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.feistel import (
    CAPABILITY_BLOCK_BITS,
    RIGHTS_CHECK_BLOCK_BITS,
    FeistelCipher,
    WideBlockCipher,
)

blocks56 = st.integers(min_value=0, max_value=(1 << 56) - 1)


class TestFeistelRoundtrip:
    @given(blocks56)
    def test_decrypt_inverts_encrypt(self, block):
        cipher = FeistelCipher(b"key material")
        assert cipher.decrypt(cipher.encrypt(block)) == block

    @given(blocks56)
    def test_encrypt_inverts_decrypt(self, block):
        cipher = FeistelCipher(b"key material")
        assert cipher.encrypt(cipher.decrypt(block)) == block

    def test_128_bit_blocks(self):
        cipher = FeistelCipher(b"k", block_bits=CAPABILITY_BLOCK_BITS)
        block = int.from_bytes(b"a 16 byte block!", "big")
        assert cipher.decrypt(cipher.encrypt(block)) == block

    def test_bytes_interface(self):
        cipher = FeistelCipher(b"k", block_bits=128)
        ct = cipher.encrypt_bytes(b"capability bytes")
        assert len(ct) == 16
        assert cipher.decrypt_bytes(ct) == b"capability bytes"

    def test_bytes_interface_wrong_length(self):
        cipher = FeistelCipher(b"k", block_bits=128)
        with pytest.raises(ValueError):
            cipher.encrypt_bytes(b"short")


class TestFeistelIsACipher:
    def test_different_keys_different_ciphertexts(self):
        a = FeistelCipher(b"key-a").encrypt(0xDEADBEEF)
        b = FeistelCipher(b"key-b").encrypt(0xDEADBEEF)
        assert a != b

    def test_permutation_no_collisions(self):
        cipher = FeistelCipher(b"k")
        outputs = {cipher.encrypt(v) for v in range(500)}
        assert len(outputs) == 500

    def test_avalanche_on_plaintext(self):
        # §2.3: "an encryption function that mixes the bits thoroughly is
        # required ... EXCLUSIVE-OR'ing a constant will not do."  Flipping
        # one plaintext bit must scramble roughly half the ciphertext.
        cipher = FeistelCipher(b"k")
        base = cipher.encrypt(0)
        flipped = cipher.encrypt(1)
        assert bin(base ^ flipped).count("1") >= 12

    def test_avalanche_on_ciphertext_tamper(self):
        # The scheme-1 security argument: tampering with ciphertext bits
        # (the RIGHTS field) scrambles the decrypted known constant.
        cipher = FeistelCipher(b"k")
        ct = cipher.encrypt(0xFF << 48)  # rights=0xFF, constant=0
        tampered_pt = cipher.decrypt(ct ^ (1 << 55))
        assert tampered_pt & ((1 << 48) - 1) != 0

    def test_not_a_plain_xor(self):
        cipher = FeistelCipher(b"k")
        # If E(x) = x ^ c, then E(a) ^ E(b) == a ^ b.  Refute it.
        assert (cipher.encrypt(0x1111) ^ cipher.encrypt(0x2222)) != (0x1111 ^ 0x2222)


class TestFeistelValidation:
    def test_rejects_empty_key(self):
        with pytest.raises(ValueError):
            FeistelCipher(b"")

    def test_rejects_odd_block(self):
        with pytest.raises(ValueError):
            FeistelCipher(b"k", block_bits=57)

    def test_rejects_few_rounds(self):
        with pytest.raises(ValueError):
            FeistelCipher(b"k", rounds=2)

    def test_rejects_out_of_range_block(self):
        cipher = FeistelCipher(b"k", block_bits=56)
        with pytest.raises(ValueError):
            cipher.encrypt(1 << 56)
        with pytest.raises(ValueError):
            cipher.decrypt(-1)

    def test_string_key_accepted(self):
        assert FeistelCipher("text key").encrypt(5) == FeistelCipher(
            b"text key"
        ).encrypt(5)


class TestWideBlockCipher:
    @given(st.binary(min_size=2, max_size=200))
    @settings(max_examples=60)
    def test_roundtrip_any_length(self, data):
        cipher = WideBlockCipher(b"matrix key")
        ct = cipher.encrypt(data)
        assert len(ct) == len(data)
        assert cipher.decrypt(ct) == data

    def test_odd_length_roundtrip(self):
        cipher = WideBlockCipher(b"k")
        data = b"odd-length capability blob!"  # 27 bytes
        assert cipher.decrypt(cipher.encrypt(data)) == data

    def test_wrong_key_garbles(self):
        ct = WideBlockCipher(b"right key").encrypt(b"a capability here...")
        wrong = WideBlockCipher(b"wrong key").decrypt(ct)
        assert wrong != b"a capability here..."

    def test_single_byte_flip_scrambles_everything(self):
        # The matrix scheme's "decrypts to make sense" check needs
        # non-local damage: one flipped ciphertext byte must not leave
        # the rest of the plaintext intact.
        cipher = WideBlockCipher(b"k")
        data = bytes(range(60))
        ct = bytearray(cipher.encrypt(data))
        ct[0] ^= 0x01
        damaged = cipher.decrypt(bytes(ct))
        matching = sum(1 for a, b in zip(damaged, data) if a == b)
        assert matching < len(data) // 2

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            WideBlockCipher(b"k").encrypt(b"x")

    def test_rounds_validation(self):
        with pytest.raises(ValueError):
            WideBlockCipher(b"k", rounds=3)
        with pytest.raises(ValueError):
            WideBlockCipher(b"k", rounds=5)


class TestCipherCache:
    def test_feistel_for_key_shares_instances(self):
        from repro.crypto.feistel import feistel_for_key

        a = feistel_for_key(b"k", block_bits=128)
        b = feistel_for_key(b"k", block_bits=128)
        assert a is b
        assert feistel_for_key(b"k2", block_bits=128) is not a
        # Different geometry under the same key is a different cipher.
        assert feistel_for_key(b"k", block_bits=56) is not a

    def test_wide_cipher_for_key_shares_instances(self):
        from repro.crypto.feistel import wide_cipher_for_key

        a = wide_cipher_for_key(b"line-key")
        assert wide_cipher_for_key(b"line-key") is a
        assert wide_cipher_for_key("line-key") is a  # str keys normalize

    def test_cached_cipher_output_unchanged(self):
        # The precomputed round states are a key schedule, not a format
        # change: a fresh instance and a cached one must agree bit for bit.
        from repro.crypto.feistel import wide_cipher_for_key

        data = bytes(range(77))
        fresh = WideBlockCipher(b"parity-key")
        cached = wide_cipher_for_key(b"parity-key")
        assert fresh.encrypt(data) == cached.encrypt(data)
        assert cached.decrypt(cached.encrypt(data)) == data
