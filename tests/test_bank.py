"""Tests for the bank server (§3.6): transfers, currencies, conservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.randomsrc import RandomSource
from repro.errors import (
    BadRequest,
    InconvertibleCurrency,
    InsufficientFunds,
    InvalidCapability,
    PermissionDenied,
    UnknownCurrency,
)
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.servers.bank import (
    BANK_TRANSFER,
    R_DEPOSIT,
    R_INSPECT,
    R_WITHDRAW,
    BankClient,
    BankServer,
)


@pytest.fixture
def world():
    net = SimNetwork()
    server = BankServer(
        Nic(net),
        exchange_rates={("USD", "FRF"): (7, 1), ("FRF", "USD"): (1, 7)},
        rng=RandomSource(seed=1),
    ).start()
    client = BankClient(
        Nic(net),
        server.put_port,
        rng=RandomSource(seed=2),
        expect_signature=server.signature_image,
    )
    central = server.create_account({"USD": 10_000}, mint_right=True)
    return net, server, client, central


class TestAccounts:
    def test_open_account_empty(self, world):
        _, _, client, _ = world
        account = client.open_account()
        assert client.balance(account) == {}

    def test_opened_accounts_cannot_mint(self, world):
        _, _, client, _ = world
        account = client.open_account()
        with pytest.raises(PermissionDenied):
            client.mint(account, "USD", 100)

    def test_central_bank_mints(self, world):
        _, _, client, central = world
        client.mint(central, "YEN", 5000)
        assert client.balance(central)["YEN"] == 5000


class TestTransfers:
    def test_transfer_moves_money(self, world):
        _, _, client, central = world
        alice = client.open_account()
        client.transfer(central, alice, "USD", 250)
        assert client.balance(alice) == {"USD": 250}
        assert client.balance(central)["USD"] == 9_750

    def test_insufficient_funds(self, world):
        _, _, client, central = world
        alice = client.open_account()
        client.transfer(central, alice, "USD", 10)
        with pytest.raises(InsufficientFunds):
            client.transfer(alice, central, "USD", 11)
        assert client.balance(alice) == {"USD": 10}  # unchanged

    def test_unknown_currency(self, world):
        _, _, client, central = world
        alice = client.open_account()
        with pytest.raises(UnknownCurrency):
            client.transfer(alice, central, "BTC", 1)

    def test_amount_validation(self, world):
        _, _, client, central = world
        alice = client.open_account()
        for bad in ("USD:0", "USD:-5", "USD:x", "USD", ":5"):
            with pytest.raises(BadRequest):
                client.call(
                    BANK_TRANSFER,
                    capability=central,
                    extra_caps=(alice,),
                    data=bad.encode(),
                )

    def test_payee_must_be_at_this_bank(self, world):
        net, server, client, central = world
        other_bank = BankServer(Nic(net), rng=RandomSource(seed=3)).start()
        foreign = other_bank.create_account()
        with pytest.raises(InvalidCapability):
            client.transfer(central, foreign, "USD", 1)


class TestRightsAsPolicy:
    def test_withdraw_needs_withdraw_right(self, world):
        _, _, client, central = world
        alice = client.open_account()
        client.transfer(central, alice, "USD", 100)
        inspect_only = client.restrict(alice, R_INSPECT)
        with pytest.raises(PermissionDenied):
            client.transfer(inspect_only, central, "USD", 1)

    def test_deposit_only_capability_for_merchants(self, world):
        """Hand a server a deposit-only capability: it can receive your
        payment but never pull more."""
        _, _, client, central = world
        alice = client.open_account()
        client.transfer(central, alice, "USD", 100)
        deposit_only = client.restrict(alice, R_DEPOSIT)
        client.transfer(central, deposit_only, "USD", 5)  # deposits fine
        with pytest.raises(PermissionDenied):
            client.transfer(deposit_only, central, "USD", 1)

    def test_balance_needs_inspect(self, world):
        _, _, client, central = world
        alice = client.open_account()
        blind = client.restrict(alice, R_WITHDRAW)
        with pytest.raises(PermissionDenied):
            client.balance(blind)


class TestCurrencies:
    def test_convert_at_rate(self, world):
        """'CPU time could be charged in francs' — 7 FRF to the dollar."""
        _, _, client, central = world
        alice = client.open_account()
        client.transfer(central, alice, "USD", 100)
        got = client.convert(alice, "USD", "FRF", 10)
        assert got == 70
        assert client.balance(alice) == {"USD": 90, "FRF": 70}

    def test_inconvertible_pair(self, world):
        _, _, client, central = world
        client.mint(central, "YEN", 100)
        with pytest.raises(InconvertibleCurrency):
            client.convert(central, "YEN", "USD", 10)

    def test_separate_currencies_separate_quotas(self, world):
        _, _, client, central = world
        client.mint(central, "YEN", 3)
        alice = client.open_account()
        client.transfer(central, alice, "YEN", 3)
        client.transfer(central, alice, "USD", 100)
        # Yen exhaustion does not touch dollars.
        with pytest.raises(InsufficientFunds):
            client.transfer(alice, central, "YEN", 4)
        client.transfer(alice, central, "USD", 100)


class TestConservation:
    """Virtual money is conserved: transfers never create or destroy it."""

    @given(st.lists(st.integers(min_value=1, max_value=50), max_size=15))
    @settings(max_examples=20, deadline=None)
    def test_random_transfer_sequences_conserve_total(self, amounts):
        net = SimNetwork()
        server = BankServer(Nic(net), rng=RandomSource(seed=4)).start()
        client = BankClient(Nic(net), server.put_port, rng=RandomSource(seed=5))
        accounts = [server.create_account({"USD": 100}) for _ in range(3)]
        rng = RandomSource(seed=6)
        for i, amount in enumerate(amounts):
            payer = accounts[i % 3]
            payee = accounts[(i + 1) % 3]
            try:
                client.transfer(payer, payee, "USD", amount)
            except InsufficientFunds:
                pass
            assert server.total_in_circulation("USD") == 300

    def test_minted_equals_circulation(self, world):
        _, server, client, central = world
        alice = client.open_account()
        client.transfer(central, alice, "USD", 123)
        client.mint(central, "USD", 77)
        assert server.total_in_circulation("USD") == server.minted["USD"]
