"""Tests for the commutative one-way family behind scheme 3."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.commutative import (
    DEFAULT_EXPONENTS,
    DEFAULT_MODULUS,
    CommutativeOneWayFamily,
)
from repro.crypto.randomsrc import RandomSource

indices = st.integers(min_value=0, max_value=len(DEFAULT_EXPONENTS) - 1)


@pytest.fixture(scope="module")
def family():
    return CommutativeOneWayFamily()


@pytest.fixture(scope="module")
def element(family):
    return family.random_element(RandomSource(seed=99))


class TestCommutativity:
    """The property the whole scheme stands on: deletion order must not
    matter ("it does not matter in what order the bits ... were turned
    off")."""

    @given(indices, indices)
    @settings(max_examples=30)
    def test_pairwise_commute(self, i, j):
        family = CommutativeOneWayFamily()
        x = family.random_element(RandomSource(seed=5))
        assert family.apply(i, family.apply(j, x)) == family.apply(
            j, family.apply(i, x)
        )

    def test_all_orderings_of_three(self, family, element):
        results = {
            family.apply(a, family.apply(b, family.apply(c, element)))
            for a, b, c in itertools.permutations((1, 4, 6))
        }
        assert len(results) == 1

    def test_apply_many_equals_sequential(self, family, element):
        sequential = element
        for k in (0, 3, 7):
            sequential = family.apply(k, sequential)
        assert family.apply_many((7, 0, 3), element) == sequential

    def test_apply_many_empty_is_identity(self, family, element):
        assert family.apply_many((), element) == element


class TestOneWayness:
    def test_image_differs_from_preimage(self, family, element):
        for k in range(family.n_functions):
            assert family.apply(k, element) != element

    def test_different_functions_different_images(self, family, element):
        images = {family.apply(k, element) for k in range(family.n_functions)}
        assert len(images) == family.n_functions

    def test_repeated_application_distinct(self, family, element):
        # F_k is a permutation with (almost surely) enormous orbit length.
        seen = set()
        x = element
        for _ in range(30):
            x = family.apply(2, x)
            seen.add(x)
        assert len(seen) == 30


class TestDeletedRightsIndices:
    def test_all_rights_deletes_nothing(self, family):
        assert family.indices_for_deleted_rights(0xFF, 8) == []

    def test_no_rights_deletes_everything(self, family):
        assert family.indices_for_deleted_rights(0x00, 8) == list(range(8))

    def test_mixed(self, family):
        # rights 0b10100101: bits 0,2,5,7 kept; 1,3,4,6 deleted.
        assert family.indices_for_deleted_rights(0b10100101, 8) == [1, 3, 4, 6]

    def test_width_bounds(self, family):
        with pytest.raises(ValueError):
            family.indices_for_deleted_rights(0, 9)
        with pytest.raises(ValueError):
            family.indices_for_deleted_rights(0x100, 8)


class TestValidation:
    def test_default_modulus_is_large(self):
        assert DEFAULT_MODULUS.bit_length() >= 512

    def test_element_bytes(self, family):
        assert family.element_bytes == 64

    def test_index_bounds(self, family, element):
        with pytest.raises(IndexError):
            family.apply(family.n_functions, element)
        with pytest.raises(IndexError):
            family.apply(-1, element)

    def test_element_bounds(self, family):
        with pytest.raises(ValueError):
            family.apply(0, family.modulus)

    def test_duplicate_exponents_rejected(self):
        with pytest.raises(ValueError):
            CommutativeOneWayFamily(exponents=(3, 3, 5))

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ValueError):
            CommutativeOneWayFamily(modulus=12345)

    def test_unit_exponent_rejected(self):
        with pytest.raises(ValueError):
            CommutativeOneWayFamily(exponents=(1, 3))

    def test_random_element_in_group(self, family):
        rng = RandomSource(seed=10)
        for _ in range(20):
            x = family.random_element(rng)
            assert 2 <= x <= family.modulus - 2
