"""Tests for sender authentication via the signature field (§2.2).

"The third [port field] can be used to authenticate the sender, since
only the true owner of the signature will know what number to put in the
third field to insure that the publicly-known F(S) comes out."
"""

import pytest

from repro.core.ports import PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.errors import SecurityError
from repro.ipc.client import ServiceClient
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.network import SimNetwork
from repro.net.nic import Nic


class MembersOnly(ObjectServer):
    service_name = "members only"

    @command(USER_BASE)
    def _serve(self, ctx):
        return ctx.ok(data=b"welcome")


@pytest.fixture
def world():
    net = SimNetwork()
    alice_sig = PrivatePort.generate(RandomSource(seed=1))
    server = MembersOnly(
        Nic(net),
        rng=RandomSource(seed=2),
        authorized_signatures={alice_sig.public},
    ).start()
    return net, server, alice_sig


class TestAuthorizedClient:
    def test_owner_of_secret_admitted(self, world):
        net, server, alice_sig = world
        alice = ServiceClient(
            Nic(net), server.put_port, rng=RandomSource(seed=3),
            signature=alice_sig,
        )
        assert alice.call(USER_BASE).data == b"welcome"

    def test_unsigned_request_refused(self, world):
        net, server, _ = world
        anonymous = ServiceClient(Nic(net), server.put_port,
                                  rng=RandomSource(seed=4))
        with pytest.raises(SecurityError):
            anonymous.call(USER_BASE)

    def test_wrong_signature_refused(self, world):
        net, server, _ = world
        mallory_sig = PrivatePort.generate(RandomSource(seed=5))
        mallory = ServiceClient(Nic(net), server.put_port,
                                rng=RandomSource(seed=6),
                                signature=mallory_sig)
        with pytest.raises(SecurityError):
            mallory.call(USER_BASE)

    def test_public_image_is_not_the_credential(self, world):
        """Knowing F(S) is useless: sending it puts F(F(S)) on the wire."""
        net, server, alice_sig = world
        from repro.core.ports import as_port

        impostor = ServiceClient(
            Nic(net), server.put_port, rng=RandomSource(seed=7),
            signature=as_port(alice_sig.public),
        )
        with pytest.raises(SecurityError):
            impostor.call(USER_BASE)

    def test_authorize_client_at_runtime(self, world):
        net, server, _ = world
        bob_sig = PrivatePort.generate(RandomSource(seed=8))
        bob = ServiceClient(Nic(net), server.put_port,
                            rng=RandomSource(seed=9), signature=bob_sig)
        with pytest.raises(SecurityError):
            bob.call(USER_BASE)
        server.authorize_client(bob_sig.public)
        assert bob.call(USER_BASE).data == b"welcome"

    def test_open_server_needs_no_signature(self):
        net = SimNetwork()
        server = MembersOnly(Nic(net), rng=RandomSource(seed=10)).start()
        client = ServiceClient(Nic(net), server.put_port,
                               rng=RandomSource(seed=11))
        assert client.call(USER_BASE).data == b"welcome"
