"""Tests for the directory server (§3.4), including multi-server paths."""

import pytest

from repro.core.rights import Rights
from repro.crypto.randomsrc import RandomSource
from repro.errors import (
    BadRequest,
    NameExists,
    NameNotFound,
    PermissionDenied,
)
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.servers.directory import (
    DIR_CREATE,
    R_LOOKUP,
    R_MODIFY,
    DirectoryClient,
    DirectoryServer,
    resolve_path,
)
from repro.servers.flatfile import FlatFileClient, FlatFileServer


@pytest.fixture
def world():
    net = SimNetwork()
    server = DirectoryServer(Nic(net), rng=RandomSource(seed=1)).start()
    client_nic = Nic(net)
    client = DirectoryClient(
        client_nic,
        server.put_port,
        rng=RandomSource(seed=2),
        expect_signature=server.signature_image,
    )
    root = server.create_root()
    return net, server, client, client_nic, root


class TestEntries:
    def test_enter_lookup(self, world):
        _, server, client, _, root = world
        target = server.table.create("some object")
        client.enter(root, "thing", target)
        assert client.lookup(root, "thing") == target

    def test_lookup_missing(self, world):
        _, _, client, _, root = world
        with pytest.raises(NameNotFound):
            client.lookup(root, "ghost")

    def test_enter_duplicate_refused(self, world):
        _, server, client, _, root = world
        target = server.table.create("x")
        client.enter(root, "name", target)
        with pytest.raises(NameExists):
            client.enter(root, "name", target)

    def test_enter_overwrite(self, world):
        _, server, client, _, root = world
        a = server.table.create("a")
        b = server.table.create("b")
        client.enter(root, "name", a)
        client.enter(root, "name", b, overwrite=True)
        assert client.lookup(root, "name") == b

    def test_remove(self, world):
        _, server, client, _, root = world
        target = server.table.create("x")
        client.enter(root, "doomed", target)
        client.remove(root, "doomed")
        with pytest.raises(NameNotFound):
            client.lookup(root, "doomed")

    def test_remove_missing(self, world):
        _, _, client, _, root = world
        with pytest.raises(NameNotFound):
            client.remove(root, "ghost")

    def test_list_sorted(self, world):
        _, server, client, _, root = world
        for name in ("zebra", "alpha", "monkey"):
            client.enter(root, name, server.table.create(name))
        assert client.list(root) == ["alpha", "monkey", "zebra"]

    def test_list_empty(self, world):
        _, _, client, _, root = world
        assert client.list(root) == []

    def test_name_validation(self, world):
        _, server, client, _, root = world
        target = server.table.create("x")
        with pytest.raises(BadRequest):
            client.enter(root, "", target)
        with pytest.raises(BadRequest):
            client.enter(root, "a/b", target)
        with pytest.raises(BadRequest):
            client.enter(root, "x" * 300, target)


class TestRights:
    def test_lookup_only_capability(self, world):
        _, server, client, _, root = world
        target = server.table.create("x")
        client.enter(root, "entry", target)
        reader = client.restrict(root, R_LOOKUP)
        assert client.lookup(reader, "entry") == target
        with pytest.raises(PermissionDenied):
            client.enter(reader, "new", target)
        with pytest.raises(PermissionDenied):
            client.remove(reader, "entry")

    def test_modify_only_capability(self, world):
        _, server, client, _, root = world
        target = server.table.create("x")
        writer = client.restrict(root, R_MODIFY)
        client.enter(writer, "new", target)
        with pytest.raises(PermissionDenied):
            client.lookup(writer, "new")


class TestStoredCapabilitiesAreOpaque:
    def test_any_capability_kind_storable(self, world):
        """'The capabilities within a directory need not all be file
        capabilities' — the directory never inspects what it stores."""
        net, server, client, client_nic, root = world
        files = FlatFileServer(Nic(net), rng=RandomSource(seed=5)).start()
        fclient = FlatFileClient(client_nic, files.put_port,
                                 rng=RandomSource(seed=6))
        file_cap = fclient.create(b"file data")
        subdir_cap = client.create_directory()
        client.enter(root, "file", file_cap)
        client.enter(root, "dir", subdir_cap)
        assert client.lookup(root, "file") == file_cap
        assert client.lookup(root, "dir") == subdir_cap

    def test_restricted_capability_stored_verbatim(self, world):
        net, server, client, client_nic, root = world
        files = FlatFileServer(Nic(net), rng=RandomSource(seed=7)).start()
        fclient = FlatFileClient(client_nic, files.put_port,
                                 rng=RandomSource(seed=8))
        cap = fclient.create(b"x")
        read_only = fclient.restrict(cap, 0x01)
        client.enter(root, "ro", read_only)
        assert client.lookup(root, "ro").rights == Rights(0x01)


class TestPathResolution:
    def test_single_server_path(self, world):
        _, server, client, client_nic, root = world
        a = client.create_directory(root, "a")
        b = client.create_directory(a, "b")
        leaf = server.table.create("leaf")
        client.enter(b, "c", leaf)
        found = resolve_path(client_nic, root, "a/b/c", rng=RandomSource(seed=9))
        assert found == leaf

    def test_transparent_multi_server_walk(self, world):
        """§3.4's transparency: the walk hops to a second directory server
        without the client doing anything special."""
        net, server, client, client_nic, root = world
        other_server = DirectoryServer(Nic(net), rng=RandomSource(seed=10)).start()
        other_client = DirectoryClient(
            client_nic, other_server.put_port, rng=RandomSource(seed=11)
        )
        # root/far -> directory on the OTHER server; far/deep -> leaf.
        far = other_client.call(DIR_CREATE).capability
        leaf = other_server.table.create("remote leaf")
        other_client.enter(far, "deep", leaf)
        client.enter(root, "far", far)
        found = resolve_path(client_nic, root, "far/deep",
                             rng=RandomSource(seed=12))
        assert found == leaf
        assert found.port == other_server.put_port
        assert found.port != server.put_port

    def test_path_with_extra_slashes(self, world):
        _, server, client, client_nic, root = world
        a = client.create_directory(root, "a")
        leaf = server.table.create("leaf")
        client.enter(a, "x", leaf)
        assert resolve_path(client_nic, root, "/a//x/",
                            rng=RandomSource(seed=13)) == leaf

    def test_empty_path_returns_root(self, world):
        _, _, _, client_nic, root = world
        assert resolve_path(client_nic, root, "", rng=RandomSource(seed=14)) == root

    def test_missing_component_raises(self, world):
        _, _, _, client_nic, root = world
        with pytest.raises(NameNotFound):
            resolve_path(client_nic, root, "no/such", rng=RandomSource(seed=15))
