"""Tests for the process state machine (§3.1)."""

import pytest

from repro.errors import ProcessStateError
from repro.kernel.process import Process, ProcessState


class TestLifecycle:
    def test_starts_stopped(self):
        p = Process("init", {})
        assert p.state is ProcessState.STOPPED
        assert p.runs == 0

    def test_start_stop(self):
        p = Process("worker", {"seg0": 1})
        p.start()
        assert p.state is ProcessState.RUNNING
        assert p.runs == 1
        p.stop()
        assert p.state is ProcessState.STOPPED

    def test_double_start_refused(self):
        p = Process("w", {})
        p.start()
        with pytest.raises(ProcessStateError):
            p.start()

    def test_stop_when_stopped_refused(self):
        p = Process("w", {})
        with pytest.raises(ProcessStateError):
            p.stop()

    def test_kill_is_final(self):
        p = Process("w", {})
        p.kill()
        assert p.state is ProcessState.DEAD
        with pytest.raises(ProcessStateError):
            p.start()
        p.kill()  # idempotent

    def test_restart_counts_runs(self):
        p = Process("w", {})
        for _ in range(3):
            p.start()
            p.stop()
        assert p.runs == 3


class TestProgram:
    def test_program_invoked_with_reader(self):
        observed = {}

        def program(process, segment_reader):
            observed["name"] = process.name
            observed["text"] = segment_reader(process.segments["seg0"])

        p = Process("prog", {"seg0": 42}, program=program)
        p.start(segment_reader=lambda n: b"segment %d" % n)
        assert observed == {"name": "prog", "text": b"segment 42"}

    def test_segments_copied(self):
        segs = {"seg0": 1}
        p = Process("w", segs)
        segs["seg1"] = 2
        assert "seg1" not in p.segments
