"""Tests for the simulated broadcast LAN."""

import pytest

from repro.core.ports import Port, PrivatePort
from repro.net.message import Message
from repro.net.network import Frame, SimNetwork
from repro.net.nic import Nic


@pytest.fixture
def net():
    return SimNetwork()


class TestTopology:
    def test_addresses_assigned_sequentially(self, net):
        a, b = Nic(net), Nic(net)
        assert a.address != b.address
        assert net.addresses() == [a.address, b.address]

    def test_detach(self, net):
        a = Nic(net)
        net.detach(a.address)
        assert net.addresses() == []


class TestSourceStamping:
    def test_source_is_sender_address(self, net):
        """§2.4's bedrock assumption: the network stamps the true source."""
        sender, receiver = Nic(net), Nic(net)
        g = PrivatePort(111)
        receiver.listen(g)
        sender.put(Message(dest=receiver.fbox.listen_port(Port(g.secret))))
        frame = receiver.poll(g)
        assert frame.src == sender.address

    def test_sender_cannot_choose_source(self, net):
        # The API simply offers no parameter for it: send() derives the
        # source from the NIC object.
        import inspect

        params = inspect.signature(net.send).parameters
        assert "src" not in params


class TestRouting:
    def test_delivery_by_admitted_port(self, net):
        a, b = Nic(net), Nic(net)
        g = PrivatePort(5)
        wire = b.listen(g)
        assert a.put(Message(dest=wire))
        assert b.poll(g) is not None

    def test_no_listener_means_drop(self, net):
        a = Nic(net)
        assert not a.put(Message(dest=Port(999)))
        assert net.frames_dropped == 1

    def test_unicast_by_machine(self, net):
        a, b, c = Nic(net), Nic(net), Nic(net)
        g = PrivatePort(5)
        wire_b = b.listen(g)
        c.listen(g)  # same port on two machines
        a.put(Message(dest=wire_b), dst_machine=b.address)
        assert b.poll(g) is not None
        assert c.poll(g) is None

    def test_unicast_to_missing_machine(self, net):
        a = Nic(net)
        assert not a.put(Message(dest=Port(1)), dst_machine=999)

    def test_round_robin_among_listeners(self, net):
        # Two servers GET the same port: the "hardware arbiter" rotates.
        a = Nic(net)
        s1, s2 = Nic(net), Nic(net)
        g = PrivatePort(5)
        wire = s1.listen(g)
        s2.listen(g)
        for _ in range(4):
            a.put(Message(dest=wire))
        assert s1.pending(g) == 2
        assert s2.pending(g) == 2


class TestTaps:
    def test_tap_sees_everything(self, net):
        a, b = Nic(net), Nic(net)
        captured = []
        net.add_tap(captured.append)
        g = PrivatePort(5)
        wire = b.listen(g)
        a.put(Message(dest=wire, data=b"observable"))
        assert len(captured) == 1
        assert captured[0].message.data == b"observable"
        assert captured[0].src == a.address

    def test_tap_sees_drops_too(self, net):
        a = Nic(net)
        captured = []
        net.add_tap(captured.append)
        a.put(Message(dest=Port(404)))
        assert len(captured) == 1

    def test_remove_tap(self, net):
        a = Nic(net)
        captured = []
        net.add_tap(captured.append)
        net.remove_tap(captured.append)
        a.put(Message(dest=Port(1)))
        assert captured == []


class TestBroadcast:
    def test_broadcast_reaches_handlers(self, net):
        a = Nic(net)
        heard = []
        for _ in range(3):
            nic = Nic(net)
            nic.on_broadcast(lambda frame, n=nic: heard.append(n.address))
        count = a.put_broadcast(Message(command=10))
        assert count == 3
        assert len(heard) == 3

    def test_broadcast_skips_sender(self, net):
        a = Nic(net)
        heard = []
        a.on_broadcast(lambda frame: heard.append(frame))
        a.put_broadcast(Message(command=10))
        assert heard == []

    def test_broadcast_without_handlers(self, net):
        a = Nic(net)
        Nic(net)  # no handler installed
        assert a.put_broadcast(Message(command=10)) == 0


class TestStats:
    def test_counters(self, net):
        a, b = Nic(net), Nic(net)
        g = PrivatePort(5)
        wire = b.listen(g)
        a.put(Message(dest=wire))
        a.put(Message(dest=Port(404)))
        stats = net.stats()
        assert stats["frames_sent"] == 2
        assert stats["frames_delivered"] == 1
        assert stats["frames_dropped"] == 1

    def test_reset(self, net):
        a = Nic(net)
        a.put(Message(dest=Port(1)))
        net.reset_stats()
        assert net.stats()["frames_sent"] == 0


class TestFrame:
    def test_frame_is_immutable(self, net):
        frame = Frame(src=1, dst_machine=None, message=Message())
        with pytest.raises(AttributeError):
            frame.src = 2
