"""Tests for the blocking transaction primitive."""

import pytest

from repro.core.ports import Port, PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.errors import PortNotLocated, RPCTimeout
from repro.ipc.rpc import trans
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic


@pytest.fixture
def net():
    return SimNetwork()


def echo_server(net, g_secret=1111):
    nic = Nic(net)
    g = PrivatePort(g_secret)

    def handler(frame):
        nic.put(frame.message.reply_to(data=frame.message.data[::-1]))

    wire = nic.serve(g, handler)
    return nic, wire


class TestTrans:
    def test_roundtrip(self, net):
        _, wire = echo_server(net)
        client = Nic(net)
        reply = trans(client, wire, Message(data=b"abc"), rng=RandomSource(seed=1))
        assert reply.data == b"cba"
        assert reply.is_reply

    def test_no_server_raises_port_not_located(self, net):
        client = Nic(net)
        with pytest.raises(PortNotLocated):
            trans(client, Port(404), Message(), rng=RandomSource(seed=1))

    def test_server_that_never_replies_times_out(self, net):
        nic = Nic(net)
        g = PrivatePort(5)
        wire = nic.serve(g, lambda frame: None)  # swallow requests
        client = Nic(net)
        with pytest.raises(RPCTimeout):
            trans(client, wire, Message(), rng=RandomSource(seed=1), timeout=0.05)

    def test_fresh_reply_port_per_transaction(self, net):
        seen = []
        nic = Nic(net)
        g = PrivatePort(5)

        def handler(frame):
            seen.append(frame.message.reply)
            nic.put(frame.message.reply_to())

        wire = nic.serve(g, handler)
        client = Nic(net)
        rng = RandomSource(seed=2)
        for _ in range(10):
            trans(client, wire, Message(), rng=rng)
        assert len(set(seen)) == 10

    def test_reply_port_unlistened_after_transaction(self, net):
        nic = Nic(net)
        g = PrivatePort(5)
        reply_ports = []

        def handler(frame):
            reply_ports.append(frame.message.reply)
            nic.put(frame.message.reply_to())

        wire = nic.serve(g, handler)
        client = Nic(net)
        trans(client, wire, Message(), rng=RandomSource(seed=3))
        # A late duplicate reply must find nobody listening.
        late = Message(dest=reply_ports[0], is_reply=True)
        assert not nic.put(late)

    def test_request_fields_set(self, net):
        captured = []
        nic = Nic(net)
        g = PrivatePort(5)

        def handler(frame):
            captured.append(frame.message)
            nic.put(frame.message.reply_to())

        wire = nic.serve(g, handler)
        client = Nic(net)
        trans(client, wire, Message(command=9, offset=7, size=3),
              rng=RandomSource(seed=4))
        request = captured[0]
        assert request.dest == wire
        assert not request.is_reply
        assert (request.command, request.offset, request.size) == (9, 7, 3)
        assert not request.reply.is_null

    def test_client_signature_transmitted(self, net):
        captured = []
        nic = Nic(net)
        g = PrivatePort(5)

        def handler(frame):
            captured.append(frame.message.signature)
            nic.put(frame.message.reply_to())

        wire = nic.serve(g, handler)
        client = Nic(net)
        client_sig = PrivatePort(777)
        trans(client, wire, Message(), rng=RandomSource(seed=5),
              signature=client_sig)
        # The server sees F(S): it can compare against the client's
        # published signature image to authenticate the sender.
        assert captured[0] == client_sig.public

    def test_unicast_dst_machine(self, net):
        nic, wire = echo_server(net)
        client = Nic(net)
        reply = trans(client, wire, Message(data=b"x"),
                      rng=RandomSource(seed=6), dst_machine=nic.address)
        assert reply.data == b"x"

    def test_unicast_to_wrong_machine_times_out(self, net):
        nic, wire = echo_server(net)
        other = Nic(net)  # not listening on the port
        client = Nic(net)
        with pytest.raises(RPCTimeout):
            trans(client, wire, Message(), rng=RandomSource(seed=7),
                  dst_machine=other.address, timeout=0.05)


class TestPollBlockingFeatureDetect:
    """_poll_blocking keys off the supports_poll_timeout capability
    attribute; the old TypeError probe swallowed genuine TypeErrors
    raised inside delivery and misreported them as RPCTimeout."""

    def test_nic_declares_no_timeout_support(self, net):
        assert Nic(net).supports_poll_timeout is False

    def test_socketnode_declares_timeout_support(self):
        from repro.net.sockets import SocketNode

        assert SocketNode.supports_poll_timeout is True

    def test_delivery_typeerror_propagates(self, net):
        # A station whose timed poll path itself raises TypeError (a real
        # bug) must surface that bug, not a bogus timeout.
        class BuggyNode(Nic):
            supports_poll_timeout = True

            def poll_wire(self, wire_port, timeout=None):
                if timeout is not None:
                    raise TypeError("broken delivery internals")
                return super().poll_wire(wire_port)

        nic = Nic(net)
        g = PrivatePort(5)
        nic.serve(g, lambda frame: None)  # swallow: forces the slow path
        client = BuggyNode(net)
        with pytest.raises(TypeError, match="broken delivery internals"):
            trans(client, nic.fbox.listen_port(Port(5)), Message(),
                  rng=RandomSource(seed=8), timeout=0.05)
