"""Tests for the Fig. 2 capability layout and its wire encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.capability import CAPABILITY_BYTES, Capability
from repro.core.ports import Port
from repro.core.rights import Rights
from repro.errors import MalformedCapability

ports = st.integers(min_value=0, max_value=(1 << 48) - 1).map(Port)
objects = st.integers(min_value=0, max_value=(1 << 24) - 1)
rights = st.integers(min_value=0, max_value=0xFF).map(Rights)
canonical_checks = st.binary(min_size=6, max_size=6)
extended_checks = st.binary(min_size=8, max_size=80)


def make_cap(port=Port(0x123456789ABC), obj=42, r=0xFF, check=b"\x01" * 6):
    return Capability(port=port, object=obj, rights=Rights(r), check=check)


class TestLayout:
    def test_canonical_is_exactly_128_bits(self):
        # Fig. 2: 48 + 24 + 8 + 48 bits.
        assert len(make_cap().pack()) == 16
        assert CAPABILITY_BYTES == 16

    @given(ports, objects, rights, canonical_checks)
    def test_canonical_roundtrip(self, port, obj, r, check):
        cap = Capability(port=port, object=obj, rights=r, check=check)
        assert cap.is_canonical
        assert Capability.unpack(cap.pack()) == cap

    @given(ports, objects, rights, extended_checks)
    def test_extended_roundtrip(self, port, obj, r, check):
        cap = Capability(port=port, object=obj, rights=r, check=check)
        assert not cap.is_canonical
        assert Capability.unpack(cap.pack()) == cap

    def test_field_positions(self):
        cap = make_cap(port=Port(0xAABBCCDDEEFF), obj=0x112233, r=0x5A,
                       check=b"\x99" * 6)
        raw = cap.pack()
        assert raw[0:6] == bytes.fromhex("aabbccddeeff")
        assert raw[6:9] == bytes.fromhex("112233")
        assert raw[9] == 0x5A
        assert raw[10:16] == b"\x99" * 6


class TestValidation:
    def test_object_bounds(self):
        with pytest.raises(ValueError):
            make_cap(obj=1 << 24)
        with pytest.raises(ValueError):
            make_cap(obj=-1)

    def test_check_length_rules(self):
        # 7-byte checks are neither canonical nor valid extended.
        with pytest.raises(ValueError):
            make_cap(check=b"\x00" * 7)
        make_cap(check=b"\x00" * 8)  # minimal extended: fine

    def test_rights_coerced(self):
        cap = Capability(port=Port(1), object=1, rights=3, check=b"\x00" * 6)
        assert isinstance(cap.rights, Rights)


class TestUnpackRejectsGarbage:
    def test_too_short(self):
        with pytest.raises(MalformedCapability):
            Capability.unpack(b"\x00" * 5)

    def test_truncated_extended(self):
        cap = make_cap(check=b"\xaa" * 16)
        raw = cap.pack()
        with pytest.raises(MalformedCapability):
            Capability.unpack(raw[:-1])

    def test_extended_with_trailing_junk(self):
        raw = make_cap(check=b"\xaa" * 16).pack()
        with pytest.raises(MalformedCapability):
            Capability.unpack(raw + b"\x00")

    def test_declared_check_below_minimum(self):
        # Craft an extended header claiming a 5-byte check (17 bytes in
        # total, so it cannot be mistaken for the canonical 16).
        raw = Port(1).to_bytes() + (5).to_bytes(3, "big") + b"\xff"
        raw += (5).to_bytes(2, "big") + b"\x00" * 5
        with pytest.raises(MalformedCapability):
            Capability.unpack(raw)

    def test_sixteen_bytes_always_parse_as_canonical(self):
        # Any 16-byte string is structurally a canonical capability —
        # garbage is caught semantically by the check field, exactly the
        # §2.4 "decrypts to make sense" argument.
        cap = Capability.unpack(bytes(range(16)))
        assert cap.is_canonical


class TestSemantics:
    def test_same_object_ignores_rights_and_check(self):
        a = make_cap(r=0xFF, check=b"\x01" * 6)
        b = make_cap(r=0x01, check=b"\x02" * 6)
        assert a.same_object(b)

    def test_same_object_distinguishes_servers(self):
        a = make_cap(port=Port(1))
        b = make_cap(port=Port(2))
        assert not a.same_object(b)

    def test_with_rights_preserves_rest(self):
        cap = make_cap(r=0xFF)
        weaker = cap.with_rights(0x01)
        assert weaker.rights == Rights(0x01)
        assert weaker.check == cap.check and weaker.same_object(cap)

    def test_with_check(self):
        cap = make_cap()
        other = cap.with_check(b"\xfe" * 6)
        assert other.check == b"\xfe" * 6

    def test_equality_and_hash(self):
        assert make_cap() == make_cap()
        assert len({make_cap(), make_cap()}) == 1
        assert make_cap(r=1) != make_cap(r=2)
        assert make_cap() != "not a capability"

    def test_repr_truncates_check(self):
        # The repr shows a 4-byte prefix: enough to correlate in logs,
        # not enough to steal (the secret part is 6+ bytes).
        cap = make_cap(check=bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert "00112233" in repr(cap)
        assert "ccddeeff" not in repr(cap)
