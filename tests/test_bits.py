"""Unit tests for the bit/byte helpers everything else leans on."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    bytes_to_int,
    constant_time_eq,
    int_to_bytes,
    mask,
    xor_bytes,
)


class TestMask:
    def test_small_widths(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(48) == 0xFFFFFFFFFFFF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestIntBytes:
    def test_roundtrip_examples(self):
        assert int_to_bytes(0, 6) == b"\x00" * 6
        assert int_to_bytes(0xABCD, 2) == b"\xab\xcd"
        assert bytes_to_int(b"\xab\xcd") == 0xABCD

    def test_big_endian_order(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_overflow_is_error_not_truncation(self):
        with pytest.raises(ValueError):
            int_to_bytes(256, 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1, 4)

    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_roundtrip_48bit(self, value):
        assert bytes_to_int(int_to_bytes(value, 6)) == value

    @given(st.binary(min_size=1, max_size=32))
    def test_roundtrip_from_bytes(self, data):
        value = bytes_to_int(data)
        assert int_to_bytes(value, len(data)) == data.rjust(len(data), b"\x00")


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_identity_and_self_inverse(self):
        data = b"amoeba"
        zeros = bytes(len(data))
        assert xor_bytes(data, zeros) == data
        assert xor_bytes(data, data) == zeros

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")

    @given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
    def test_involution(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert xor_bytes(xor_bytes(a, b), b) == a


class TestConstantTimeEq:
    def test_equal(self):
        assert constant_time_eq(b"secret", b"secret")

    def test_unequal_same_length(self):
        assert not constant_time_eq(b"secret", b"secreT")

    def test_unequal_lengths(self):
        assert not constant_time_eq(b"short", b"longer")

    @given(st.binary(max_size=32), st.binary(max_size=32))
    def test_agrees_with_python_equality(self, a, b):
        assert constant_time_eq(a, b) == (a == b)
