"""Tests for the block server (§3.2)."""

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.disk.virtualdisk import VirtualDisk
from repro.errors import BadRequest, OutOfSpace, PermissionDenied
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.servers.block import R_READ, R_WRITE, BlockClient, BlockServer

from tests.conftest import make_client


@pytest.fixture
def world():
    net = SimNetwork()
    disk = VirtualDisk(n_blocks=8, block_size=64)
    server = BlockServer(Nic(net), disk=disk, rng=RandomSource(seed=1)).start()
    client = BlockClient(
        Nic(net),
        server.put_port,
        rng=RandomSource(seed=2),
        expect_signature=server.signature_image,
    )
    return net, disk, server, client


class TestAllocate:
    def test_alloc_returns_capability_and_geometry(self, world):
        _, _, _, client = world
        cap, block_size = client.alloc()
        assert block_size == 64
        assert cap is not None

    def test_alloc_with_initial_data(self, world):
        _, _, _, client = world
        cap, _ = client.alloc(initial=b"superblock")
        assert client.read(cap).startswith(b"superblock")

    def test_initial_data_too_big(self, world):
        _, _, _, client = world
        with pytest.raises(BadRequest):
            client.alloc(initial=b"x" * 65)

    def test_disk_exhaustion_surfaces(self, world):
        _, _, _, client = world
        for _ in range(8):
            client.alloc()
        with pytest.raises(OutOfSpace):
            client.alloc()


class TestReadWrite:
    def test_write_read_roundtrip(self, world):
        _, _, _, client = world
        cap, _ = client.alloc()
        client.write(cap, b"some data")
        assert client.read(cap).startswith(b"some data")

    def test_rights_enforced(self, world):
        _, _, server, client = world
        cap, _ = client.alloc()
        read_only = client.restrict(cap, R_READ)
        client.read(read_only)
        with pytest.raises(PermissionDenied):
            client.write(read_only, b"denied")
        write_only = client.restrict(cap, R_WRITE)
        client.write(write_only, b"ok")
        with pytest.raises(PermissionDenied):
            client.read(write_only)

    def test_block_size_query(self, world):
        _, _, _, client = world
        cap, _ = client.alloc()
        assert client.block_size(cap) == 64


class TestFree:
    def test_free_returns_block_to_pool(self, world):
        _, disk, _, client = world
        cap, _ = client.alloc()
        used = disk.used_blocks
        client.free(cap)
        assert disk.used_blocks == used - 1

    def test_freed_capability_dead(self, world):
        from repro.errors import NoSuchObject

        _, _, _, client = world
        cap, _ = client.alloc()
        client.free(cap)
        with pytest.raises(NoSuchObject):
            client.read(cap)

    def test_info(self, world):
        _, _, _, client = world
        cap, _ = client.alloc()
        assert "block" in client.info(cap)
