"""Wire-format parity: the fast codec must be byte-identical to the old one.

The lean ``Message.pack`` (single-pass buffer) and trusted-constructor
``unpack`` are pure optimizations — the wire format is frozen.  The
reference implementation below is a verbatim transliteration of the
pre-fast-lane codec (intermediate byte joins, public constructor); these
property tests drive both over the full message space, including the
sealed-caps and extra-caps corners, and require byte-for-byte and
field-for-field agreement.
"""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capability import Capability
from repro.core.ports import Port
from repro.core.rights import Rights
from repro.net.message import HEADER_BYTES, Message

_MAGIC = b"AM"
_VERSION = 1
_FLAG_REPLY = 0x01
_FLAG_SEALED = 0x02
_FIXED = struct.Struct(">2sBB6s6s6sHHQIHI")


# ----------------------------------------------------------------------
# reference codec (the pre-optimization implementation, kept verbatim)
# ----------------------------------------------------------------------


def reference_pack(message):
    flags = _FLAG_REPLY if message.is_reply else 0
    if message.sealed_caps:
        if message.capability is not None or message.extra_caps:
            raise ValueError("sealed message with plaintext capabilities")
        flags |= _FLAG_SEALED
        cap_bytes = message.sealed_caps
    else:
        cap_bytes = message.capability.pack() if message.capability else b""
    extra = b"".join(
        len(c := cap.pack()).to_bytes(2, "big") + c for cap in message.extra_caps
    )
    payload = (
        len(message.extra_caps).to_bytes(1, "big") + extra + message.data
        if message.extra_caps
        else b"\x00" + message.data
    )
    head = _FIXED.pack(
        _MAGIC,
        _VERSION,
        flags,
        message.dest.to_bytes(),
        message.reply.to_bytes(),
        message.signature.to_bytes(),
        message.command,
        message.status,
        message.offset,
        message.size,
        len(cap_bytes),
        len(payload),
    )
    return head + cap_bytes + payload


def reference_unpack(raw):
    """The old unpack, returning a Message via the validating constructor."""
    (
        magic,
        version,
        flags,
        dest,
        reply,
        signature,
        command,
        status,
        offset,
        size,
        caplen,
        datalen,
    ) = _FIXED.unpack_from(raw)
    assert magic == _MAGIC and version == _VERSION
    assert len(raw) == HEADER_BYTES + caplen + datalen
    cap_bytes = raw[HEADER_BYTES:HEADER_BYTES + caplen]
    payload = raw[HEADER_BYTES + caplen:]
    sealed_caps = b""
    capability = None
    if flags & _FLAG_SEALED:
        sealed_caps = bytes(cap_bytes)
    elif caplen:
        capability = Capability.unpack(cap_bytes)
    n_extra = payload[0] if payload else 0
    pos = 1
    extra_caps = []
    for _ in range(n_extra):
        clen = int.from_bytes(payload[pos:pos + 2], "big")
        pos += 2
        extra_caps.append(Capability.unpack(payload[pos:pos + clen]))
        pos += clen
    return Message(
        dest=Port.from_bytes(dest),
        reply=Port.from_bytes(reply),
        signature=Port.from_bytes(signature),
        command=command,
        status=status,
        offset=offset,
        size=size,
        capability=capability,
        data=bytes(payload[pos:]),
        is_reply=bool(flags & _FLAG_REPLY),
        extra_caps=tuple(extra_caps),
        sealed_caps=sealed_caps,
    )


# ----------------------------------------------------------------------
# message space
# ----------------------------------------------------------------------

ports = st.integers(min_value=0, max_value=(1 << 48) - 1).map(Port)

canonical_checks = st.binary(min_size=6, max_size=6)
extended_checks = st.binary(min_size=8, max_size=72)

capabilities = st.builds(
    Capability,
    port=ports,
    object=st.integers(min_value=0, max_value=(1 << 24) - 1),
    rights=st.integers(min_value=0, max_value=0xFF).map(Rights),
    check=st.one_of(canonical_checks, extended_checks),
)

plaintext_messages = st.builds(
    Message,
    dest=ports,
    reply=ports,
    signature=ports,
    command=st.integers(min_value=0, max_value=(1 << 16) - 1),
    status=st.integers(min_value=0, max_value=(1 << 16) - 1),
    offset=st.integers(min_value=0, max_value=(1 << 64) - 1),
    size=st.integers(min_value=0, max_value=(1 << 32) - 1),
    capability=st.one_of(st.none(), capabilities),
    data=st.binary(max_size=200),
    is_reply=st.booleans(),
    extra_caps=st.lists(capabilities, max_size=3).map(tuple),
)

sealed_messages = st.builds(
    Message,
    dest=ports,
    reply=ports,
    signature=ports,
    command=st.integers(min_value=0, max_value=(1 << 16) - 1),
    status=st.integers(min_value=0, max_value=(1 << 16) - 1),
    offset=st.integers(min_value=0, max_value=(1 << 64) - 1),
    size=st.integers(min_value=0, max_value=(1 << 32) - 1),
    data=st.binary(max_size=200),
    is_reply=st.booleans(),
    sealed_caps=st.binary(min_size=1, max_size=120),
)

messages = st.one_of(plaintext_messages, sealed_messages)


# ----------------------------------------------------------------------
# parity properties
# ----------------------------------------------------------------------


class TestPackParity:
    @given(messages)
    @settings(max_examples=400)
    def test_fast_pack_matches_reference(self, message):
        assert message.pack() == reference_pack(message)

    @given(messages)
    @settings(max_examples=200)
    def test_round_trip_preserves_fields(self, message):
        recovered = Message.unpack(message.pack())
        assert recovered == message

    @given(messages)
    @settings(max_examples=200)
    def test_fast_unpack_matches_reference(self, message):
        raw = reference_pack(message)
        assert Message.unpack(raw) == reference_unpack(raw)

    def test_sealed_corner_flag_and_area(self):
        message = Message(dest=Port(1), sealed_caps=b"\xde\xad\xbe\xef")
        raw = message.pack()
        assert raw == reference_pack(message)
        assert raw[3] & _FLAG_SEALED
        assert Message.unpack(raw).sealed_caps == b"\xde\xad\xbe\xef"

    def test_extra_caps_corner_many_and_extended(self):
        caps = tuple(
            Capability(port=Port(i), object=i, rights=Rights(0xFF), check=b"c" * n)
            for i, n in ((1, 6), (2, 8), (3, 64))
        )
        message = Message(dest=Port(9), capability=caps[0], extra_caps=caps)
        raw = message.pack()
        assert raw == reference_pack(message)
        assert Message.unpack(raw).extra_caps == caps

    def test_empty_message_header_only(self):
        message = Message()
        raw = message.pack()
        assert raw == reference_pack(message)
        assert len(raw) == HEADER_BYTES + 1  # just the zero extra-cap count

    def test_sealed_plus_plaintext_still_rejected(self):
        cap = Capability(port=Port(1), object=1, rights=Rights(1), check=b"x" * 6)
        message = Message(dest=Port(1), capability=cap)
        message.sealed_caps = b"blob"
        try:
            message.pack()
        except ValueError:
            pass
        else:
            raise AssertionError("sealed+plaintext message must not pack")


# ----------------------------------------------------------------------
# lazy-unpack parity: materialization order must never matter
# ----------------------------------------------------------------------

_BODY_FIELDS = ("capability", "extra_caps", "data", "sealed_caps")
_ALL_FIELDS = (
    "dest", "reply", "signature", "command", "status", "offset", "size",
    "is_reply",
) + _BODY_FIELDS


class TestLazyUnpackParity:
    @given(messages, st.permutations(_ALL_FIELDS))
    @settings(max_examples=300)
    def test_any_access_order_matches_reference(self, message, order):
        """Field-by-field equality against the frozen reference codec,
        with the lazy body materialized in an arbitrary access order."""
        raw = reference_pack(message)
        lazy = Message.unpack(raw)
        expected = reference_unpack(raw)
        for name in order:
            assert getattr(lazy, name) == getattr(expected, name), name

    @given(messages)
    @settings(max_examples=200)
    def test_pack_without_touching_matches_frame(self, message):
        """Repacking an untouched lazy message reproduces the frame."""
        raw = reference_pack(message)
        assert Message.unpack(raw).pack() == raw

    @given(messages)
    @settings(max_examples=200)
    def test_body_stays_lazy_until_touched(self, message):
        """unpack decodes the header eagerly and nothing else; the first
        body access materializes every body field at once."""
        lazy = Message.unpack(message.pack())
        for name in _BODY_FIELDS:
            assert name not in lazy.__dict__
        assert "_wire" in lazy.__dict__
        lazy.data  # touch
        for name in _BODY_FIELDS:
            assert name in lazy.__dict__
        assert "_wire" not in lazy.__dict__

    def test_framing_errors_are_eager(self):
        """Every error a frame can produce raises from unpack itself —
        materialization must never fail (servers route/reply from the
        header before touching the body)."""
        import pytest

        from repro.errors import MalformedCapability

        cap = Capability(port=Port(1), object=1, rights=Rights(1), check=b"c" * 6)
        raw = bytearray(Message(dest=Port(1), capability=cap).pack())
        # caplen 16 -> 17 turns the header capability into a bogus
        # extended layout; the total length is kept consistent, so only
        # the capability framing is wrong — and it must raise at unpack
        # time, not at first .capability access.
        caplen_offset = HEADER_BYTES - 6  # caplen field in the header
        raw[caplen_offset + 1] = 17
        raw.append(0)
        with pytest.raises(MalformedCapability):
            Message.unpack(bytes(raw))

    def test_mutation_after_unpack_reflected_in_pack(self):
        """A lazy message is still an ordinary mutable Message: writes
        land in the instance and the next pack serialises them."""
        lazy = Message.unpack(Message(dest=Port(5), data=b"old").pack())
        lazy.data = b"new"
        assert Message.unpack(lazy.pack()).data == b"new"

    def test_evolve_on_lazy_message(self):
        """_evolve with header changes keeps the body lazy; a body-field
        change materializes first instead of raising the stray-key error."""
        source = Message(dest=Port(5), reply=Port(6), data=b"payload")
        lazy = Message.unpack(source.pack())
        clone = lazy._evolve(dest=Port(9))
        assert "data" not in lazy.__dict__  # header change stayed lazy
        assert clone.dest == Port(9) and clone.data == b"payload"
        lazy2 = Message.unpack(source.pack())
        clone2 = lazy2._evolve(data=b"swapped")
        assert clone2.data == b"swapped"
        assert clone2.dest == source.dest
