"""Tests for the write-ahead log / snapshot store behind object tables.

The durability contract (ISSUE PR 8): every create/refresh/destroy is
logged under the stripe lock it already holds; snapshots truncate the
log without stopping the world; a reboot on the same disk rebuilds the
table, and any stripe whose log tail is suspect gets fresh secrets so
capabilities minted before the crash fail the §2.2 check cleanly.
"""

import pytest

from repro.core.ports import Port
from repro.core.registry import ObjectTable
from repro.core.schemes import scheme_by_name
from repro.crypto.randomsrc import RandomSource
from repro.disk.diskfaults import DiskFaultPlan
from repro.disk.virtualdisk import VirtualDisk
from repro.disk.wal import DefaultCodec, DurableStore, StripeLog
from repro.errors import InvalidCapability, NoSuchObject, PowerFailure

PORT = Port(0x0D15C0FFEE00)
SCHEME = scheme_by_name("xor-oneway")


def make_table(store, seed=44):
    return ObjectTable(
        SCHEME, PORT, rng=RandomSource(seed=seed),
        wal=store, shards=store.shards,
    )


def reattach(disk):
    """Simulate a reboot: new store over the same disk, new table."""
    store = DurableStore(disk, codec=DefaultCodec())
    table = make_table(store, seed=99)
    report = store.recover(table, rng=RandomSource(seed=1234))
    return store, table, report


def bare_disk(n_blocks, block_size=128):
    """A disk with the two superblock slots reserved, as DurableStore
    leaves it — chain scans refuse block numbers inside the slots."""
    disk = VirtualDisk(n_blocks, block_size=block_size)
    disk.reserve(0)
    disk.reserve(1)
    return disk


class TestStripeLog:
    def test_append_and_scan_round_trip(self):
        from repro.disk.wal import _scan_chain

        disk = bare_disk(64)
        log = StripeLog(disk)
        payloads = [b"alpha", b"beta" * 40, b"g" * 500]
        for p in payloads:
            log.append(p)
        scan = _scan_chain(disk, log.head)
        assert scan.records == payloads
        assert not scan.suspect

    def test_scan_resumes_mid_block(self):
        from repro.disk.wal import _scan_chain

        disk = bare_disk(64)
        log = StripeLog(disk)
        log.append(b"old")
        block, offset = log.tail_position()
        log.append(b"new one")
        log.append(b"new two")
        scan = _scan_chain(disk, block, start_offset=offset)
        assert scan.records == [b"new one", b"new two"]

    def test_empty_payload_rejected(self):
        disk = bare_disk(8)
        log = StripeLog(disk)
        with pytest.raises(ValueError):
            log.append(b"")


class TestFormatAndAttach:
    def test_fresh_disk_is_formatted(self):
        store = DurableStore(VirtualDisk(256))
        assert not store.needs_recovery
        assert store.stats()["used_blocks"] >= store.shards

    def test_attach_sets_needs_recovery(self):
        disk = VirtualDisk(1024)
        store = DurableStore(disk, codec=DefaultCodec())
        table = make_table(store)
        table.create(b"survivor")
        attached = DurableStore(disk, codec=DefaultCodec())
        assert attached.needs_recovery

    def test_recover_validates_shard_count(self):
        disk = VirtualDisk(1024)
        DurableStore(disk, shards=16)
        attached = DurableStore(disk)
        bad = ObjectTable(SCHEME, PORT, rng=RandomSource(seed=1), shards=4)
        with pytest.raises(ValueError):
            attached.recover(bad)

    def test_table_rejects_mismatched_store(self):
        store = DurableStore(VirtualDisk(256), shards=16)
        with pytest.raises(ValueError):
            ObjectTable(SCHEME, PORT, wal=store, shards=4)

    def test_too_small_disk_rejected(self):
        with pytest.raises(ValueError):
            DurableStore(VirtualDisk(4))


class TestRecovery:
    def test_round_trip_restores_entries_and_rejects_stale(self):
        disk = VirtualDisk(4096)
        store = DurableStore(disk, codec=DefaultCodec())
        table = make_table(store)

        caps = [table.create("obj-%d" % i) for i in range(49)]
        refreshed = table.refresh(caps[7])
        stale = caps[7]
        table.destroy(caps[13])
        doomed = caps[13]

        store2, table2, report = reattach(disk)
        assert report.entries_restored == 48
        assert not report.suspect_stripes

        for i, cap in enumerate(caps):
            if i in (7, 13):
                continue
            entry, _ = table2.lookup(cap)
            assert entry.data == "obj-%d" % i
        entry, _ = table2.lookup(refreshed)
        assert entry.data == "obj-7"
        with pytest.raises(InvalidCapability):
            table2.lookup(stale)          # refreshed before the crash
        with pytest.raises((NoSuchObject, InvalidCapability)):
            table2.lookup(doomed)         # destroyed before the crash

    def test_fresh_numbers_do_not_collide_after_recovery(self):
        disk = VirtualDisk(4096)
        store = DurableStore(disk, codec=DefaultCodec())
        table = make_table(store)
        old = [table.create(i) for i in range(40)]

        _, table2, _ = reattach(disk)
        new = [table2.create(100 + i) for i in range(40)]
        numbers = {c.object for c in old} | {c.object for c in new}
        assert len(numbers) == 80

    def test_snapshot_truncates_log_and_survives(self):
        disk = VirtualDisk(4096)
        store = DurableStore(disk, codec=DefaultCodec())
        table = make_table(store)
        caps = [table.create("pre-%d" % i) for i in range(32)]
        before = store.stats()["used_blocks"]
        store.snapshot(table)
        post = [table.create("post-%d" % i) for i in range(8)]
        # One snapshot() pass checkpoints each stripe individually.
        assert store.stats()["snapshots_taken"] == store.shards
        # Snapshot + truncation must not leak the old log blocks.
        assert store.stats()["used_blocks"] <= before + 3 * store.shards

        _, table2, report = reattach(disk)
        assert report.entries_restored == 40
        for cap in caps + post:
            table2.lookup(cap)

    def test_snapshot_of_empty_table(self):
        disk = VirtualDisk(1024)
        store = DurableStore(disk, codec=DefaultCodec())
        table = make_table(store)
        store.snapshot(table)
        _, table2, report = reattach(disk)
        assert report.entries_restored == 0
        assert len(table2) == 0

    def test_repeated_snapshots_bounded_disk(self):
        disk = VirtualDisk(4096)
        store = DurableStore(disk, codec=DefaultCodec())
        table = make_table(store)
        cap = table.create("churn")
        sizes = []
        for round_no in range(6):
            for _ in range(20):
                cap = table.refresh(cap)
            store.snapshot(table)
            sizes.append(store.stats()["used_blocks"])
        # Disk footprint must not grow round over round once steady.
        assert max(sizes[2:]) <= sizes[1] + store.shards

    def test_commits_recovered_from_clean_log(self):
        disk = VirtualDisk(2048)
        store = DurableStore(disk, codec=DefaultCodec())
        table = make_table(store)
        cap = table.create("acct")
        table.log_commit(cap.object, 0xBEEF, 0xF00D, b"reply-bytes")

        _, _, report = reattach(disk)
        assert report.commits == {(0xBEEF, 0xF00D): b"reply-bytes"}

    def test_commits_are_not_snapshotted(self):
        # Bounded dedup: a commit older than the last checkpoint is
        # forgotten, mirroring ReplyCache LRU eviction semantics.
        disk = VirtualDisk(2048)
        store = DurableStore(disk, codec=DefaultCodec())
        table = make_table(store)
        cap = table.create("acct")
        table.log_commit(cap.object, 1, 2, b"old")
        store.snapshot(table)
        table.log_commit(cap.object, 3, 4, b"young")

        _, _, report = reattach(disk)
        assert report.commits == {(3, 4): b"young"}

    def test_start_requires_recover_first(self):
        disk = VirtualDisk(1024)
        store = DurableStore(disk, codec=DefaultCodec())
        make_table(store).create(b"x")
        attached = DurableStore(disk, codec=DefaultCodec())
        table = make_table(attached)
        with pytest.raises(RuntimeError):
            attached.snapshot(table)      # must recover before snapshotting
        attached.recover(table)
        attached.snapshot(table)          # now fine


class TestSuspectTails:
    def _build(self, disk):
        store = DurableStore(disk, codec=DefaultCodec())
        table = make_table(store)
        caps = [table.create("obj-%d" % i) for i in range(32)]
        return store, table, caps

    def test_torn_tail_regenerates_stripe_secrets(self):
        disk = VirtualDisk(4096)
        store, table, caps = self._build(disk)
        # A >1-block record guarantees the roll write (ordinal 0 after
        # arming) tears mid-record; a small record can survive a tear
        # that lands beyond its end inside the flushed block.
        disk.faults = DiskFaultPlan(seed=5, torn_at={0})
        victim = table.create(b"V" * 700)
        stripe = table.shard_of(victim.object)

        _, table2, report = reattach(disk)
        assert report.suspect_stripes == [stripe]
        assert report.secrets_regenerated >= 1
        with pytest.raises((NoSuchObject, InvalidCapability)):
            table2.lookup(victim)
        clean = [c for c in caps if table.shard_of(c.object) != stripe]
        suspect = [c for c in caps if table.shard_of(c.object) == stripe]
        for cap in clean:
            table2.lookup(cap)            # untouched stripes keep secrets
        for cap in suspect:
            with pytest.raises(InvalidCapability):
                table2.lookup(cap)        # suspect stripe: fresh secrets

    def test_torn_tail_repaired_on_reattach(self):
        disk = VirtualDisk(4096)
        store, table, _ = self._build(disk)
        disk.faults = DiskFaultPlan(seed=5, torn_at={0})
        table.create(b"V" * 700)
        disk.faults = None

        reattach(disk)                    # truncates the torn tail
        _, _, second = reattach(disk)     # must now scan clean
        assert not second.suspect_stripes

    def test_lost_tail_is_consistent_but_older(self):
        disk = VirtualDisk(4096)
        store, table, caps = self._build(disk)
        disk.faults = DiskFaultPlan(seed=5, lost_at={0})
        ghost = table.create("acked but never on the medium")

        _, table2, report = reattach(disk)
        # A lost whole-block write is undetectable by design: the state
        # is simply older.  No stripe goes suspect, old caps still work.
        assert not report.suspect_stripes
        for cap in caps:
            table2.lookup(cap)
        with pytest.raises((NoSuchObject, InvalidCapability)):
            table2.lookup(ghost)

    def test_suspect_stripe_drops_its_commits(self):
        disk = VirtualDisk(4096)
        store, table, _ = self._build(disk)
        disk.faults = DiskFaultPlan(seed=5, torn_at={0})
        victim = table.create(b"V" * 700)
        table.log_commit(victim.object, 7, 8, b"reply")
        stripe = table.shard_of(victim.object)

        _, _, report = reattach(disk)
        assert report.suspect_stripes == [stripe]
        assert (7, 8) not in report.commits


class TestPowerFailure:
    def test_power_fail_mid_snapshot_recovers_old_state(self):
        disk = VirtualDisk(4096)
        store = DurableStore(disk, codec=DefaultCodec())
        table = make_table(store)
        caps = [table.create("obj-%d" % i) for i in range(32)]

        disk.faults = DiskFaultPlan(power_fail_after=10)
        with pytest.raises(PowerFailure):
            store.snapshot(table)
        disk.faults.revive()

        _, table2, report = reattach(disk)
        assert report.entries_restored == 32
        for cap in caps:
            table2.lookup(cap)
        # Blocks of the half-written snapshot chain are reclaimed.
        assert report.blocks_reclaimed >= 1

    def test_corrupt_superblock_slot_falls_back_to_sibling(self):
        disk = VirtualDisk(4096)
        store = DurableStore(disk, codec=DefaultCodec())
        table = make_table(store)
        caps = [table.create("obj-%d" % i) for i in range(8)]
        store.snapshot(table)             # epoch chain committed cleanly

        # Smash the *newest* superblock slot — the one the last commit
        # wrote — as a torn/garbage superblock write would leave it.
        newest = store.epoch % 2
        disk.write(newest, b"\xde\xad" * (disk.block_size // 2))

        store2, table2, report = reattach(disk)
        # Attach fell back to the intact sibling slot: one epoch older,
        # but a complete, consistent view.  Every capability minted
        # before the crash still validates.
        for cap in caps:
            table2.lookup(cap)
        assert len(table2) == 8


class TestDefaultCodec:
    @pytest.mark.parametrize(
        "value", [None, b"bytes", "text é", 12345, -9, True, False]
    )
    def test_round_trip(self, value):
        codec = DefaultCodec()
        assert codec.decode(codec.encode(value)) == value

    def test_rejects_rich_types(self):
        with pytest.raises(TypeError):
            DefaultCodec().encode({"dict": 1})
