"""Tests for the §2.4 public-key bootstrap protocol."""

import pytest

from repro.core.ports import Port
from repro.crypto.publickey import generate_keypair
from repro.crypto.randomsrc import RandomSource
from repro.errors import SecurityError
from repro.softprot.boot import Announcement, BootProtocol, establish_matrix_keys
from repro.softprot.matrix import KEY_BYTES, KeyMatrix


@pytest.fixture(scope="module")
def server_keys():
    return generate_keypair(bits=512, rng=RandomSource(seed=31337))


class TestHandshake:
    def test_full_exchange(self, server_keys):
        rng = RandomSource(seed=1)
        offer, forward = BootProtocol.client_offer(server_keys.public, rng)
        reply, forward_s, reverse_s = BootProtocol.server_accept(
            server_keys, offer, rng
        )
        assert forward_s == forward
        reverse = BootProtocol.client_confirm(server_keys.public, forward, reply)
        assert reverse == reverse_s
        assert len(forward) == len(reverse) == KEY_BYTES
        assert forward != reverse

    def test_keys_fresh_per_run(self, server_keys):
        rng = RandomSource(seed=2)
        offer_a, key_a = BootProtocol.client_offer(server_keys.public, rng)
        offer_b, key_b = BootProtocol.client_offer(server_keys.public, rng)
        assert key_a != key_b
        assert offer_a != offer_b


class TestAttacks:
    def test_reply_from_impostor_rejected(self, server_keys):
        """An impostor broadcasting the server's identity cannot complete
        the handshake without the private key."""
        rng = RandomSource(seed=3)
        impostor = generate_keypair(bits=512, rng=RandomSource(seed=666))
        offer, forward = BootProtocol.client_offer(server_keys.public, rng)
        # The impostor cannot decrypt the offer with the real private key;
        # suppose it somehow guessed K and replies signed with ITS key.
        reply, _, _ = BootProtocol.server_accept(
            impostor, impostor.public.encrypt(forward, rng=rng), rng
        )
        with pytest.raises(SecurityError):
            BootProtocol.client_confirm(server_keys.public, forward, reply)

    def test_replayed_old_session_rejected(self, server_keys):
        """'The use of different conventional keys after each reboot makes
        it impossible for an intruder to fool anyone by playing back old
        messages.'"""
        rng = RandomSource(seed=4)
        # Session one: intruder records the server's reply.
        offer1, forward1 = BootProtocol.client_offer(server_keys.public, rng)
        old_reply, _, _ = BootProtocol.server_accept(server_keys, offer1, rng)
        # Session two (after reboot): client picks a fresh K...
        offer2, forward2 = BootProtocol.client_offer(server_keys.public, rng)
        # ...and the replayed old reply does not contain the fresh K.
        with pytest.raises(SecurityError):
            BootProtocol.client_confirm(server_keys.public, forward2, old_reply)

    def test_tampered_reply_rejected(self, server_keys):
        rng = RandomSource(seed=5)
        offer, forward = BootProtocol.client_offer(server_keys.public, rng)
        reply, _, _ = BootProtocol.server_accept(server_keys, offer, rng)
        tampered = bytearray(reply)
        tampered[-1] ^= 0x01
        with pytest.raises(SecurityError):
            BootProtocol.client_confirm(
                server_keys.public, forward, bytes(tampered)
            )

    def test_garbage_offer_rejected(self, server_keys):
        with pytest.raises(SecurityError):
            BootProtocol.server_accept(
                server_keys,
                server_keys.public.encrypt(b"not a key", rng=RandomSource(seed=6)),
                RandomSource(seed=6),
            )


class TestMatrixIntegration:
    def test_establish_matrix_keys(self, server_keys):
        client_matrix = KeyMatrix(rng=RandomSource(seed=7))
        server_matrix = KeyMatrix(rng=RandomSource(seed=8))
        forward, reverse = establish_matrix_keys(
            client_matrix.view(1),
            server_matrix.view(2),
            server_keys,
            rng=RandomSource(seed=9),
        )
        # Both sides now agree on both directions.
        assert client_matrix.key(1, 2) == server_matrix.key(1, 2) == forward
        assert client_matrix.key(2, 1) == server_matrix.key(2, 1) == reverse


class TestAnnouncement:
    def test_pack_unpack(self, server_keys):
        ann = Announcement(
            name="file server",
            put_port=Port(0xF17E5E24E2),
            public_key=server_keys.public,
        )
        assert Announcement.unpack(ann.pack()) == ann

    def test_truncated_rejected(self):
        with pytest.raises((SecurityError, Exception)):
            Announcement.unpack(b"")
