"""Tests for the flat file server (§3.3), both backends."""

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.disk.virtualdisk import VirtualDisk
from repro.errors import NoSuchObject, PermissionDenied
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.servers.block import BlockClient, BlockServer
from repro.servers.flatfile import R_READ, R_WRITE, FlatFileClient, FlatFileServer


def make_world(backend):
    net = SimNetwork()
    server_nic = Nic(net)
    block_client = None
    disk = None
    if backend == "block":
        disk = VirtualDisk(n_blocks=256, block_size=64)
        block_server = BlockServer(
            Nic(net), disk=disk, rng=RandomSource(seed=1)
        ).start()
        block_client = BlockClient(
            server_nic, block_server.put_port, rng=RandomSource(seed=2)
        )
    server = FlatFileServer(
        server_nic, block_client=block_client, rng=RandomSource(seed=3)
    ).start()
    client = FlatFileClient(
        Nic(net),
        server.put_port,
        rng=RandomSource(seed=4),
        expect_signature=server.signature_image,
    )
    return net, disk, server, client


@pytest.fixture(params=["memory", "block"])
def world(request):
    return make_world(request.param)


class TestFileOperations:
    def test_create_read(self, world):
        _, _, _, client = world
        cap = client.create(b"initial contents")
        assert client.read(cap, 0, 16) == b"initial contents"

    def test_no_open_state(self, world):
        """'The server does not have any concept of an open file': any
        valid capability works at any time, interleaved freely."""
        _, _, _, client = world
        a = client.create(b"file a")
        b = client.create(b"file b")
        assert client.read(a, 0, 6) == b"file a"
        assert client.read(b, 0, 6) == b"file b"
        client.write(a, 5, b"A!")
        assert client.read(b, 0, 6) == b"file b"
        assert client.read(a, 0, 7) == b"file A!"

    def test_positioned_reads_and_writes(self, world):
        _, _, _, client = world
        cap = client.create()
        client.write(cap, 0, b"0123456789")
        assert client.read(cap, 3, 4) == b"3456"
        client.write(cap, 5, b"XY")
        assert client.read(cap, 0, 10) == b"01234XY789"

    def test_writes_grow_the_file(self, world):
        _, _, _, client = world
        cap = client.create()
        assert client.size(cap) == 0
        client.write(cap, 100, b"sparse tail")
        assert client.size(cap) == 111
        # The gap reads as zeros.
        assert client.read(cap, 0, 4) == bytes(4)

    def test_read_past_end_is_short(self, world):
        _, _, _, client = world
        cap = client.create(b"short")
        assert client.read(cap, 3, 100) == b"rt"
        assert client.read(cap, 99, 10) == b""

    def test_large_file_spans_blocks(self, world):
        _, _, _, client = world
        cap = client.create()
        payload = bytes(range(256)) * 4  # 1024 bytes: 16 blocks of 64
        client.write(cap, 0, payload)
        assert client.read(cap, 0, 1024) == payload
        assert client.read(cap, 500, 100) == payload[500:600]

    def test_read_all(self, world):
        _, _, _, client = world
        cap = client.create()
        payload = b"ABCD" * 300
        client.write(cap, 0, payload)
        assert client.read_all(cap) == payload


class TestRights:
    def test_read_only_capability(self, world):
        _, _, _, client = world
        cap = client.create(b"data")
        reader = client.restrict(cap, R_READ)
        assert client.read(reader, 0, 4) == b"data"
        with pytest.raises(PermissionDenied):
            client.write(reader, 0, b"nope")

    def test_write_only_capability(self, world):
        _, _, _, client = world
        cap = client.create()
        writer = client.restrict(cap, R_WRITE)
        client.write(writer, 0, b"in")
        with pytest.raises(PermissionDenied):
            client.read(writer, 0, 2)


class TestDestroy:
    def test_destroy(self, world):
        _, _, _, client = world
        cap = client.create(b"condemned")
        client.destroy(cap)
        with pytest.raises(NoSuchObject):
            client.read(cap, 0, 1)

    def test_block_backend_releases_blocks(self):
        _, disk, _, client = make_world("block")
        cap = client.create()
        client.write(cap, 0, b"x" * 640)  # 10 blocks
        used = disk.used_blocks
        assert used >= 10
        client.destroy(cap)
        assert disk.used_blocks == 0


class TestRevocation:
    def test_refresh_invalidates_shared_copies(self, world):
        _, _, _, client = world
        from repro.errors import InvalidCapability

        owner = client.create(b"shared")
        reader = client.restrict(owner, R_READ)
        fresh = client.refresh(owner)
        for dead in (owner, reader):
            with pytest.raises(InvalidCapability):
                client.read(dead, 0, 1)
        assert client.read(fresh, 0, 6) == b"shared"


class TestModularStack:
    def test_file_server_is_a_block_client(self):
        """§3.2's architecture claim: the file server uses the block
        server's public capability interface, nothing deeper."""
        _, disk, server, client = make_world("block")
        cap = client.create()
        client.write(cap, 0, b"y" * 200)
        # Data actually landed on the disk behind the *block* server.
        assert disk.used_blocks >= 4
        assert server.block_client is not None
