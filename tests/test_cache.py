"""Tests for the LRU capability caches of §2.4."""

from repro.core.capability import Capability
from repro.core.ports import Port
from repro.core.rights import Rights
from repro.softprot.cache import (
    ClientCapabilityCache,
    LruCache,
    ServerCapabilityCache,
)


def cap(n):
    return Capability(
        port=Port(1), object=n, rights=Rights(0xFF), check=bytes([n]) * 6
    )


class TestLruCache:
    def test_get_put(self):
        cache = LruCache(max_entries=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None

    def test_eviction_order(self):
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2

    def test_get_refreshes_recency(self):
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now least recent
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_hit_rate(self):
        cache = LruCache()
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert LruCache().hit_rate == 0.0

    def test_overwrite(self):
        cache = LruCache()
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_contains(self):
        cache = LruCache()
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache

    def test_clear(self):
        cache = LruCache()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_min_size(self):
        import pytest

        with pytest.raises(ValueError):
            LruCache(max_entries=0)


class TestCapabilityCaches:
    def test_client_triples(self):
        # (unencrypted capability, destination) -> encrypted capability
        cache = ClientCapabilityCache()
        cache.remember(cap(1), 7, b"sealed-bytes")
        assert cache.lookup(cap(1), 7) == b"sealed-bytes"
        assert cache.lookup(cap(1), 8) is None
        assert cache.lookup(cap(2), 7) is None

    def test_server_triples(self):
        # (encrypted capability, source) -> unencrypted capability
        cache = ServerCapabilityCache()
        cache.remember(b"sealed", 3, cap(1))
        assert cache.lookup(b"sealed", 3) == cap(1)
        assert cache.lookup(b"sealed", 4) is None

    def test_same_capability_different_destinations(self):
        cache = ClientCapabilityCache()
        cache.remember(cap(1), 7, b"for-7")
        cache.remember(cap(1), 8, b"for-8")
        assert cache.lookup(cap(1), 7) == b"for-7"
        assert cache.lookup(cap(1), 8) == b"for-8"


class TestConcurrency:
    def test_evictions_race_request_path_safely(self):
        """Regression: revocation (evict_where) fires from the table's
        calling thread while the request path keeps hitting get/put on
        the same cache — the OrderedDict must be locked, or eviction
        iterates a dict another thread is resizing."""
        import threading

        cache = ServerCapabilityCache(max_entries=256)
        stop = threading.Event()
        errors = []

        def requester():
            i = 0
            try:
                while not stop.is_set():
                    i = (i + 1) % 200
                    cache.remember(b"sealed-%d" % i, 3, cap(i % 250))
                    cache.lookup(b"sealed-%d" % i, 3)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def revoker():
            try:
                for n in range(2000):
                    cache.forget_object(Port(1), n % 250)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        req = threading.Thread(target=requester)
        rev = threading.Thread(target=revoker)
        req.start()
        rev.start()
        rev.join(timeout=30.0)
        stop.set()
        req.join(timeout=30.0)
        assert not errors
        assert not rev.is_alive() and not req.is_alive()
