"""Tests for the LRU capability caches of §2.4."""

from repro.core.capability import Capability
from repro.core.ports import Port
from repro.core.rights import Rights
from repro.softprot.cache import (
    ClientCapabilityCache,
    LruCache,
    ServerCapabilityCache,
)


def cap(n):
    return Capability(
        port=Port(1), object=n, rights=Rights(0xFF), check=bytes([n]) * 6
    )


class TestLruCache:
    def test_get_put(self):
        cache = LruCache(max_entries=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None

    def test_eviction_order(self):
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2

    def test_get_refreshes_recency(self):
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now least recent
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_hit_rate(self):
        cache = LruCache()
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert LruCache().hit_rate == 0.0

    def test_overwrite(self):
        cache = LruCache()
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_contains(self):
        cache = LruCache()
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache

    def test_clear(self):
        cache = LruCache()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_min_size(self):
        import pytest

        with pytest.raises(ValueError):
            LruCache(max_entries=0)


class TestCapabilityCaches:
    def test_client_triples(self):
        # (unencrypted capability, destination) -> encrypted capability
        cache = ClientCapabilityCache()
        cache.remember(cap(1), 7, b"sealed-bytes")
        assert cache.lookup(cap(1), 7) == b"sealed-bytes"
        assert cache.lookup(cap(1), 8) is None
        assert cache.lookup(cap(2), 7) is None

    def test_server_triples(self):
        # (encrypted capability, source) -> unencrypted capability
        cache = ServerCapabilityCache()
        cache.remember(b"sealed", 3, cap(1))
        assert cache.lookup(b"sealed", 3) == cap(1)
        assert cache.lookup(b"sealed", 4) is None

    def test_same_capability_different_destinations(self):
        cache = ClientCapabilityCache()
        cache.remember(cap(1), 7, b"for-7")
        cache.remember(cap(1), 8, b"for-8")
        assert cache.lookup(cap(1), 7) == b"for-7"
        assert cache.lookup(cap(1), 8) == b"for-8"


class TestConcurrency:
    def test_evictions_race_request_path_safely(self):
        """Regression: revocation (evict_where) fires from the table's
        calling thread while the request path keeps hitting get/put on
        the same cache — the OrderedDict must be locked, or eviction
        iterates a dict another thread is resizing."""
        import threading

        cache = ServerCapabilityCache(max_entries=256)
        stop = threading.Event()
        errors = []

        def requester():
            i = 0
            try:
                while not stop.is_set():
                    i = (i + 1) % 200
                    cache.remember(b"sealed-%d" % i, 3, cap(i % 250))
                    cache.lookup(b"sealed-%d" % i, 3)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def revoker():
            try:
                for n in range(2000):
                    cache.forget_object(Port(1), n % 250)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        req = threading.Thread(target=requester)
        rev = threading.Thread(target=revoker)
        req.start()
        rev.start()
        rev.join(timeout=30.0)
        stop.set()
        req.join(timeout=30.0)
        assert not errors
        assert not rev.is_alive() and not req.is_alive()


class TestShardedLruCache:
    def test_basic_map_surface(self):
        from repro.softprot.cache import ShardedLruCache

        cache = ShardedLruCache(max_entries=512, shards=8)
        for i in range(40):
            cache.put("key-%d" % i, i)
        assert len(cache) == 40
        assert cache.get("key-7") == 7
        assert "key-7" in cache and "missing" not in cache
        cache.clear()
        assert len(cache) == 0

    def test_shard_count_must_be_power_of_two(self):
        import pytest

        from repro.softprot.cache import ShardedLruCache

        with pytest.raises(ValueError):
            ShardedLruCache(shards=6)
        with pytest.raises(ValueError):
            ShardedLruCache(shards=0)
        with pytest.raises(ValueError):
            ShardedLruCache(max_entries=0)

    def test_stats_aggregate_across_shards(self):
        from repro.softprot.cache import ShardedLruCache

        cache = ShardedLruCache(max_entries=64, shards=4)
        for i in range(20):
            cache.put(i, i)
        hits = sum(1 for i in range(20) if cache.get(i) is not None)
        misses = sum(1 for i in range(100, 110) if cache.get(i) is None)
        assert cache.stats() == (hits, misses) == (20, 10)
        assert cache.hits == 20 and cache.misses == 10
        assert cache.hit_rate == 20 / 30

    def test_capacity_is_split_per_stripe(self):
        from repro.softprot.cache import ShardedLruCache

        cache = ShardedLruCache(max_entries=16, shards=4)
        for i in range(200):
            cache.put(i, i)
        assert len(cache) <= 16


class TestShardedClientCache:
    def test_forget_object_sweeps_only_the_owning_stripe(self):
        cache = ClientCapabilityCache(max_entries=256, shards=8)
        # Two objects guaranteed to live on different stripes.
        a, b = 0, 1
        while cache._object_shard(Port(1), a) == cache._object_shard(Port(1), b):
            b += 1
        for dst in range(5):
            cache.remember(cap(a), dst, b"sealed-a-%d" % dst)
            cache.remember(cap(b), dst, b"sealed-b-%d" % dst)
        # Foreign stripes must not even be visited, let alone swept.
        owning = cache._object_shard(Port(1), a)
        for index, shard in enumerate(cache._shards):
            if index != owning:
                shard.evict_where = _must_not_be_called
        assert cache.forget_object(Port(1), a) == 5
        for index, shard in enumerate(cache._shards):
            if index != owning:
                del shard.evict_where  # restore the class method
        assert cache.lookup(cap(a), 0) is None
        assert cache.lookup(cap(b), 0) == b"sealed-b-0"

    def test_triples_for_one_object_colocate(self):
        cache = ClientCapabilityCache(max_entries=256, shards=8)
        for dst in range(10):
            cache.remember(cap(3), dst, b"s%d" % dst)
        indices = {
            cache.shard_index((cap(3), dst)) for dst in range(10)
        }
        assert len(indices) == 1


def _must_not_be_called(predicate):  # pragma: no cover - failure path
    raise AssertionError("swept a stripe that does not own the object")


class TestShardedServerCache:
    def test_forget_object_uses_stripe_hints(self):
        cache = ServerCapabilityCache(max_entries=256, shards=8)
        # Spread object 5's triples over several stripes (placement is by
        # sealed-blob hash), then forget: every one must go.
        for src in range(12):
            cache.remember(b"sealed-5-%d" % src, src, cap(5))
        for src in range(12):
            cache.remember(b"sealed-9-%d" % src, src, cap(9))
        assert cache.forget_object(Port(1), 5) == 12
        assert all(
            cache.lookup(b"sealed-5-%d" % src, src) is None for src in range(12)
        )
        assert all(
            cache.lookup(b"sealed-9-%d" % src, src) == cap(9)
            for src in range(12)
        )
        # The hint was consumed: a second forget knows there is nothing.
        assert cache.forget_object(Port(1), 5) == 0

    def test_forget_object_without_hints_still_correct(self):
        # A tiny hint limit forces the degraded sweep-every-stripe mode.
        cache = ServerCapabilityCache(max_entries=1, shards=2)
        for n in range(8):
            cache.remember(b"sealed-%d" % n, 0, cap(n))
        assert not cache._hints_complete
        cache.remember(b"sealed-last", 0, cap(42))
        assert cache.forget_object(Port(1), 42) == 1
        assert cache.lookup(b"sealed-last", 0) is None


class TestShardedConcurrency:
    def test_eight_thread_revocation_fanout_purges_only_the_target(self):
        """8 threads, each owning disjoint objects, race remember/forget
        on both §2.4 caches: a revocation must purge exactly its object's
        triples and never disturb a neighbour's."""
        import threading

        client_cache = ClientCapabilityCache(max_entries=1024, shards=8)
        server_cache = ServerCapabilityCache(max_entries=1024, shards=8)
        n_threads = 8
        rounds = 150
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(tid):
            try:
                barrier.wait()
                for r in range(rounds):
                    number = tid + n_threads * (r % 4)
                    capability = cap(number)
                    sealed = b"sealed-%d-%d" % (tid, r)
                    client_cache.remember(capability, tid, sealed)
                    server_cache.remember(sealed, tid, capability)
                    assert client_cache.lookup(capability, tid) == sealed
                    assert server_cache.lookup(sealed, tid) == capability
                    # Revoke: this object's triples die, in both caches.
                    client_cache.forget_object(Port(1), number)
                    server_cache.forget_object(Port(1), number)
                    assert client_cache.lookup(capability, tid) is None
                    assert server_cache.lookup(sealed, tid) is None
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors
        assert not any(t.is_alive() for t in threads)


class TestServerCacheClear:
    def test_clear_resets_hints_and_undegrades(self):
        """Regression: clear() must wipe the hint table too — stale
        hints both leak memory and push the table toward permanent
        sweep-every-stripe degradation."""
        cache = ServerCapabilityCache(max_entries=1, shards=2)
        for n in range(8):
            cache.remember(b"sealed-%d" % n, 0, cap(n))
        assert not cache._hints_complete  # degraded by the tiny limit
        cache.clear()
        assert len(cache) == 0
        assert cache._hints_complete and not cache._hints
        cache.remember(b"fresh", 0, cap(3))
        assert cache.forget_object(Port(1), 3) == 1
        assert cache.forget_object(Port(1), 3) == 0  # hint consumed
