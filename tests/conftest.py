"""Shared fixtures: seeded randomness, a simulated network, and servers.

Every fixture uses deterministic randomness so failures replay exactly;
the schemes and protocols themselves never depend on the seed.
"""

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.ipc.client import ServiceClient
from repro.kernel.machine import Machine
from repro.net.network import SimNetwork
from repro.net.nic import Nic


@pytest.fixture
def rng():
    return RandomSource(seed=0xA40EBA)


@pytest.fixture
def net():
    return SimNetwork()


@pytest.fixture
def server_nic(net):
    return Nic(net)


@pytest.fixture
def client_nic(net):
    return Nic(net)


@pytest.fixture
def machines(net):
    """A (server machine, client machine) pair with kernels installed."""
    return (
        Machine(net, rng=RandomSource(seed=11), name="server-machine"),
        Machine(net, rng=RandomSource(seed=22), name="client-machine"),
    )


def make_client(nic, server, rng, **kwargs):
    """A ServiceClient wired to a server with signature checking on."""
    kwargs.setdefault("expect_signature", server.signature_image)
    return ServiceClient(nic, server.put_port, rng=rng, **kwargs)
