"""Tests for the multiversion file server (§3.5)."""

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.disk.virtualdisk import VirtualDisk
from repro.errors import (
    BadRequest,
    PermissionDenied,
    VersionConflict,
    VersionImmutable,
)
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.servers.multiversion import (
    R_READ,
    MultiversionClient,
    MultiversionFileServer,
)


def make_world(write_once=False, block_size=64, n_blocks=512):
    net = SimNetwork()
    disk = VirtualDisk(n_blocks=n_blocks, block_size=block_size,
                       write_once=write_once)
    server = MultiversionFileServer(
        Nic(net), disk=disk, rng=RandomSource(seed=1)
    ).start()
    client = MultiversionClient(
        Nic(net),
        server.put_port,
        rng=RandomSource(seed=2),
        expect_signature=server.signature_image,
    )
    return net, disk, server, client


@pytest.fixture(params=[False, True], ids=["rewritable", "write-once"])
def world(request):
    return make_world(write_once=request.param)


class TestVersioning:
    def test_new_file_has_empty_version_zero(self, world):
        _, _, _, client = world
        f = client.create_file()
        assert client.n_versions(f) == 1
        assert client.read(f, 0, 100) == b""

    def test_write_commit_read(self, world):
        _, _, _, client = world
        f = client.create_file()
        v, base = client.new_version(f)
        assert base == 0
        client.write(v, 0, b"first version data")
        seq = client.commit(v)
        assert seq == 1
        assert client.read(f, 0, 100) == b"first version data"

    def test_uncommitted_writes_invisible_in_file(self, world):
        _, _, _, client = world
        f = client.create_file()
        v, _ = client.new_version(f)
        client.write(v, 0, b"draft")
        assert client.read(f, 0, 100) == b""  # latest committed: empty
        assert client.read(v, 0, 100) == b"draft"  # via version cap

    def test_version_history_readable(self, world):
        """'A file is thus a sequence of versions.'"""
        _, _, _, client = world
        f = client.create_file()
        for text in (b"one", b"two", b"three"):
            v, _ = client.new_version(f)
            client.write(v, 0, text)
            client.commit(v)
        assert client.n_versions(f) == 4
        history = [
            client.read_version(f, seq, 0, 10)
            for seq in range(client.n_versions(f))
        ]
        assert history == [b"", b"one", b"two", b"three"]

    def test_read_bad_seq(self, world):
        _, _, _, client = world
        f = client.create_file()
        with pytest.raises(BadRequest):
            client.read_version(f, 7, 0, 10)


class TestAtomicCommit:
    def test_commit_is_all_or_nothing_under_conflict(self, world):
        """Optimistic concurrency: of two versions derived from the same
        base, exactly one commit wins."""
        _, _, _, client = world
        f = client.create_file()
        v_a, _ = client.new_version(f)
        v_b, _ = client.new_version(f)
        client.write(v_a, 0, b"writer A")
        client.write(v_b, 0, b"writer B")
        client.commit(v_a)
        with pytest.raises(VersionConflict):
            client.commit(v_b)
        assert client.read(f, 0, 100) == b"writer A"
        assert client.n_versions(f) == 2

    def test_loser_rederives_and_retries(self, world):
        _, _, _, client = world
        f = client.create_file()
        v_a, _ = client.new_version(f)
        v_b, _ = client.new_version(f)
        client.write(v_a, 0, b"A")
        client.commit(v_a)
        client.write(v_b, 0, b"B")
        with pytest.raises(VersionConflict):
            client.commit(v_b)
        retry, base = client.new_version(f)
        assert base == 1
        client.write(retry, 0, b"B retry")
        client.commit(retry)
        assert client.read(f, 0, 100) == b"B retry"

    def test_double_commit_refused(self, world):
        _, _, _, client = world
        f = client.create_file()
        v, _ = client.new_version(f)
        client.commit(v)
        with pytest.raises(VersionImmutable):
            client.commit(v)


class TestImmutability:
    def test_committed_version_rejects_writes(self, world):
        """'Once a version of a file has been committed, it cannot be
        modified.'"""
        _, _, _, client = world
        f = client.create_file()
        v, _ = client.new_version(f)
        client.write(v, 0, b"final")
        client.commit(v)
        with pytest.raises(VersionImmutable):
            client.write(v, 0, b"sneaky edit")

    def test_committed_version_still_readable(self, world):
        _, _, _, client = world
        f = client.create_file()
        v, _ = client.new_version(f)
        client.write(v, 0, b"snapshot")
        client.commit(v)
        assert client.read(v, 0, 100) == b"snapshot"

    def test_aborted_version_rejects_everything(self, world):
        _, _, _, client = world
        f = client.create_file()
        v, _ = client.new_version(f)
        client.write(v, 0, b"scrap")
        client.abort(v)
        with pytest.raises(VersionImmutable):
            client.write(v, 0, b"more")
        with pytest.raises(VersionImmutable):
            client.commit(v)


class TestCopyOnWrite:
    def test_branching_copies_no_pages(self):
        """'The new version acts like it is a page-by-page copy of the
        original, although in fact, pages are only copied when they are
        changed.'"""
        _, disk, server, client = make_world(block_size=64)
        f = client.create_file()
        v, _ = client.new_version(f)
        client.write(v, 0, b"x" * 640)  # 10 pages
        client.commit(v)
        writes_before = disk.writes
        v2, _ = client.new_version(f)  # branch: no I/O at all
        assert disk.writes == writes_before
        assert server.pages_shared >= 10

    def test_writing_one_page_copies_one_page(self):
        _, disk, server, client = make_world(block_size=64)
        f = client.create_file()
        v, _ = client.new_version(f)
        client.write(v, 0, b"x" * 640)
        client.commit(v)
        copied_before = server.pages_copied
        v2, _ = client.new_version(f)
        client.write(v2, 0, b"Y")  # touches page 0 only
        assert server.pages_copied == copied_before + 1

    def test_old_version_unchanged_after_cow(self):
        _, _, _, client = make_world(block_size=64)
        f = client.create_file()
        v, _ = client.new_version(f)
        client.write(v, 0, b"original page content")
        client.commit(v)
        v2, _ = client.new_version(f)
        client.write(v2, 0, b"MUTATED")
        client.commit(v2)
        assert client.read_version(f, 1, 0, 21) == b"original page content"
        assert client.read_version(f, 2, 0, 7) == b"MUTATED"

    def test_abort_releases_private_pages(self):
        _, disk, _, client = make_world(block_size=64)
        f = client.create_file()
        v, _ = client.new_version(f)
        client.write(v, 0, b"z" * 640)
        used = disk.used_blocks
        assert used >= 10
        client.abort(v)
        assert disk.used_blocks == 0


class TestWriteOnceMedia:
    def test_full_lifecycle_on_write_once_disk(self):
        """§3.5: the design must run unchanged on media where no block is
        ever rewritten."""
        _, disk, _, client = make_world(write_once=True)
        f = client.create_file()
        for text in (b"gen one", b"gen two", b"gen three"):
            v, _ = client.new_version(f)
            client.write(v, 0, text)
            client.commit(v)
        assert client.read(f, 0, 100) == b"gen three"
        assert client.read_version(f, 1, 0, 100) == b"gen one"
        # Every page write burnt a fresh block; none was ever rewritten.
        assert disk.writes == disk.used_blocks

    def test_partial_page_update_on_write_once(self):
        _, disk, _, client = make_world(write_once=True, block_size=32)
        f = client.create_file()
        v, _ = client.new_version(f)
        client.write(v, 0, b"A" * 32)
        client.write(v, 10, b"bbb")  # read-modify-write: new block
        client.commit(v)
        expected = b"A" * 10 + b"bbb" + b"A" * 19
        assert client.read(f, 0, 32) == expected


class TestRights:
    def test_read_only_file_capability(self, world):
        _, _, _, client = world
        f = client.create_file()
        reader = client.restrict(f, R_READ)
        client.read(reader, 0, 10)
        with pytest.raises(PermissionDenied):
            client.new_version(reader)

    def test_version_write_needs_write_right(self, world):
        _, _, _, client = world
        f = client.create_file()
        v, _ = client.new_version(f)
        reader = client.restrict(v, R_READ)
        with pytest.raises(PermissionDenied):
            client.write(reader, 0, b"x")
