"""Tests for at-least-once transactions (:class:`repro.ipc.rpc.RetryPolicy`).

The retry contracts:

* a retransmission reuses the same reply secret, so every copy of the
  request carries the same F(G') on the wire — the transaction id the
  server's duplicate suppression keys on;
* backoff waits live under the transaction's single ``timeout`` budget
  (wall time on real wires, virtual time on a DES station) and the
  deadline always wins;
* :meth:`AsyncTrans.cancel` withdraws the retransmit state and releases
  the reply port, even when a late duplicate reply arrives afterwards;
* a timed-out :class:`~repro.ipc.client.ServiceClient` call invalidates
  its locate cache entry, so the next call re-broadcasts LOCATE instead
  of unicasting at a dead machine.
"""

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.errors import PortNotLocated, RPCTimeout
from repro.ipc.client import ServiceClient
from repro.ipc.locate import Locator, install_locate_responder
from repro.ipc.rpc import AsyncTrans, RetryPolicy, trans, trans_many
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.faults import FaultPlan, FaultSpec
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.net.sched import LatencyModel, VirtualClock


class EchoServer(ObjectServer):
    service_name = "retry test echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


def lossy_world(plan):
    net = SimNetwork(faults=plan)
    server = EchoServer(Nic(net), rng=RandomSource(seed=1)).start()
    client = Nic(net)
    return net, server, client


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(rto=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_waits_grow_exponentially_up_to_cap(self):
        policy = RetryPolicy(attempts=6, rto=0.1, cap=0.5, multiplier=2.0,
                             jitter=0.0)
        assert policy.waits() == [0.1, 0.2, 0.4, 0.5, 0.5, 0.5]

    def test_jitter_stays_in_band_and_is_seeded(self):
        policy = RetryPolicy(attempts=8, rto=0.1, jitter=0.25, seed=3)
        waits = policy.waits()
        bases = RetryPolicy(attempts=8, rto=0.1, jitter=0.0).waits()
        for w, base in zip(waits, bases):
            assert base <= w < base * 1.25
        # Same seed, same schedule; successive draws differ.
        assert RetryPolicy(attempts=8, rto=0.1, jitter=0.25,
                           seed=3).waits() == waits
        assert policy.waits() != waits


class TestTransRetry:
    def test_survives_heavy_request_loss(self):
        plan = FaultPlan(seed=7, drop=0.3)
        _, server, client = lossy_world(plan)
        for i in range(20):
            reply = trans(client, server.put_port,
                          Message(command=USER_BASE, data=b"%d" % i),
                          rng=RandomSource(seed=40 + i), timeout=5.0,
                          retry=RetryPolicy(attempts=10, seed=i))
            assert reply.data == b"%d" % i
        assert plan.injected_drops > 0

    def test_retransmissions_share_one_reply_port(self):
        plan = FaultPlan(seed=1)
        net, server, client = lossy_world(plan)
        plan.links = {client.address: FaultSpec(drop=0.6)}
        requests = []

        def tap(frame):
            if not frame.message.is_reply:
                requests.append(frame.message.reply)

        net.add_tap(tap)
        reply = trans(client, server.put_port,
                      Message(command=USER_BASE, data=b"once"),
                      rng=RandomSource(seed=5), timeout=5.0,
                      retry=RetryPolicy(attempts=10, seed=2))
        assert reply.data == b"once"
        assert len(requests) >= 2  # at least one retransmission happened
        assert len(set(requests)) == 1  # ... all carrying the same F(G')

    def test_without_retry_loss_is_fatal(self):
        plan = FaultPlan(seed=1, drop=1.0)
        _, server, client = lossy_world(plan)
        with pytest.raises(RPCTimeout):
            trans(client, server.put_port, Message(command=USER_BASE),
                  rng=RandomSource(seed=3), timeout=0.05)

    def test_unserved_port_still_raises_port_not_located(self):
        net = SimNetwork(faults=FaultPlan(seed=1))
        client = Nic(net)
        with pytest.raises(PortNotLocated):
            trans(client, 0xDEAD, Message(command=USER_BASE),
                  rng=RandomSource(seed=3),
                  retry=RetryPolicy(attempts=3))

    def test_timeout_error_reports_transmissions(self):
        plan = FaultPlan(seed=1, drop=1.0)
        _, server, client = lossy_world(plan)
        with pytest.raises(RPCTimeout, match="4 transmissions"):
            trans(client, server.put_port, Message(command=USER_BASE),
                  rng=RandomSource(seed=3), timeout=0.05,
                  retry=RetryPolicy(attempts=3, rto=0.001, jitter=0.0))

    def test_des_timeout_consumes_exactly_the_budget(self):
        # A never-answered retried transaction costs exactly `timeout`
        # virtual seconds: backoff never extends the deadline.
        net = SimNetwork(clock=VirtualClock(),
                         latency=LatencyModel(rtt_ms=2.8),
                         faults=FaultPlan(seed=1))
        blackhole = Nic(net)
        wire = blackhole.listen(1234)
        client = Nic(net)
        with pytest.raises(RPCTimeout):
            trans(client, wire, Message(command=USER_BASE),
                  rng=RandomSource(seed=3), timeout=0.75,
                  retry=RetryPolicy(attempts=5, rto=0.05, seed=1))
        assert client.clock.now == pytest.approx(0.75)


class TestAsyncTransRetry:
    def test_result_retries_under_loss(self):
        plan = FaultPlan(seed=9, drop=0.3)
        _, server, client = lossy_world(plan)
        pending = [
            AsyncTrans(client, server.put_port,
                       Message(command=USER_BASE, data=b"%d" % i),
                       rng=RandomSource(seed=70 + i),
                       retry=RetryPolicy(attempts=10, seed=i))
            for i in range(10)
        ]
        for i, at in enumerate(pending):
            assert at.result(timeout=5.0).data == b"%d" % i
        assert plan.injected_drops > 0

    def test_cancel_releases_reply_port(self):
        net = SimNetwork(faults=FaultPlan(seed=1))
        blackhole = Nic(net)
        wire = blackhole.listen(1234)
        client = Nic(net)
        at = AsyncTrans(client, wire, Message(command=USER_BASE),
                        rng=RandomSource(seed=3),
                        retry=RetryPolicy(attempts=5))
        at.cancel()
        # The GET is withdrawn: a late (duplicate) reply no longer lands.
        late = Message(dest=at.wire_reply, is_reply=True, data=b"late")
        assert not blackhole.put(late)
        assert at.poll() is None
        # Retransmit state is purged; collecting now times out cleanly
        # without sending anything further.
        sent_before = net.frames_sent
        with pytest.raises(RPCTimeout):
            at.result(timeout=0.01)
        assert net.frames_sent == sent_before

    def test_cancel_is_idempotent_and_after_result_is_noop(self):
        net = SimNetwork(faults=FaultPlan(seed=1))
        server = EchoServer(Nic(net), rng=RandomSource(seed=1)).start()
        client = Nic(net)
        at = AsyncTrans(client, server.put_port,
                        Message(command=USER_BASE, data=b"ok"),
                        rng=RandomSource(seed=3),
                        retry=RetryPolicy(attempts=2))
        assert at.result().data == b"ok"
        at.cancel()
        at.cancel()
        # The station stays healthy for the next transaction.
        reply = trans(client, server.put_port,
                      Message(command=USER_BASE, data=b"again"),
                      rng=RandomSource(seed=4))
        assert reply.data == b"again"

    def test_trans_many_with_retry_keeps_order(self):
        plan = FaultPlan(seed=3, drop=0.25)
        _, server, client = lossy_world(plan)
        requests = [Message(command=USER_BASE, data=b"%d" % i)
                    for i in range(16)]
        replies = trans_many(client, server.put_port, requests,
                             rng=RandomSource(seed=5), timeout=5.0,
                             retry=RetryPolicy(attempts=10, seed=4))
        assert [r.data for r in replies] == [b"%d" % i for i in range(16)]
        assert plan.injected_drops > 0


class TestClientTimeoutInvalidation:
    def test_rpc_timeout_invalidates_locate_cache(self):
        net = SimNetwork(faults=FaultPlan(seed=1))
        server = EchoServer(Nic(net), rng=RandomSource(seed=1)).start()
        install_locate_responder(server.node)
        client_nic = Nic(net)
        locator = Locator(client_nic, rng=RandomSource(seed=2))
        client = ServiceClient(client_nic, server.put_port,
                               rng=RandomSource(seed=3), locator=locator,
                               timeout=0.05)
        assert client.call(USER_BASE, data=b"warm").data == b"warm"
        assert locator.cache.get(server.put_port) is not None
        # Crash the server: its machine leaves the wire.
        net.detach(server.node.address)
        with pytest.raises(RPCTimeout):
            client.call(USER_BASE, data=b"dead")
        # The stale (port, machine) mapping is gone — the next call will
        # re-broadcast LOCATE rather than unicast at the dark machine.
        assert locator.cache.get(server.put_port) is None

    def test_recovery_after_server_restart(self):
        net = SimNetwork(faults=FaultPlan(seed=1))
        server = EchoServer(Nic(net), rng=RandomSource(seed=1)).start()
        install_locate_responder(server.node)
        client_nic = Nic(net)
        locator = Locator(client_nic, rng=RandomSource(seed=2))
        client = ServiceClient(client_nic, server.put_port,
                               rng=RandomSource(seed=3), locator=locator,
                               timeout=0.05)
        assert client.call(USER_BASE, data=b"up").data == b"up"
        net.detach(server.node.address)
        with pytest.raises(RPCTimeout):
            client.call(USER_BASE, data=b"down")
        # Respawn on a fresh machine serving the same put-port.
        respawn = EchoServer(Nic(net), rng=RandomSource(seed=1)).start()
        assert respawn.put_port == server.put_port
        install_locate_responder(respawn.node)
        assert client.call(USER_BASE, data=b"back").data == b"back"
        assert locator.cache.get(server.put_port) == respawn.node.address
