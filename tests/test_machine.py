"""Tests for the Machine abstraction (kernel wiring)."""

import pytest

from repro.crypto.publickey import generate_keypair
from repro.crypto.randomsrc import RandomSource
from repro.kernel.machine import Machine
from repro.net.network import SimNetwork


@pytest.fixture
def net():
    return SimNetwork()


class TestMachine:
    def test_machine_has_memory_server(self, net):
        m = Machine(net, rng=RandomSource(seed=1))
        assert m.memory_server is not None
        assert m.memory_port == m.memory_server.put_port

    def test_machine_without_memory_server(self, net):
        m = Machine(net, rng=RandomSource(seed=1), with_memory_server=False)
        with pytest.raises(RuntimeError):
            m.memory_port

    def test_names_and_addresses(self, net):
        a = Machine(net, rng=RandomSource(seed=1), name="fileserver")
        b = Machine(net, rng=RandomSource(seed=2))
        assert a.name == "fileserver"
        assert b.name.startswith("machine-")
        assert a.address != b.address

    def test_client_for_port_and_capability(self, net):
        server = Machine(net, rng=RandomSource(seed=1))
        client = Machine(net, rng=RandomSource(seed=2), with_memory_server=False)
        memory = client.memory_client(remote_port=server.memory_port)
        seg = memory.create_segment(16)
        by_cap = client.client_for(seg)
        assert by_cap.put_port == server.memory_port
        by_port = client.client_for(server.memory_port)
        assert by_port.put_port == server.memory_port

    def test_locate_answers_for_memory_server(self, net):
        server = Machine(net, rng=RandomSource(seed=1))
        client = Machine(net, rng=RandomSource(seed=2), with_memory_server=False)
        assert client.locator.locate(server.memory_port) == server.address


class TestAnnouncements:
    def test_announce_heard_by_others(self, net):
        server = Machine(net, rng=RandomSource(seed=1))
        listener = Machine(net, rng=RandomSource(seed=2))
        keys = generate_keypair(bits=256, rng=RandomSource(seed=3))
        server.announce("file service", server.memory_port, keys.public)
        heard = listener.heard_announcements["file service"]
        assert heard.put_port == server.memory_port
        assert heard.public_key == keys.public

    def test_announcer_does_not_hear_itself(self, net):
        server = Machine(net, rng=RandomSource(seed=1))
        Machine(net, rng=RandomSource(seed=2))
        keys = generate_keypair(bits=256, rng=RandomSource(seed=3))
        server.announce("svc", server.memory_port, keys.public)
        assert "svc" not in server.heard_announcements

    def test_garbage_announcement_ignored(self, net):
        from repro.kernel.machine import ANNOUNCE
        from repro.net.message import Message

        listener = Machine(net, rng=RandomSource(seed=1))
        sender = Machine(net, rng=RandomSource(seed=2))
        sender.nic.put_broadcast(Message(command=ANNOUNCE, data=b"\xff"))
        assert listener.heard_announcements == {}
