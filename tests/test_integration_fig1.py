"""Integration: the complete Fig. 1 scenario — clients, servers,
intruders, and F-boxes on one wire — plus the §2.3 message-count claims.

These tests ARE the FIG1 experiment of EXPERIMENTS.md, in miniature.
"""

import pytest

from repro.core.rights import Rights
from repro.crypto.randomsrc import RandomSource
from repro.errors import InvalidCapability
from repro.ipc.client import ServiceClient
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.intruder import Intruder
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic

pytestmark = pytest.mark.integration


class SecretServer(ObjectServer):
    service_name = "secret keeper"

    @command(USER_BASE)
    def _reveal(self, ctx):
        entry, _ = ctx.lookup(Rights(0x01))
        return ctx.ok(data=entry.data)


@pytest.fixture
def fig1():
    """The exact cast of Fig. 1: client, server, intruder, one network."""
    net = SimNetwork()
    server = SecretServer(Nic(net), rng=RandomSource(seed=1)).start()
    client_nic = Nic(net)
    client = ServiceClient(
        client_nic,
        server.put_port,
        rng=RandomSource(seed=2),
        expect_signature=server.signature_image,
    )
    intruder = Intruder(net, rng=RandomSource(seed=3))
    return net, server, client_nic, client, intruder


class TestFig1:
    def test_normal_operation_with_intruder_present(self, fig1):
        _, server, _, client, intruder = fig1
        intruder.start_capture()
        intruder.attempt_get(server.put_port)
        cap = server.table.create(b"top secret payload")
        for _ in range(10):
            assert client.call(USER_BASE, capability=cap).data == (
                b"top secret payload"
            )
        assert intruder.intercepted_count(server.put_port) == 0

    def test_impersonation_campaign_fails_completely(self, fig1):
        """N impersonation attempts, 0 successes — the FIG1 headline."""
        net, server, _, client, intruder = fig1
        cap = server.table.create(b"payload")
        successes = 0
        for _ in range(50):
            intruder.attempt_get(server.put_port)
            client.call(USER_BASE, capability=cap)
            successes += intruder.intercepted_count(server.put_port)
        assert successes == 0

    def test_forged_replies_rejected_by_signature(self, fig1):
        net, server, _, client, intruder = fig1
        cap = server.table.create(b"genuine data")

        def race(frame):
            if not frame.message.is_reply and frame.message.command == USER_BASE:
                intruder.forge_reply(frame, data=b"POISONED")

        net.add_tap(race)
        for _ in range(10):
            assert client.call(USER_BASE, capability=cap).data == b"genuine data"

    def test_revocation_beats_a_thief(self, fig1):
        """A stolen capability dies the moment the owner refreshes."""
        net, server, _, client, intruder = fig1
        cap = server.table.create(b"loot")
        intruder.start_capture()
        client.call(USER_BASE, capability=cap)
        # Thief grabs the capability off the wire and can use it...
        stolen = next(
            f.message.capability
            for f in intruder.captured_requests()
            if f.message.capability
        )
        reply_private, _ = intruder.steal_capability(
            intruder.captured_requests()[0]
        )
        assert intruder.nic.poll(reply_private).message.status == 0
        # ...until the owner revokes.
        client.refresh(cap)
        intruder.captured.clear()
        thief_client = ServiceClient(
            intruder.nic, server.put_port, rng=RandomSource(seed=9)
        )
        with pytest.raises(InvalidCapability):
            thief_client.call(USER_BASE, capability=stolen)


class TestMessageEconomics:
    """§2.3's comparative claim: restricting rights costs a round-trip for
    schemes 1-2 but zero messages for scheme 3."""

    def test_server_restrict_costs_two_frames(self):
        net = SimNetwork()
        server = SecretServer(Nic(net), rng=RandomSource(seed=1)).start()
        client = ServiceClient(Nic(net), server.put_port, rng=RandomSource(seed=2))
        cap = server.table.create(b"x")
        net.reset_stats()
        client.restrict(cap, 0x01)
        assert net.frames_sent == 2  # request + reply

    def test_client_restrict_costs_zero_frames(self):
        from repro.core.schemes import CommutativeScheme

        net = SimNetwork()
        scheme = CommutativeScheme()
        server = SecretServer(Nic(net), scheme=scheme, rng=RandomSource(seed=1)).start()
        client_nic = Nic(net)
        client = ServiceClient(client_nic, server.put_port, rng=RandomSource(seed=2))
        cap = server.table.create(b"x")
        net.reset_stats()
        weaker = scheme.client_restrict(cap, Rights(0x01))
        assert net.frames_sent == 0  # fabricated entirely client-side
        # And the server honours it.
        assert client.call(USER_BASE, capability=weaker).data == b"x"

    def test_exact_copy_costs_zero_frames_any_scheme(self):
        """'The owner of an object can easily give an exact copy of its
        capability to another process by just sending it the bit pattern'
        — no server involvement."""
        net = SimNetwork()
        server = SecretServer(Nic(net), rng=RandomSource(seed=1)).start()
        cap = server.table.create(b"x")
        net.reset_stats()
        copied = type(cap).unpack(cap.pack())
        assert net.frames_sent == 0
        client = ServiceClient(Nic(net), server.put_port, rng=RandomSource(seed=2))
        assert client.call(USER_BASE, capability=copied).data == b"x"
