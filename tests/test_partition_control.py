"""ReplicaPool membership (JOIN/LEAVE/PING) under partition-and-heal.

The control-lane half of the partition story: a pool member that goes
silent behind a network cut is *suspected* — steered around by the
locate responder — but never evicted, because eviction would throw
away state (revocation generations, mirrored secrets) that is intact
behind the partition.  When the cut heals, one answered PING clears
the suspicion and the member is back in rotation with that state
untouched.

Covers the registry's suspicion contract as units, and a real
fork-per-replica :class:`ReplicaPool` over loopback UDP whose arbiter
drops ingress from one member via a :class:`FaultPlan` partition
(`sever(src=member)` — the arbiter's side of the cut).
"""

import pytest

from repro.core.ports import PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.errors import InvalidCapability
from repro.ipc import stdops
from repro.ipc.locate import Locator
from repro.ipc.replica import ROUND_ROBIN, ReplicaRegistry
from repro.ipc.rpc import trans
from repro.net.faults import FaultPlan
from repro.net.message import Message


class TestRegistrySuspicion:
    def _registry(self):
        registry = ReplicaRegistry(policy=ROUND_ROBIN)
        port = PrivatePort.generate(RandomSource(seed=1)).public
        for machine in ("m0", "m1", "m2"):
            registry.join(port, machine)
        return registry, port

    def test_suspect_steers_around_but_keeps_membership(self):
        registry, port = self._registry()
        assert registry.suspect(port, "m1")
        assert registry.suspected(port) == ("m1",)
        assert registry.members(port) == ("m0", "m1", "m2")  # not evicted
        assert tuple(registry.replica_set(port)) == ("m0", "m2")

    def test_suspicion_cannot_invent_members(self):
        registry, port = self._registry()
        assert not registry.suspect(port, "stranger")
        assert registry.suspected(port) == ()

    def test_all_suspected_pool_is_still_served_whole(self):
        registry, port = self._registry()
        for machine in ("m0", "m1", "m2"):
            registry.suspect(port, machine)
        # Advisory, not authoritative: the suspicion may be *our* side
        # of the partition, so an all-suspected set is returned intact.
        assert tuple(registry.replica_set(port)) == ("m0", "m1", "m2")

    def test_unsuspect_restores_rotation(self):
        registry, port = self._registry()
        registry.suspect(port, "m1")
        assert registry.unsuspect(port, "m1")
        assert tuple(registry.replica_set(port)) == ("m0", "m1", "m2")
        assert not registry.unsuspect(port, "m1")  # already clear

    def test_rejoin_is_proof_of_reachability(self):
        registry, port = self._registry()
        registry.suspect(port, "m1")
        registry.join(port, "m1")  # the member's own JOIN clears it
        assert registry.suspected(port) == ()
        assert registry.members(port) == ("m0", "m1", "m2")

    def test_leave_cleans_suspicion_state(self):
        registry, port = self._registry()
        registry.suspect(port, "m1")
        assert registry.leave(port, "m1")
        assert registry.suspected(port) == ()
        assert registry.members(port) == ("m0", "m2")


@pytest.mark.integration
class TestPoolPartitionAndHeal:
    def test_partitioned_member_suspected_not_evicted_then_rejoins(self):
        """Fork a 3-process pool, cut the arbiter's ingress from one
        member, and walk the full suspect -> steer-around -> heal ->
        rejoin cycle, asserting the member's generation state survived
        the whole episode."""
        from repro.ipc.replica import ReplicaPool
        from repro.net.sockets import SocketNode

        pool = ReplicaPool(replicas=3, objects=1, payload=b"part")
        client_node = SocketNode()
        plan = FaultPlan(seed=1)
        try:
            assert len(pool.registry.members(pool.put_port)) == 3
            assert all(pool.probe(i, timeout=2.0) for i in range(3))

            client_node.connect(pool.arbiter.address)
            locator = Locator(client_node, rng=RandomSource(3))
            cap = pool.capabilities[0]
            cut = pool.addresses[1]

            # The arbiter's side of the partition: everything *from*
            # member 1 is dropped at ingress — its PONGs go dark.
            pool.arbiter.faults = plan
            plan.sever(src=cut)
            assert not pool.probe(1, timeout=0.5)
            assert pool.registry.suspected(pool.put_port) == (cut,)
            # Suspected, steered around — but NOT evicted.
            assert len(pool.registry.members(pool.put_port)) == 3
            assert tuple(pool.replica_set()) == (
                pool.addresses[0], pool.addresses[2],
            )
            # Clients locating through the arbiter see the trimmed set.
            located = locator.locate(pool.put_port)
            assert cut not in located and len(located) == 2

            # Revocation proceeds while the member is suspected: the
            # fan-out rides the data lane (child to child), which this
            # cut does not touch.
            fresh = _refresh(client_node, pool, cap, locator)

            # Heal: one answered PING re-admits the member...
            plan.heal(src=cut)
            assert pool.probe(1, timeout=2.0)
            assert pool.registry.suspected(pool.put_port) == ()
            assert len(pool.replica_set()) == 3

            # ...with its generation state intact from behind the cut:
            # the revoked capability is rejected, the fresh one valid.
            old = _touch(client_node, pool, cap, dst=cut, seed=100)
            assert old.status == InvalidCapability.code
            good = _touch(client_node, pool, fresh, dst=cut, seed=101)
            assert good.status == 0
        finally:
            pool.arbiter.faults = None
            pool.stop()
            client_node.close()


def _refresh(client_node, pool, cap, locator):
    from repro.ipc.client import ServiceClient

    client = ServiceClient(
        client_node,
        pool.put_port,
        rng=RandomSource(5),
        expect_signature=pool.signature.public,
        locator=locator,
        timeout=4.0,
    )
    return client.refresh(cap)


def _touch(client_node, pool, cap, dst, seed):
    return trans(
        client_node,
        pool.put_port,
        Message(command=stdops.STD_TOUCH, capability=cap),
        rng=RandomSource(seed),
        timeout=4.0,
        expect_signature=pool.signature.public,
        dst_machine=dst,
    )
