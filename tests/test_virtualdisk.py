"""Tests for the virtual disk (including write-once media)."""

import pytest

from repro.disk.virtualdisk import VirtualDisk
from repro.errors import OutOfSpace, WriteOnceViolation


class TestBasics:
    def test_geometry(self):
        disk = VirtualDisk(n_blocks=10, block_size=128)
        assert disk.n_blocks == 10
        assert disk.block_size == 128
        assert disk.free_blocks == 10

    def test_allocate_unique(self):
        disk = VirtualDisk(n_blocks=5)
        blocks = {disk.allocate() for _ in range(5)}
        assert len(blocks) == 5
        assert disk.used_blocks == 5

    def test_exhaustion(self):
        disk = VirtualDisk(n_blocks=2)
        disk.allocate()
        disk.allocate()
        with pytest.raises(OutOfSpace):
            disk.allocate()

    def test_free_recycles(self):
        disk = VirtualDisk(n_blocks=1)
        b = disk.allocate()
        disk.free(b)
        assert disk.allocate() == b

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualDisk(n_blocks=0)
        with pytest.raises(ValueError):
            VirtualDisk(n_blocks=1, block_size=0)


class TestIO:
    def test_write_read(self):
        disk = VirtualDisk(n_blocks=4, block_size=16)
        b = disk.allocate()
        disk.write(b, b"hello")
        assert disk.read(b) == b"hello" + bytes(11)

    def test_unwritten_reads_zeros(self):
        disk = VirtualDisk(n_blocks=4, block_size=8)
        b = disk.allocate()
        assert disk.read(b) == bytes(8)

    def test_oversized_write(self):
        disk = VirtualDisk(n_blocks=4, block_size=8)
        b = disk.allocate()
        with pytest.raises(ValueError):
            disk.write(b, b"123456789")

    def test_block_bounds(self):
        disk = VirtualDisk(n_blocks=4)
        with pytest.raises(ValueError):
            disk.read(4)
        with pytest.raises(ValueError):
            disk.write(-1, b"")

    def test_counters(self):
        disk = VirtualDisk(n_blocks=4)
        b = disk.allocate()
        disk.write(b, b"x")
        disk.read(b)
        disk.read(b)
        assert disk.writes == 1
        assert disk.reads == 2

    def test_rewrite_allowed_on_normal_media(self):
        disk = VirtualDisk(n_blocks=4, block_size=8)
        b = disk.allocate()
        disk.write(b, b"first")
        disk.write(b, b"second")
        assert disk.read(b).startswith(b"second")


class TestWriteOnce:
    """§3.5: 'designed for use with video disks and other write-once
    media' — a written block is burnt forever."""

    def test_rewrite_refused(self):
        disk = VirtualDisk(n_blocks=4, write_once=True)
        b = disk.allocate()
        disk.write(b, b"burnt")
        with pytest.raises(WriteOnceViolation):
            disk.write(b, b"again")

    def test_free_of_written_block_refused(self):
        disk = VirtualDisk(n_blocks=4, write_once=True)
        b = disk.allocate()
        disk.write(b, b"burnt")
        with pytest.raises(WriteOnceViolation):
            disk.free(b)

    def test_unwritten_block_can_be_freed(self):
        disk = VirtualDisk(n_blocks=4, write_once=True)
        b = disk.allocate()
        disk.free(b)  # never written: reclaimable

    def test_reads_always_allowed(self):
        disk = VirtualDisk(n_blocks=4, write_once=True)
        b = disk.allocate()
        disk.write(b, b"data")
        for _ in range(3):
            assert disk.read(b).startswith(b"data")

    def test_is_written(self):
        disk = VirtualDisk(n_blocks=4, write_once=True)
        b = disk.allocate()
        assert not disk.is_written(b)
        disk.write(b, b"x")
        assert disk.is_written(b)
