"""Tests for the virtual disk (including write-once media)."""

import threading

import pytest

from repro.disk.virtualdisk import VirtualDisk
from repro.errors import OutOfSpace, WriteOnceViolation


class TestBasics:
    def test_geometry(self):
        disk = VirtualDisk(n_blocks=10, block_size=128)
        assert disk.n_blocks == 10
        assert disk.block_size == 128
        assert disk.free_blocks == 10

    def test_allocate_unique(self):
        disk = VirtualDisk(n_blocks=5)
        blocks = {disk.allocate() for _ in range(5)}
        assert len(blocks) == 5
        assert disk.used_blocks == 5

    def test_exhaustion(self):
        disk = VirtualDisk(n_blocks=2)
        disk.allocate()
        disk.allocate()
        with pytest.raises(OutOfSpace):
            disk.allocate()

    def test_free_recycles(self):
        disk = VirtualDisk(n_blocks=1)
        b = disk.allocate()
        disk.free(b)
        assert disk.allocate() == b

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualDisk(n_blocks=0)
        with pytest.raises(ValueError):
            VirtualDisk(n_blocks=1, block_size=0)


class TestAllocationDiscipline:
    """Freeing is only legal for blocks the disk handed out."""

    def test_double_free_raises(self):
        disk = VirtualDisk(n_blocks=4)
        b = disk.allocate()
        disk.free(b)
        with pytest.raises(ValueError, match="not allocated"):
            disk.free(b)

    def test_free_of_never_allocated_block_raises(self):
        disk = VirtualDisk(n_blocks=4)
        with pytest.raises(ValueError, match="not allocated"):
            disk.free(2)

    def test_free_out_of_range_raises(self):
        disk = VirtualDisk(n_blocks=4)
        with pytest.raises(ValueError):
            disk.free(99)

    def test_double_free_does_not_corrupt_free_list(self):
        # The historical bug: free() appended unconditionally, so a
        # double free let two owners allocate the same block.
        disk = VirtualDisk(n_blocks=2)
        b = disk.allocate()
        disk.free(b)
        with pytest.raises(ValueError):
            disk.free(b)
        first, second = disk.allocate(), disk.allocate()
        assert first != second

    def test_reserve(self):
        disk = VirtualDisk(n_blocks=4)
        disk.reserve(0)
        assert 0 in disk.allocated_blocks()
        got = {disk.allocate() for _ in range(3)}
        assert 0 not in got
        with pytest.raises(ValueError):
            disk.reserve(0)  # already taken

    def test_allocated_blocks_snapshot(self):
        disk = VirtualDisk(n_blocks=4)
        a, b = disk.allocate(), disk.allocate()
        assert disk.allocated_blocks() == frozenset({a, b})


class TestThreadSafety:
    def test_concurrent_allocate_free_cycles(self):
        disk = VirtualDisk(n_blocks=256, block_size=32)
        errors = []

        def churn(worker):
            try:
                for i in range(200):
                    b = disk.allocate()
                    disk.write(b, b"w%dc%d" % (worker, i))
                    assert disk.read(b).startswith(b"w%d" % worker)
                    disk.free(b)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert disk.used_blocks == 0
        assert disk.free_blocks == 256

    def test_concurrent_allocation_is_unique(self):
        disk = VirtualDisk(n_blocks=512)
        grabbed = [[] for _ in range(8)]

        def grab(mine):
            for _ in range(64):
                mine.append(disk.allocate())

        threads = [
            threading.Thread(target=grab, args=(g,)) for g in grabbed
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        flat = [b for mine in grabbed for b in mine]
        assert len(flat) == len(set(flat)) == 512


class TestIO:
    def test_write_read(self):
        disk = VirtualDisk(n_blocks=4, block_size=16)
        b = disk.allocate()
        disk.write(b, b"hello")
        assert disk.read(b) == b"hello" + bytes(11)

    def test_unwritten_reads_zeros(self):
        disk = VirtualDisk(n_blocks=4, block_size=8)
        b = disk.allocate()
        assert disk.read(b) == bytes(8)

    def test_oversized_write(self):
        disk = VirtualDisk(n_blocks=4, block_size=8)
        b = disk.allocate()
        with pytest.raises(ValueError):
            disk.write(b, b"123456789")

    def test_block_bounds(self):
        disk = VirtualDisk(n_blocks=4)
        with pytest.raises(ValueError):
            disk.read(4)
        with pytest.raises(ValueError):
            disk.write(-1, b"")

    def test_counters(self):
        disk = VirtualDisk(n_blocks=4)
        b = disk.allocate()
        disk.write(b, b"x")
        disk.read(b)
        disk.read(b)
        assert disk.writes == 1
        assert disk.reads == 2

    def test_rewrite_allowed_on_normal_media(self):
        disk = VirtualDisk(n_blocks=4, block_size=8)
        b = disk.allocate()
        disk.write(b, b"first")
        disk.write(b, b"second")
        assert disk.read(b).startswith(b"second")


class TestWriteOnce:
    """§3.5: 'designed for use with video disks and other write-once
    media' — a written block is burnt forever."""

    def test_rewrite_refused(self):
        disk = VirtualDisk(n_blocks=4, write_once=True)
        b = disk.allocate()
        disk.write(b, b"burnt")
        with pytest.raises(WriteOnceViolation):
            disk.write(b, b"again")

    def test_free_of_written_block_refused(self):
        disk = VirtualDisk(n_blocks=4, write_once=True)
        b = disk.allocate()
        disk.write(b, b"burnt")
        with pytest.raises(WriteOnceViolation):
            disk.free(b)

    def test_unwritten_block_can_be_freed(self):
        disk = VirtualDisk(n_blocks=4, write_once=True)
        b = disk.allocate()
        disk.free(b)  # never written: reclaimable

    def test_reads_always_allowed(self):
        disk = VirtualDisk(n_blocks=4, write_once=True)
        b = disk.allocate()
        disk.write(b, b"data")
        for _ in range(3):
            assert disk.read(b).startswith(b"data")

    def test_is_written(self):
        disk = VirtualDisk(n_blocks=4, write_once=True)
        b = disk.allocate()
        assert not disk.is_written(b)
        disk.write(b, b"x")
        assert disk.is_written(b)
