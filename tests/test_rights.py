"""Tests for the 8-bit rights mask algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rights import ALL_RIGHTS, NO_RIGHTS, Rights

rights_bits = st.integers(min_value=0, max_value=0xFF)


class TestConstruction:
    def test_default_is_all(self):
        assert int(Rights()) == 0xFF
        assert Rights() == ALL_RIGHTS

    def test_bounds(self):
        with pytest.raises(ValueError):
            Rights(256)
        with pytest.raises(ValueError):
            Rights(-1)

    def test_is_an_int(self):
        assert Rights(0x0F) & 0x03 == 0x03
        assert isinstance(Rights(1), int)


class TestQueries:
    def test_has(self):
        r = Rights(0b00000101)
        assert r.has(0) and r.has(2)
        assert not r.has(1)

    def test_has_bounds(self):
        with pytest.raises(IndexError):
            Rights().has(8)

    def test_has_all(self):
        r = Rights(0b0111)
        assert r.has_all(0b0101)
        assert not r.has_all(0b1000)
        assert r.has_all(NO_RIGHTS)

    def test_set_and_clear_bits_partition(self):
        r = Rights(0b10100101)
        assert r.set_bits() == (0, 2, 5, 7)
        assert r.clear_bits() == (1, 3, 4, 6)

    @given(rights_bits)
    def test_partition_property(self, bits):
        r = Rights(bits)
        assert sorted(r.set_bits() + r.clear_bits()) == list(range(8))


class TestRestriction:
    @given(rights_bits, rights_bits)
    def test_restrict_is_intersection(self, a, b):
        assert int(Rights(a).restrict(b)) == a & b

    @given(rights_bits, rights_bits)
    def test_restrict_never_grows(self, a, b):
        restricted = Rights(a).restrict(b)
        assert Rights(a).has_all(restricted)

    @given(rights_bits, rights_bits)
    def test_restrict_idempotent(self, a, b):
        once = Rights(a).restrict(b)
        assert once.restrict(b) == once

    @given(rights_bits)
    def test_restrict_by_all_is_identity(self, a):
        assert Rights(a).restrict(ALL_RIGHTS) == Rights(a)

    def test_without(self):
        assert int(Rights(0b1111).without(0b0101)) == 0b1010

    @given(rights_bits, rights_bits)
    def test_without_equals_restrict_complement(self, a, b):
        assert Rights(a).without(b) == Rights(a).restrict(0xFF ^ b)

    def test_results_are_rights_instances(self):
        assert isinstance(Rights(3).restrict(1), Rights)
        assert isinstance(Rights(3).without(1), Rights)


class TestRepr:
    def test_repr_shows_bits(self):
        assert "0b00000101" in repr(Rights(5))
