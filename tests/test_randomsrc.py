"""Tests for the seeded/os-entropy random source."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.randomsrc import RandomSource


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomSource(seed=123)
        b = RandomSource(seed=123)
        assert a.bytes(64) == b.bytes(64)
        assert a.bits(48) == b.bits(48)

    def test_different_seeds_differ(self):
        assert RandomSource(seed=1).bytes(32) != RandomSource(seed=2).bytes(32)

    def test_seed_types(self):
        for seed in (b"bytes", "string", 42, -42):
            assert len(RandomSource(seed=seed).bytes(16)) == 16

    def test_bad_seed_type(self):
        with pytest.raises(TypeError):
            RandomSource(seed=3.14)

    def test_unseeded_is_nondeterministic_flagged(self):
        assert not RandomSource().deterministic
        assert RandomSource(seed=1).deterministic


class TestBits:
    def test_width_respected(self):
        rng = RandomSource(seed=9)
        for width in (1, 7, 8, 24, 48, 128):
            for _ in range(20):
                assert 0 <= rng.bits(width) < (1 << width)

    def test_zero_bits(self):
        assert RandomSource(seed=1).bits(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(seed=1).bits(-1)
        with pytest.raises(ValueError):
            RandomSource(seed=1).bytes(-1)

    def test_48_bit_values_fill_the_space(self):
        # Sparse capabilities need the whole 48-bit space in play: over a
        # few hundred draws we must see values in both halves.
        rng = RandomSource(seed=77)
        draws = [rng.bits(48) for _ in range(300)]
        midpoint = 1 << 47
        assert any(d < midpoint for d in draws)
        assert any(d >= midpoint for d in draws)
        assert len(set(draws)) == len(draws)  # no collisions in 300 draws


class TestRandint:
    @given(st.integers(-100, 100), st.integers(0, 200))
    def test_in_range(self, lo, span):
        hi = lo + span
        rng = RandomSource(seed=5)
        for _ in range(10):
            assert lo <= rng.randint(lo, hi) <= hi

    def test_degenerate_range(self):
        assert RandomSource(seed=1).randint(7, 7) == 7

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(seed=1).randint(3, 2)

    def test_covers_small_range(self):
        rng = RandomSource(seed=13)
        seen = {rng.randint(0, 3) for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestChoiceShuffle:
    def test_choice(self):
        rng = RandomSource(seed=3)
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for _ in range(50))

    def test_choice_empty(self):
        with pytest.raises(ValueError):
            RandomSource(seed=1).choice([])

    def test_shuffle_is_permutation(self):
        rng = RandomSource(seed=4)
        items = list(range(20))
        shuffled = rng.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # original untouched

    def test_shuffle_actually_shuffles(self):
        rng = RandomSource(seed=4)
        assert any(rng.shuffle(list(range(20))) != list(range(20)) for _ in range(5))
