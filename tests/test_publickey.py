"""Tests for the RSA substrate behind the §2.4 bootstrap protocol."""

import pytest

from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.publickey import generate_keypair
from repro.crypto.randomsrc import RandomSource
from repro.errors import SecurityError


@pytest.fixture(scope="module")
def keypair():
    # One keypair for the whole module: pure-Python keygen is the slow part.
    return generate_keypair(bits=512, rng=RandomSource(seed=2024))


class TestPrimes:
    def test_known_primes(self):
        rng = RandomSource(seed=1)
        for p in (2, 3, 5, 7, 97, 7919, 2**31 - 1):
            assert is_probable_prime(p, rng)

    def test_known_composites(self):
        rng = RandomSource(seed=1)
        for n in (0, 1, 4, 100, 561, 41041, 2**32):  # incl. Carmichaels
            assert not is_probable_prime(n, rng)

    def test_generate_prime_size(self):
        rng = RandomSource(seed=3)
        p = generate_prime(64, rng)
        assert p.bit_length() == 64
        assert is_probable_prime(p, rng)

    def test_generate_prime_avoids_divisors(self):
        rng = RandomSource(seed=4)
        p = generate_prime(64, rng, avoid_divisors_of_p_minus_1=(3, 5, 7))
        assert all((p - 1) % e for e in (3, 5, 7))

    def test_tiny_prime_refused(self):
        with pytest.raises(ValueError):
            generate_prime(4, RandomSource(seed=1))


class TestEncryption:
    def test_roundtrip(self, keypair):
        rng = RandomSource(seed=5)
        message = b"a 16-byte DES key"
        ct = keypair.public.encrypt(message, rng=rng)
        assert keypair.decrypt(ct) == message

    def test_randomised_padding(self, keypair):
        # Two encryptions of the same message must differ, or replay
        # detection by ciphertext comparison becomes possible.
        rng = RandomSource(seed=6)
        a = keypair.public.encrypt(b"key", rng=rng)
        b = keypair.public.encrypt(b"key", rng=rng)
        assert a != b
        assert keypair.decrypt(a) == keypair.decrypt(b) == b"key"

    def test_message_too_long(self, keypair):
        limit = keypair.public.modulus_bytes - 11
        with pytest.raises(ValueError):
            keypair.public.encrypt(b"x" * (limit + 1))

    def test_tampered_ciphertext_rejected_or_garbled(self, keypair):
        rng = RandomSource(seed=7)
        ct = bytearray(keypair.public.encrypt(b"secret key bytes", rng=rng))
        ct[5] ^= 0x40
        try:
            recovered = keypair.decrypt(bytes(ct))
        except SecurityError:
            return  # padding destroyed: the expected outcome
        assert recovered != b"secret key bytes"

    def test_wrong_length_ciphertext(self, keypair):
        with pytest.raises(SecurityError):
            keypair.decrypt(b"short")


class TestSignatures:
    def test_sign_verify(self, keypair):
        sig = keypair.sign(b"K || K' payload")
        assert keypair.public.verify(b"K || K' payload", sig)

    def test_wrong_message_fails(self, keypair):
        sig = keypair.sign(b"original")
        assert not keypair.public.verify(b"forged", sig)

    def test_tampered_signature_fails(self, keypair):
        sig = bytearray(keypair.sign(b"message"))
        sig[0] ^= 1
        assert not keypair.public.verify(b"message", bytes(sig))

    def test_wrong_key_fails(self, keypair):
        other = generate_keypair(bits=256, rng=RandomSource(seed=2025))
        sig = other.sign(b"message")
        assert not keypair.public.verify(b"message", sig)

    def test_string_messages(self, keypair):
        assert keypair.public.verify("text", keypair.sign("text"))


class TestKeygen:
    def test_deterministic_for_seeded_rng(self):
        a = generate_keypair(bits=256, rng=RandomSource(seed=42))
        b = generate_keypair(bits=256, rng=RandomSource(seed=42))
        assert a.public == b.public

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            generate_keypair(bits=64)

    def test_modulus_size(self, keypair):
        assert keypair.public.n.bit_length() >= 511
