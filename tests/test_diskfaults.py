"""Tests for seeded disk fault injection (torn/lost writes, power failure)."""

import pytest

from repro.disk.diskfaults import DiskFaultPlan
from repro.disk.virtualdisk import VirtualDisk
from repro.errors import DiskFault, PowerFailure


class TestPlanValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            DiskFaultPlan(torn=1.5)
        with pytest.raises(ValueError):
            DiskFaultPlan(lost=-0.1)

    def test_power_fail_after_bounds(self):
        with pytest.raises(ValueError):
            DiskFaultPlan(power_fail_after=-1)

    def test_silent(self):
        assert DiskFaultPlan().silent
        assert not DiskFaultPlan(torn=0.1).silent
        assert not DiskFaultPlan(lost_at={3}).silent
        assert not DiskFaultPlan(power_fail_after=5).silent


class TestTornWrites:
    def test_torn_write_mixes_old_and_new(self):
        disk = VirtualDisk(4, block_size=64, faults=DiskFaultPlan(seed=7, torn_at={1}))
        b = disk.allocate()
        disk.write(b, b"A" * 64)          # write 0: clean
        disk.write(b, b"B" * 64)          # write 1: torn
        raw = disk.read(b)
        assert raw != b"B" * 64           # some suffix still holds the old data
        assert raw.startswith(b"B")       # but a non-empty prefix landed
        assert b"A" in raw
        assert disk.faults.stats()["torn_writes"] == 1

    def test_torn_write_over_virgin_block_mixes_with_zeros(self):
        disk = VirtualDisk(4, block_size=64, faults=DiskFaultPlan(seed=7, torn_at={0}))
        b = disk.allocate()
        disk.write(b, b"C" * 64)
        raw = disk.read(b)
        assert raw.startswith(b"C")
        assert raw.endswith(b"\0")

    def test_torn_probability_deterministic(self):
        def run():
            disk = VirtualDisk(
                8, block_size=32, faults=DiskFaultPlan(seed=3, torn=0.5)
            )
            blocks = [disk.allocate() for _ in range(8)]
            for i, b in enumerate(blocks):
                disk.write(b, bytes([i]) * 32)
            return [disk.read(b) for b in blocks], disk.faults.stats()

        one, two = run(), run()
        assert one == two
        assert one[1]["torn_writes"] > 0


class TestLostWrites:
    def test_lost_write_acked_but_absent(self):
        disk = VirtualDisk(4, block_size=32, faults=DiskFaultPlan(seed=1, lost_at={1}))
        b = disk.allocate()
        disk.write(b, b"old data")
        disk.write(b, b"new data")        # silently dropped
        assert disk.read(b).startswith(b"old data")
        assert disk.faults.stats()["lost_writes"] == 1

    def test_lost_first_write_leaves_block_virgin(self):
        disk = VirtualDisk(4, block_size=32, faults=DiskFaultPlan(seed=1, lost_at={0}))
        b = disk.allocate()
        disk.write(b, b"gone")
        assert not disk.is_written(b)
        assert disk.read(b) == bytes(32)


class TestPowerFailure:
    def test_power_fail_after_n_writes(self):
        disk = VirtualDisk(8, block_size=32,
                           faults=DiskFaultPlan(power_fail_after=2))
        b = disk.allocate()
        disk.write(b, b"one")
        disk.write(b, b"two")
        with pytest.raises(PowerFailure):
            disk.write(b, b"three")
        assert disk.read(b).startswith(b"two")

    def test_disk_stays_dead_until_revive(self):
        disk = VirtualDisk(8, faults=DiskFaultPlan(power_fail_after=0))
        b = disk.allocate()
        with pytest.raises(PowerFailure):
            disk.write(b, b"x")
        with pytest.raises(PowerFailure):
            disk.write(b, b"y")
        disk.faults.revive()
        disk.write(b, b"alive")
        assert disk.read(b).startswith(b"alive")

    def test_power_failure_is_a_disk_fault(self):
        assert issubclass(PowerFailure, DiskFault)

    def test_failed_write_not_counted_on_medium(self):
        disk = VirtualDisk(8, faults=DiskFaultPlan(power_fail_after=0))
        b = disk.allocate()
        with pytest.raises(PowerFailure):
            disk.write(b, b"x")
        assert not disk.is_written(b)


class TestBookkeeping:
    def test_stats_and_reset(self):
        plan = DiskFaultPlan(seed=2, lost_at={0})
        disk = VirtualDisk(4, faults=plan)
        b = disk.allocate()
        disk.write(b, b"a")
        disk.write(b, b"b")
        stats = plan.stats()
        assert stats["writes_seen"] == 2
        assert stats["lost_writes"] == 1
        assert not stats["powered_off"]
        plan.reset_stats()
        assert plan.stats()["torn_writes"] == 0
        assert plan.stats()["lost_writes"] == 0

    def test_ordinals_are_global_across_blocks(self):
        plan = DiskFaultPlan(seed=2, lost_at={1})
        disk = VirtualDisk(4, block_size=16, faults=plan)
        b0, b1 = disk.allocate(), disk.allocate()
        disk.write(b0, b"kept")
        disk.write(b1, b"lost")           # global write ordinal 1
        assert disk.read(b0).startswith(b"kept")
        assert not disk.is_written(b1)
