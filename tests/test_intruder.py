"""Tests for the Fig. 1 threat model: what intruders can and cannot do.

These are the paper's security arguments, run as code.  Where the bare
F-box scheme has a known residual weakness (bearer-capability theft by a
wiretapper), the test asserts the weakness *exists* — that is what
motivates §2.4 — and the matrix tests show it closed.
"""

import pytest

from repro.core.ports import Port, PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.ipc.rpc import trans
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.intruder import Intruder
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic


class EchoServer(ObjectServer):
    service_name = "echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


@pytest.fixture
def world():
    net = SimNetwork()
    server_nic, client_nic = Nic(net), Nic(net)
    server = EchoServer(server_nic, rng=RandomSource(seed=1)).start()
    intruder = Intruder(net, rng=RandomSource(seed=2))
    return net, server_nic, client_nic, server, intruder


class TestImpersonation:
    def test_get_on_put_port_listens_elsewhere(self, world):
        """'An intruder doing GET(P) will simply cause his F-box to listen
        to the (useless) port F(P).'"""
        _, _, _, server, intruder = world
        wire = intruder.attempt_get(server.put_port)
        assert wire != server.put_port

    def test_intruder_intercepts_nothing(self, world):
        net, _, client_nic, server, intruder = world
        intruder.attempt_get(server.put_port)
        client_rng = RandomSource(seed=3)
        for i in range(20):
            reply = trans(
                client_nic,
                server.put_port,
                Message(command=USER_BASE, data=b"secret %d" % i),
                rng=client_rng,
            )
            assert reply.data == b"secret %d" % i
        assert intruder.intercepted_count(server.put_port) == 0

    def test_server_still_receives_everything(self, world):
        _, _, client_nic, server, intruder = world
        intruder.attempt_get(server.put_port)
        for _ in range(5):
            trans(
                client_nic,
                server.put_port,
                Message(command=USER_BASE),
                rng=RandomSource(seed=4),
            )
        assert server.request_counts[USER_BASE] == 5


class TestReplyForgery:
    def test_unsigned_clients_can_be_fooled(self, world):
        """Reply forgery IS deliverable without signatures — this is the
        gap the §2.2 signature mechanism exists to close."""
        net, _, client_nic, server, intruder = world
        intruder.start_capture()
        trans(client_nic, server.put_port, Message(command=USER_BASE),
              rng=RandomSource(seed=5))
        request = intruder.captured_requests()[0]
        # Forge a reply to the (already answered) request's reply port:
        # nobody listens any more, so it drops — but re-arm the port and
        # the forgery lands.
        reply_private = PrivatePort.generate(RandomSource(seed=6))
        client_nic.listen(reply_private)
        hijack = request.message.copy(reply=Port(reply_private.secret))
        # The client sends its own request; intruder races the reply.
        fresh = client_nic.fbox.transform_egress(hijack)
        intruder.forge_reply(
            type("F", (), {"message": fresh})(), data=b"FORGED"
        )
        frame = client_nic.poll(reply_private)
        assert frame is not None
        assert frame.message.data == b"FORGED"

    def test_signature_checking_rejects_forgery(self, world):
        net, _, client_nic, server, intruder = world
        intruder.start_capture()

        # Arrange a race: tap the request as it is sent and immediately
        # inject a forged reply, so the client sees the forgery first
        # and the genuine (signed) reply second.
        def race(frame):
            if not frame.message.is_reply and frame.message.command == USER_BASE:
                intruder.forge_reply(frame, data=b"FORGED")

        net.add_tap(race)
        reply = trans(
            client_nic,
            server.put_port,
            Message(command=USER_BASE, data=b"genuine"),
            rng=RandomSource(seed=7),
            expect_signature=server.signature_image,
        )
        assert reply.data == b"genuine"

    def test_intruder_cannot_produce_valid_signature(self, world):
        net, _, client_nic, server, intruder = world
        seen = []
        net.add_tap(lambda f: seen.append(f.message.signature))
        trans(
            client_nic,
            server.put_port,
            Message(command=USER_BASE),
            rng=RandomSource(seed=8),
            expect_signature=server.signature_image,
        )
        # The genuine reply's wire signature is F(S).
        assert server.signature_image in seen
        # The intruder knows F(S) but must find S to sign: sending F(S)
        # as the signature field yields F(F(S)) on the wire.
        forged = intruder.nic.fbox.transform_egress(
            Message(signature=server.signature_image)
        )
        assert forged.signature != server.signature_image


class TestWiretapping:
    def test_taps_see_capability_bytes(self, world):
        """Bearer tokens on a broadcast wire ARE stealable — the residual
        risk §2.4's matrix encryption addresses."""
        net, _, client_nic, server, intruder = world
        cap = server.table.create("loot")
        intruder.start_capture()
        trans(
            client_nic,
            server.put_port,
            Message(command=2, capability=cap, size=0x01),  # STD_RESTRICT
            rng=RandomSource(seed=9),
        )
        stolen = [
            f.message.capability
            for f in intruder.captured_requests()
            if f.message.capability is not None
        ]
        assert stolen and stolen[0] == cap

    def test_stolen_capability_usable_without_matrix(self, world):
        net, _, client_nic, server, intruder = world
        cap = server.table.create("loot")
        intruder.start_capture()
        trans(
            client_nic,
            server.put_port,
            Message(command=1, capability=cap),  # STD_INFO
            rng=RandomSource(seed=10),
        )
        request = intruder.captured_requests()[0]
        reply_private, sent = intruder.steal_capability(request)
        assert sent
        frame = intruder.nic.poll(reply_private)
        assert frame is not None and frame.message.status == 0


class TestReplay:
    def test_replayed_request_reaches_server(self, world):
        # Replay of a request through the intruder's F-box preserves the
        # destination and capability (the operation repeats!) ...
        net, _, client_nic, server, intruder = world
        intruder.start_capture()
        trans(client_nic, server.put_port, Message(command=USER_BASE),
              rng=RandomSource(seed=11))
        before = server.request_counts[USER_BASE]
        intruder.replay(intruder.captured_requests()[0])
        assert server.request_counts[USER_BASE] == before + 1

    def test_replayed_reply_port_corrupted(self, world):
        # ... but the reply port is double-one-wayed, so the replayer
        # cannot see the answer.
        net, _, client_nic, server, intruder = world
        intruder.start_capture()
        trans(client_nic, server.put_port, Message(command=USER_BASE),
              rng=RandomSource(seed=12))
        request = intruder.captured_requests()[0]
        on_wire_reply = request.message.reply
        replayed = intruder.nic.fbox.transform_egress(request.message)
        assert replayed.reply != on_wire_reply
