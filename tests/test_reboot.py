"""Server-level crash/reboot tests: the durability contract end to end.

A durable :class:`DirectoryServer` is killed and a new incarnation is
booted on the same disk.  The table comes back, old capabilities pass
§2.2 check validation (unless their stripe's log tail was suspect, in
which case they are *cleanly* rejected), and — the PR 8 satellite — a
retried non-idempotent request that straddles the restart must not
double-execute and must not replay a stale pre-crash reply.
"""

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.disk.diskfaults import DiskFaultPlan
from repro.disk.virtualdisk import VirtualDisk
from repro.disk.wal import DurableStore
from repro.errors import AmoebaError, InvalidCapability
from repro.ipc.rpc import AsyncTrans, RetryPolicy
from repro.net.faults import FaultPlan, FaultSpec
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.servers.directory import (
    DIR_ENTER,
    Directory,
    DirectoryClient,
    DirectoryCodec,
    DirectoryServer,
)


def durable_world(plan_kwargs=None):
    plan = FaultPlan(seed=0, **(plan_kwargs or {}))
    net = SimNetwork(faults=plan)
    disk = VirtualDisk(8192)
    server = DirectoryServer.durable(
        Nic(net), disk, rng=RandomSource(seed=1)
    ).start()
    client_nic = Nic(net)
    return plan, net, disk, server, client_nic


def respawn_on(net, disk, old_server, seed=99):
    """A new server incarnation on the same disk and get-port."""
    incarnation = DirectoryServer(
        Nic(net),
        get_port=old_server.get_port,
        rng=RandomSource(seed=seed),
        store=DurableStore(disk, codec=DirectoryCodec()),
        dedup=True,
    )
    report = incarnation.reboot()
    incarnation.start()
    return incarnation, report


class TestRebootProtocol:
    def test_start_refuses_unrecovered_store(self):
        _, net, disk, server, _ = durable_world()
        server.create_root()
        server.stop()
        cold = DirectoryServer(
            Nic(net),
            get_port=server.get_port,
            rng=RandomSource(seed=2),
            store=DurableStore(disk, codec=DirectoryCodec()),
        )
        with pytest.raises(AmoebaError, match="reboot"):
            cold.start()
        cold.reboot()
        cold.start()  # now legal

    def test_reboot_requires_empty_table(self):
        _, net, disk, server, _ = durable_world()
        server.create_root()
        server.stop()
        cold = DirectoryServer(
            Nic(net),
            get_port=server.get_port,
            rng=RandomSource(seed=2),
            store=DurableStore(disk, codec=DirectoryCodec()),
        )
        cold.table.create(Directory())
        with pytest.raises(AmoebaError):
            cold.reboot()

    def test_reboot_without_store_refused(self):
        _, net, _, server, _ = durable_world()
        plain = DirectoryServer(Nic(net), rng=RandomSource(seed=3))
        with pytest.raises(AmoebaError):
            plain.reboot()

    def test_state_survives_kill_and_reboot(self):
        _, net, disk, server, client_nic = durable_world()
        client = DirectoryClient(
            client_nic, server.put_port, rng=RandomSource(seed=4),
            expect_signature=server.signature_image,
        )
        root = server.create_root()
        sub = client.create_directory(root, "projects")
        client.enter(root, "also", sub)
        server.stop()

        incarnation, report = respawn_on(net, disk, server)
        assert report.entries_restored == 2
        assert not report.suspect_stripes
        client2 = DirectoryClient(
            client_nic, incarnation.put_port, rng=RandomSource(seed=5),
            expect_signature=incarnation.signature_image,
        )
        # Capabilities minted by the dead incarnation still validate.
        assert sorted(client2.list(root)) == ["also", "projects"]
        assert client2.lookup(root, "also") == sub
        client2.enter(sub, "post-reboot", root)
        assert client2.list(sub) == ["post-reboot"]

    def test_checkpoint_then_reboot(self):
        _, net, disk, server, client_nic = durable_world()
        root = server.create_root()
        client = DirectoryClient(
            client_nic, server.put_port, rng=RandomSource(seed=4),
            expect_signature=server.signature_image,
        )
        for i in range(10):
            client.create_directory(root, "pre-%d" % i)
        server.checkpoint()
        for i in range(3):
            client.create_directory(root, "post-%d" % i)
        server.stop()

        incarnation, report = respawn_on(net, disk, server)
        assert report.entries_restored == 14  # root + 10 + 3
        client2 = DirectoryClient(
            client_nic, incarnation.put_port, rng=RandomSource(seed=5),
            expect_signature=incarnation.signature_image,
        )
        assert len(client2.list(root)) == 13


class TestDedupAcrossReboot:
    """The straddle: request executed, reply lost, server dies, client
    retries against the next incarnation."""

    def _straddle(self, disk_faults=None, fillers=0):
        plan, net, disk, server, client_nic = durable_world()
        root = server.create_root()
        for i in range(fillers):
            server.table.create(Directory())
        target = server.table.create(Directory())

        # Drop the server->client reply: the request executes and the
        # durable commit lands, but the client never hears back.
        plan.links[(server.node.address, client_nic.address)] = FaultSpec(
            drop=1.0
        )
        at = AsyncTrans(
            client_nic,
            server.put_port,
            Message(
                command=DIR_ENTER, capability=root,
                data=b"paid", extra_caps=(target,),
            ),
            rng=RandomSource(seed=3),
            retry=RetryPolicy(attempts=6, seed=0),
        )
        assert list(server.table.lookup(root)[0].data.entries) == ["paid"]
        return plan, net, disk, server, client_nic, root, at

    def test_retry_replays_durable_reply_not_reexecutes(self):
        plan, net, disk, server, client_nic, root, at = self._straddle()
        server.stop()
        del plan.links[(server.node.address, client_nic.address)]

        incarnation, report = respawn_on(net, disk, server)
        assert len(report.commits) == 1

        # The replayed reply is re-stamped with the new incarnation's
        # signature, so the client's transport check still passes.
        at.expect_signature = incarnation.signature_image
        reply = at.result(timeout=2.0)
        assert reply.status == 0

        stats = incarnation.reply_cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 0
        # Exactly one entry: the retry did NOT double-execute.
        entries = incarnation.table.lookup(root)[0].data.entries
        assert list(entries) == ["paid"]

    def test_recovered_state_serves_new_clients(self):
        plan, net, disk, server, client_nic, root, at = self._straddle()
        server.stop()
        del plan.links[(server.node.address, client_nic.address)]
        at.cancel()

        incarnation, _ = respawn_on(net, disk, server)
        client = DirectoryClient(
            client_nic, incarnation.put_port, rng=RandomSource(seed=5),
            expect_signature=incarnation.signature_image,
        )
        assert client.list(root) == ["paid"]

    def test_suspect_stripe_rejects_stale_retry_cleanly(self):
        """A torn log tail in the root's stripe: the pre-crash commit is
        *dropped* (never replay a reply whose stripe is suspect) and the
        root capability's secret is regenerated — the retry is rejected
        with InvalidCapability instead of double-executing or replaying
        a possibly-inconsistent cached reply."""
        # Fillers push the next creates back into the root's stripe
        # (object numbers are allocated round-robin over 16 stripes).
        plan, net, disk, server, client_nic, root, at = self._straddle(
            fillers=14
        )
        assert server.table.shard_of(root.object) == 0

        # Tear the next log write in stripe 0: a directory whose encoded
        # form spans blocks forces a mid-record roll write.
        disk.faults = DiskFaultPlan(seed=5, torn_at={0})
        big = Directory()
        big.entries["n" * 600] = root
        victim = server.table.create(big)
        assert server.table.shard_of(victim.object) == 0
        disk.faults = None

        server.stop()
        del plan.links[(server.node.address, client_nic.address)]

        incarnation, report = respawn_on(net, disk, server)
        assert report.suspect_stripes == [0]
        assert not report.commits      # suspect stripe commits dropped

        at.expect_signature = incarnation.signature_image
        reply = at.result(timeout=2.0)
        # Clean rejection: the regenerated secret fails §2.2 validation.
        assert reply.status == InvalidCapability.code

        # The pre-crash mutation itself was logged before the tear and
        # survived — still exactly one entry, no double-execution.
        fresh_root = incarnation.table.mint_for(root.object)
        entries = incarnation.table.lookup(fresh_root)[0].data.entries
        assert list(entries) == ["paid"]

        # A re-obtained capability (client "re-locates") works normally.
        client = DirectoryClient(
            client_nic, incarnation.put_port, rng=RandomSource(seed=6),
            expect_signature=incarnation.signature_image,
        )
        assert client.list(fresh_root) == ["paid"]
