"""Tests for the one-way function F (ports, signatures, check fields)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.oneway import PORT_BITS, OneWayFunction, default_oneway

port_values = st.integers(min_value=0, max_value=(1 << PORT_BITS) - 1)


class TestBasics:
    def test_deterministic(self):
        f = OneWayFunction()
        assert f(12345) == f(12345)

    def test_output_width(self):
        f = OneWayFunction(width_bits=48)
        for value in (0, 1, (1 << 48) - 1):
            assert 0 <= f(value) < (1 << 48)

    def test_domain_checked(self):
        f = OneWayFunction(width_bits=8)
        with pytest.raises(ValueError):
            f(256)
        with pytest.raises(ValueError):
            f(-1)

    def test_default_is_shared_instance(self):
        assert default_oneway() is default_oneway()

    def test_bad_width(self):
        with pytest.raises(ValueError):
            OneWayFunction(width_bits=0)
        with pytest.raises(ValueError):
            OneWayFunction(width_bits=257)


class TestDomainSeparation:
    def test_different_tags_differ(self):
        # The port F and the rights-scheme F must never collide: a check
        # field should not be usable as a put-port.
        f_ports = OneWayFunction(tag=b"amoeba/F")
        f_rights = OneWayFunction(tag=b"amoeba/rights")
        collisions = sum(1 for v in range(200) if f_ports(v) == f_rights(v))
        assert collisions == 0

    def test_string_tags_accepted(self):
        assert OneWayFunction(tag="text")(1) == OneWayFunction(tag=b"text")(1)


class TestOneWayness:
    """F can't literally be proven one-way in a test, but the cheap
    necessary conditions can: no fixed points in practice, no obvious
    structure, full use of the output space."""

    @given(port_values)
    def test_no_trivial_fixed_points(self, value):
        f = default_oneway()
        # A fixed point would make GET(P) listen on P itself, breaking
        # the impersonation defence for that port.  One exists with
        # probability ~2**-48 per input; hypothesis will never find one
        # unless F is structurally broken.
        assert f(value) != value

    def test_iterating_f_walks_the_space(self):
        f = default_oneway()
        seen = set()
        value = 1
        for _ in range(100):
            value = f(value)
            seen.add(value)
        assert len(seen) == 100

    def test_avalanche(self):
        f = default_oneway()
        base = f(0x123456789ABC)
        flipped = f(0x123456789ABD)  # one input bit apart
        differing = bin(base ^ flipped).count("1")
        assert differing >= 10  # ~24 expected of 48

    @given(port_values, port_values)
    def test_injective_in_practice(self, a, b):
        f = default_oneway()
        if a != b:
            assert f(a) != f(b)


class TestApplyBytes:
    def test_width_and_determinism(self):
        f = OneWayFunction()
        out = f.apply_bytes(b"boot announcement")
        assert len(out) == 6
        assert out == f.apply_bytes(b"boot announcement")

    def test_distinct_from_int_domain(self):
        # The bytes interface is domain-separated from the int interface.
        f = OneWayFunction(width_bits=48)
        as_int = f(0)
        as_bytes = int.from_bytes(f.apply_bytes(b"\x00" * 6), "big")
        assert as_int != as_bytes

    def test_string_input(self):
        f = OneWayFunction()
        assert f.apply_bytes("text") == f.apply_bytes(b"text")
