"""Tests for the real UDP transport (laptop-scale 'hashlib and sockets')."""

import time

import pytest

from repro.core.ports import Port, PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.ipc.rpc import trans
from repro.net.message import Message
from repro.net.sockets import SocketNode


@pytest.fixture
def nodes():
    created = []

    def make():
        node = SocketNode()
        created.append(node)
        return node

    yield make
    for node in created:
        node.close()


pytestmark = pytest.mark.integration


class TestSocketTransport:
    def test_listen_put_poll(self, nodes):
        server, client = nodes(), nodes()
        g = PrivatePort(42)
        wire = server.listen(g)
        client.put(Message(dest=wire, data=b"over real UDP"),
                   dst_machine=server.address)
        frame = server.poll(g, timeout=2.0)
        assert frame is not None
        assert frame.message.data == b"over real UDP"
        assert frame.src == client.address

    def test_fbox_applied_on_egress(self, nodes):
        server, client = nodes(), nodes()
        g = PrivatePort(42)
        wire = server.listen(g)
        reply_secret = PrivatePort(777)
        client.put(
            Message(dest=wire, reply=Port(reply_secret.secret)),
            dst_machine=server.address,
        )
        frame = server.poll(g, timeout=2.0)
        assert frame.message.reply == reply_secret.public

    def test_rpc_over_sockets(self, nodes):
        server, client = nodes(), nodes()
        g = PrivatePort(9)

        def handler(frame):
            server.put(
                frame.message.reply_to(data=frame.message.data.upper()),
                dst_machine=frame.src,
            )

        wire = server.serve(g, handler)
        reply = trans(
            client,
            wire,
            Message(data=b"shout"),
            rng=RandomSource(seed=1),
            dst_machine=server.address,
            timeout=3.0,
        )
        assert reply.data == b"SHOUT"

    def test_port_addressed_broadcast_to_peers(self, nodes):
        server, client = nodes(), nodes()
        client.connect(server.address)
        g = PrivatePort(5)
        wire = server.listen(g)
        client.put(Message(dest=wire, data=b"found you"))
        frame = server.poll(g, timeout=2.0)
        assert frame is not None

    def test_garbage_datagrams_dropped(self, nodes):
        import socket

        server = nodes()
        g = PrivatePort(5)
        server.listen(g)
        raw_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        raw_sock.sendto(b"not an amoeba message", server.address)
        raw_sock.close()
        assert server.poll(g, timeout=0.3) is None

    def test_unadmitted_ports_dropped(self, nodes):
        server, client = nodes(), nodes()
        client.put(Message(dest=Port(12345), data=b"x"),
                   dst_machine=server.address)
        g = PrivatePort(5)
        server.listen(g)
        assert server.poll(g, timeout=0.2) is None

    def test_oversized_message_refused(self, nodes):
        client = nodes()
        with pytest.raises(ValueError):
            client.put(Message(data=b"x" * 70000), dst_machine=("127.0.0.1", 1))

    def test_context_manager(self):
        with SocketNode() as node:
            assert node.address[1] > 0

    def test_put_many_batch(self, nodes):
        server, client = nodes(), nodes()
        g = PrivatePort(6)
        wire = server.listen(g)
        batch = [Message(dest=wire, data=b"b%d" % i) for i in range(5)]
        assert client.put_many(batch, dst_machine=server.address) == 5
        got = sorted(
            server.poll(g, timeout=2.0).message.data for _ in range(5)
        )
        assert got == [b"b%d" % i for i in range(5)]

    def test_peer_snapshot_updates_on_connect(self, nodes):
        server, client = nodes(), nodes()
        assert client._peer_snapshot == ()
        client.connect(server.address)
        client.connect(server.address)  # deduplicated
        assert client._peer_snapshot == (server.address,)

    def test_admission_snapshot_tracks_listen_unlisten(self, nodes):
        server = nodes()
        g = PrivatePort(6)
        wire = server.listen(g)
        assert wire in server._admission
        server.unlisten(g)
        assert wire not in server._admission

    def test_buffered_egress_rpc(self):
        with SocketNode(buffer_egress=True) as server, \
                SocketNode(buffer_egress=True) as client:
            g = PrivatePort(9)

            def handler(frame):
                server.put(frame.message.reply_to(data=frame.message.data[::-1]),
                           dst_machine=frame.src)

            wire = server.serve(g, handler)
            reply = trans(client, wire, Message(data=b"abc"),
                          rng=RandomSource(seed=3),
                          dst_machine=server.address, timeout=3.0)
            assert reply.data == b"cba"

    def test_buffered_egress_flushes_at_watermark(self):
        with SocketNode(buffer_egress=True, flush_every=3) as sender, \
                SocketNode() as receiver:
            g = PrivatePort(4)
            wire = receiver.listen(g)
            for i in range(3):
                sender.put(Message(dest=wire, data=b"w%d" % i),
                           dst_machine=receiver.address)
            # The third put crossed the watermark: all three are on the
            # wire without anyone polling or pumping the sender.
            assert len(sender._egress) == 0
            got = sorted(
                receiver.poll(g, timeout=2.0).message.data for _ in range(3)
            )
            assert got == [b"w0", b"w1", b"w2"]

    def test_recv_batch_round_trip(self, nodes):
        """A burst larger than one recv batch is drained, dispatched, and
        answered over the real loopback wire."""
        server, client = nodes(), nodes()
        assert server.recv_batch > 1  # batching is on by default
        g = PrivatePort(9)

        def handler(frame):
            server.put(frame.message.reply_to(data=frame.message.data[::-1]),
                       dst_machine=frame.src)

        wire = server.serve(g, handler)
        n = server.recv_batch + 18  # spans at least two ingress batches
        reply_secret = PrivatePort(777)
        reply_wire = client.listen(reply_secret)
        client.put_many(
            [Message(dest=wire, reply=Port(reply_secret.secret),
                     data=b"m%03d" % i) for i in range(n)],
            dst_machine=server.address,
        )
        got = set()
        for _ in range(n):
            frame = client.poll_wire(reply_wire, timeout=5.0)
            assert frame is not None
            got.add(frame.message.data)
        assert got == {(b"m%03d" % i)[::-1] for i in range(n)}

    def test_put_owned_bulk_aggregates(self, nodes):
        """A bulk burst travels in aggregate carriers yet every inner
        frame is admitted individually, in order."""
        server, client = nodes(), nodes()
        g = PrivatePort(6)
        wire = server.listen(g)
        batch = [Message(dest=wire, data=b"agg%d" % i) for i in range(10)]
        assert client.put_owned_bulk(batch, dst_machine=server.address) == 10
        got = [server.poll(g, timeout=5.0).message.data for _ in range(10)]
        assert got == [b"agg%d" % i for i in range(10)]

    def test_bulk_with_near_cap_frame_not_lost(self, nodes):
        """A frame near the datagram cap cannot ride a carrier (carrier
        overhead would push it past what the receiver reads); it must go
        out plain, in order, not silently truncated."""
        server, client = nodes(), nodes()
        g = PrivatePort(8)
        wire = server.listen(g)
        big = Message(dest=wire, data=b"B" * 59000)
        batch = [Message(dest=wire, data=b"first"), big,
                 Message(dest=wire, data=b"last")]
        assert client.put_owned_bulk(batch, dst_machine=server.address) == 3
        got = [server.poll(g, timeout=5.0).message.data for _ in range(3)]
        assert got == [b"first", b"B" * 59000, b"last"]

    def test_truncated_aggregate_carrier_dropped(self, nodes):
        import socket

        from repro.net.sockets import _AGG_MAGIC

        server = nodes()
        g = PrivatePort(5)
        wire = server.listen(g)
        inner = Message(dest=wire, data=b"whole").pack()
        # One whole frame, then a length prefix promising more bytes than
        # the datagram carries: the valid prefix is delivered, the
        # truncated tail is dropped like any other garbage.
        carrier = (
            _AGG_MAGIC
            + len(inner).to_bytes(4, "big") + inner
            + (1000).to_bytes(4, "big") + b"short"
        )
        raw_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        raw_sock.sendto(carrier, server.address)
        raw_sock.close()
        frame = server.poll(g, timeout=2.0)
        assert frame is not None and frame.message.data == b"whole"
        assert server.poll(g, timeout=0.2) is None

    def test_listen_fresh_and_unlisten_wire_many(self, nodes):
        node = nodes()
        secrets = [Port(100 + i) for i in range(8)]
        wires = node.listen_fresh(secrets)
        assert wires is not None and len(wires) == 8
        for wire in wires:
            assert wire in node._admission
        # Re-registering the same fresh ports must refuse (collision).
        assert node.listen_fresh(secrets) is None
        node.unlisten_wire_many(wires)
        for wire in wires:
            assert wire not in node._admission

    def test_trans_many_pipelined_over_sockets(self, nodes):
        """The socket fused lane: replies in request order over real UDP."""
        from repro.ipc.rpc import trans_many

        server, client = nodes(), nodes()
        g = PrivatePort(9)

        def handler(frame):
            server.put(frame.message.reply_to(data=frame.message.data.upper()),
                       dst_machine=frame.src)

        wire = server.serve(g, handler)
        requests = [Message(data=b"req-%02d" % i) for i in range(16)]
        replies = trans_many(client, wire, requests, rng=RandomSource(seed=4),
                             dst_machine=server.address, timeout=5.0)
        assert [r.data for r in replies] == [b"REQ-%02d" % i for i in range(16)]
        # No admission residue: every reply GET was withdrawn.
        assert client._queues == {}

    def test_serve_batch_coalesces_bursts(self, nodes):
        """serve_batch delivers each ingress burst as one handler call."""
        server, client = nodes(), nodes()
        g = PrivatePort(7)
        batches = []
        wire = server.serve_batch(g, lambda frames: batches.append(len(frames)))
        n = 12
        client.put_owned_bulk(
            [Message(dest=wire, data=b"b%d" % i) for i in range(n)],
            dst_machine=server.address,
        )
        deadline = time.monotonic() + 5.0
        while sum(batches) < n:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert sum(batches) == n
        # The aggregated burst arrived in far fewer handler calls than
        # frames (one, unless the pump raced the carrier boundary).
        assert len(batches) < n

    def test_object_server_over_sockets(self, nodes):
        from repro.ipc.client import ServiceClient
        from repro.ipc.server import ObjectServer, command
        from repro.ipc.stdops import USER_BASE

        class Upper(ObjectServer):
            service_name = "upper"

            @command(USER_BASE)
            def _up(self, ctx):
                return ctx.ok(data=ctx.request.data.upper())

        server_node, client_node = nodes(), nodes()
        server = Upper(server_node, rng=RandomSource(seed=1)).start()
        client_node.connect(server_node.address)
        client = ServiceClient(
            client_node,
            server.put_port,
            rng=RandomSource(seed=2),
            expect_signature=server.signature_image,
            timeout=3.0,
        )
        assert client.call(USER_BASE, data=b"udp works").data == b"UDP WORKS"
