"""Tests for the real UDP transport (laptop-scale 'hashlib and sockets')."""

import pytest

from repro.core.ports import Port, PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.ipc.rpc import trans
from repro.net.message import Message
from repro.net.sockets import SocketNode


@pytest.fixture
def nodes():
    created = []

    def make():
        node = SocketNode()
        created.append(node)
        return node

    yield make
    for node in created:
        node.close()


pytestmark = pytest.mark.integration


class TestSocketTransport:
    def test_listen_put_poll(self, nodes):
        server, client = nodes(), nodes()
        g = PrivatePort(42)
        wire = server.listen(g)
        client.put(Message(dest=wire, data=b"over real UDP"),
                   dst_machine=server.address)
        frame = server.poll(g, timeout=2.0)
        assert frame is not None
        assert frame.message.data == b"over real UDP"
        assert frame.src == client.address

    def test_fbox_applied_on_egress(self, nodes):
        server, client = nodes(), nodes()
        g = PrivatePort(42)
        wire = server.listen(g)
        reply_secret = PrivatePort(777)
        client.put(
            Message(dest=wire, reply=Port(reply_secret.secret)),
            dst_machine=server.address,
        )
        frame = server.poll(g, timeout=2.0)
        assert frame.message.reply == reply_secret.public

    def test_rpc_over_sockets(self, nodes):
        server, client = nodes(), nodes()
        g = PrivatePort(9)

        def handler(frame):
            server.put(
                frame.message.reply_to(data=frame.message.data.upper()),
                dst_machine=frame.src,
            )

        wire = server.serve(g, handler)
        reply = trans(
            client,
            wire,
            Message(data=b"shout"),
            rng=RandomSource(seed=1),
            dst_machine=server.address,
            timeout=3.0,
        )
        assert reply.data == b"SHOUT"

    def test_port_addressed_broadcast_to_peers(self, nodes):
        server, client = nodes(), nodes()
        client.connect(server.address)
        g = PrivatePort(5)
        wire = server.listen(g)
        client.put(Message(dest=wire, data=b"found you"))
        frame = server.poll(g, timeout=2.0)
        assert frame is not None

    def test_garbage_datagrams_dropped(self, nodes):
        import socket

        server = nodes()
        g = PrivatePort(5)
        server.listen(g)
        raw_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        raw_sock.sendto(b"not an amoeba message", server.address)
        raw_sock.close()
        assert server.poll(g, timeout=0.3) is None

    def test_unadmitted_ports_dropped(self, nodes):
        server, client = nodes(), nodes()
        client.put(Message(dest=Port(12345), data=b"x"),
                   dst_machine=server.address)
        g = PrivatePort(5)
        server.listen(g)
        assert server.poll(g, timeout=0.2) is None

    def test_oversized_message_refused(self, nodes):
        client = nodes()
        with pytest.raises(ValueError):
            client.put(Message(data=b"x" * 70000), dst_machine=("127.0.0.1", 1))

    def test_context_manager(self):
        with SocketNode() as node:
            assert node.address[1] > 0

    def test_put_many_batch(self, nodes):
        server, client = nodes(), nodes()
        g = PrivatePort(6)
        wire = server.listen(g)
        batch = [Message(dest=wire, data=b"b%d" % i) for i in range(5)]
        assert client.put_many(batch, dst_machine=server.address) == 5
        got = sorted(
            server.poll(g, timeout=2.0).message.data for _ in range(5)
        )
        assert got == [b"b%d" % i for i in range(5)]

    def test_peer_snapshot_updates_on_connect(self, nodes):
        server, client = nodes(), nodes()
        assert client._peer_snapshot == ()
        client.connect(server.address)
        client.connect(server.address)  # deduplicated
        assert client._peer_snapshot == (server.address,)

    def test_admission_snapshot_tracks_listen_unlisten(self, nodes):
        server = nodes()
        g = PrivatePort(6)
        wire = server.listen(g)
        assert wire in server._admission
        server.unlisten(g)
        assert wire not in server._admission

    def test_buffered_egress_rpc(self):
        with SocketNode(buffer_egress=True) as server, \
                SocketNode(buffer_egress=True) as client:
            g = PrivatePort(9)

            def handler(frame):
                server.put(frame.message.reply_to(data=frame.message.data[::-1]),
                           dst_machine=frame.src)

            wire = server.serve(g, handler)
            reply = trans(client, wire, Message(data=b"abc"),
                          rng=RandomSource(seed=3),
                          dst_machine=server.address, timeout=3.0)
            assert reply.data == b"cba"

    def test_buffered_egress_flushes_at_watermark(self):
        with SocketNode(buffer_egress=True, flush_every=3) as sender, \
                SocketNode() as receiver:
            g = PrivatePort(4)
            wire = receiver.listen(g)
            for i in range(3):
                sender.put(Message(dest=wire, data=b"w%d" % i),
                           dst_machine=receiver.address)
            # The third put crossed the watermark: all three are on the
            # wire without anyone polling or pumping the sender.
            assert len(sender._egress) == 0
            got = sorted(
                receiver.poll(g, timeout=2.0).message.data for _ in range(3)
            )
            assert got == [b"w0", b"w1", b"w2"]

    def test_object_server_over_sockets(self, nodes):
        from repro.ipc.client import ServiceClient
        from repro.ipc.server import ObjectServer, command
        from repro.ipc.stdops import USER_BASE

        class Upper(ObjectServer):
            service_name = "upper"

            @command(USER_BASE)
            def _up(self, ctx):
                return ctx.ok(data=ctx.request.data.upper())

        server_node, client_node = nodes(), nodes()
        server = Upper(server_node, rng=RandomSource(seed=1)).start()
        client_node.connect(server_node.address)
        client = ServiceClient(
            client_node,
            server.put_port,
            rng=RandomSource(seed=2),
            expect_signature=server.signature_image,
            timeout=3.0,
        )
        assert client.call(USER_BASE, data=b"udp works").data == b"UDP WORKS"
