"""Tests for mark-and-age garbage collection across servers."""

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.errors import NoSuchObject
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.servers.directory import DirectoryClient, DirectoryServer
from repro.servers.flatfile import FlatFileClient, FlatFileServer
from repro.servers.sweeper import ReachabilitySweeper


@pytest.fixture
def world():
    net = SimNetwork()
    dirs = DirectoryServer(Nic(net), rng=RandomSource(seed=1)).start()
    files = FlatFileServer(Nic(net), rng=RandomSource(seed=2)).start()
    # Three sweeps of grace for every object.
    dirs.table.default_lifetime = 3
    files.table.default_lifetime = 3
    client_nic = Nic(net)
    dclient = DirectoryClient(client_nic, dirs.put_port, rng=RandomSource(seed=3))
    fclient = FlatFileClient(client_nic, files.put_port, rng=RandomSource(seed=4))
    root = dirs.create_root()
    sweeper = ReachabilitySweeper(Nic(net), [root], rng=RandomSource(seed=5))
    return net, dirs, files, dclient, fclient, root, sweeper


class TestMark:
    def test_marks_whole_tree(self, world):
        _, dirs, files, dclient, fclient, root, sweeper = world
        sub = dclient.create_directory(root, "sub")
        f1 = fclient.create(b"one")
        f2 = fclient.create(b"two")
        dclient.enter(root, "f1", f1)
        dclient.enter(sub, "f2", f2)
        # root + sub + f1 + f2
        assert sweeper.mark() == 4

    def test_shared_objects_marked_once(self, world):
        _, _, files, dclient, fclient, root, sweeper = world
        f = fclient.create(b"shared")
        dclient.enter(root, "name-a", f)
        dclient.enter(root, "name-b", fclient.restrict(f, 0x01))
        assert sweeper.mark() == 2  # root + the one file

    def test_cycles_terminate(self, world):
        _, _, _, dclient, _, root, sweeper = world
        sub = dclient.create_directory(root, "sub")
        dclient.enter(sub, "loop", root)  # sub -> root cycle
        assert sweeper.mark() == 2

    def test_stale_entries_skipped(self, world):
        _, _, _, dclient, fclient, root, sweeper = world
        f = fclient.create(b"doomed")
        dclient.enter(root, "stale", f)
        fclient.destroy(f)
        assert sweeper.mark() == 1  # just the root
        assert sweeper.unreachable_errors >= 1


class TestCollect:
    def test_reachable_survive_orphans_die(self, world):
        _, dirs, files, dclient, fclient, root, sweeper = world
        named = fclient.create(b"in the directory")
        orphan = fclient.create(b"leaked: capability lost")
        dclient.enter(root, "named", named)

        for _ in range(4):  # more cycles than the 3-sweep lifetime
            touched, _ = sweeper.collect([dirs, files])
            assert touched >= 2

        assert fclient.read(named, 0, 16) == b"in the directory"
        with pytest.raises(NoSuchObject):
            fclient.read(orphan, 0, 1)

    def test_collect_counts(self, world):
        _, dirs, files, dclient, fclient, root, sweeper = world
        dclient.enter(root, "kept", fclient.create(b"kept"))
        fclient.create(b"orphan")
        expired_total = 0
        for _ in range(4):
            touched, expired = sweeper.collect([dirs, files])
            expired_total += expired
        assert expired_total == 1  # exactly the orphan

    def test_unlinked_objects_eventually_collected(self, world):
        """Removing the directory entry (without destroy) leaks the
        object; the sweeper is what reclaims it."""
        _, dirs, files, dclient, fclient, root, sweeper = world
        f = fclient.create(b"unlink me")
        dclient.enter(root, "f", f)
        sweeper.collect([dirs, files])
        dclient.remove(root, "f")
        for _ in range(4):
            sweeper.collect([dirs, files])
        with pytest.raises(NoSuchObject):
            fclient.read(f, 0, 1)

    def test_deep_tree_survives(self, world):
        _, dirs, files, dclient, fclient, root, sweeper = world
        current = root
        leaves = []
        for i in range(6):
            current = dclient.create_directory(current, "d%d" % i)
            leaf = fclient.create(b"leaf %d" % i)
            dclient.enter(current, "leaf", leaf)
            leaves.append(leaf)
        for _ in range(5):
            sweeper.collect([dirs, files])
        for i, leaf in enumerate(leaves):
            assert fclient.read(leaf, 0, 6) == b"leaf %d" % i
