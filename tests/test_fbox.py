"""Tests for the F-box transformation (Fig. 1)."""

from repro.core.ports import NULL_PORT, Port, PrivatePort
from repro.crypto.oneway import default_oneway
from repro.net.fbox import FBox
from repro.net.message import Message


class TestOneWay:
    def test_applies_f(self):
        fbox = FBox()
        assert fbox.one_way(Port(77)) == Port(default_oneway()(77))

    def test_null_stays_null(self):
        assert FBox().one_way(NULL_PORT) == NULL_PORT


class TestEgress:
    def test_destination_untouched(self):
        # "The F-box on the sender's side does not perform any
        # transformation on the P field of the outgoing message."
        fbox = FBox()
        message = Message(dest=Port(123), reply=Port(456), signature=Port(789))
        out = fbox.transform_egress(message)
        assert out.dest == Port(123)

    def test_reply_and_signature_one_wayed(self):
        fbox = FBox()
        message = Message(dest=Port(1), reply=Port(456), signature=Port(789))
        out = fbox.transform_egress(message)
        assert out.reply == fbox.one_way(Port(456))
        assert out.signature == fbox.one_way(Port(789))
        assert out.reply != Port(456)

    def test_null_fields_stay_null(self):
        out = FBox().transform_egress(Message(dest=Port(1)))
        assert out.reply == NULL_PORT
        assert out.signature == NULL_PORT

    def test_original_not_mutated(self):
        message = Message(reply=Port(456))
        FBox().transform_egress(message)
        assert message.reply == Port(456)

    def test_payload_untouched(self):
        message = Message(dest=Port(1), data=b"payload", command=9, offset=3)
        out = FBox().transform_egress(message)
        assert (out.data, out.command, out.offset) == (b"payload", 9, 3)


class TestListenPort:
    def test_server_with_secret_listens_on_put_port(self):
        # GET(G) must listen on exactly P = F(G): that is how clients
        # reach the server.
        fbox = FBox()
        g = PrivatePort(424242)
        assert fbox.listen_port(Port(g.secret)) == g.public

    def test_intruder_with_put_port_listens_elsewhere(self):
        # GET(P) listens on the useless F(P) — the impersonation defence.
        fbox = FBox()
        g = PrivatePort(424242)
        put_port = g.public
        assert fbox.listen_port(put_port) != put_port

    def test_double_application_differs(self):
        fbox = FBox()
        p = Port(5)
        assert fbox.one_way(fbox.one_way(p)) != fbox.one_way(p)
