"""Tests for the fault-injection plane (:mod:`repro.net.faults`).

The contracts under test:

* a :class:`FaultPlan` is deterministic — same seed over the same
  traffic, same faults, on every delivery discipline including the DES
  virtual-clock wire;
* drop is admitted-then-lost (the sender cannot tell), duplicate is
  delivered twice, reorder is hold-back-and-release-behind-the-next-
  frame, per-link overrides beat the defaults;
* a corruption aimed at the capability (``corrupt_field="capability"``)
  NEVER passes validation — any single-bit flip in the validated
  (object, rights, check) region either fails to parse or is rejected
  by the object table, fuzzed over many seeded plans;
* the datagram seam (:meth:`FaultPlan.apply_datagram` /
  :func:`faulty_sendto`) shares the same decision semantics.
"""

import pytest

from repro.core.ports import PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.errors import RPCTimeout
from repro.ipc.rpc import RetryPolicy, trans
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import STD_INFO, USER_BASE
from repro.net.faults import FaultPlan, FaultSpec, LossyFBox, faulty_sendto
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.net.sched import LatencyModel, VirtualClock


class EchoServer(ObjectServer):
    service_name = "fault test echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


def sync_world(plan, seed=1):
    net = SimNetwork(faults=plan)
    server = EchoServer(Nic(net), rng=RandomSource(seed=seed)).start()
    client = Nic(net)
    return net, server, client


class TestSpecValidation:
    def test_probabilities_must_be_in_unit_interval(self):
        with pytest.raises(ValueError):
            FaultSpec(drop=1.5)
        with pytest.raises(ValueError):
            FaultSpec(reorder=-0.1)

    def test_silent_spec_skips_rng(self):
        assert FaultSpec().silent
        assert not FaultSpec(drop=0.01).silent

    def test_plan_rejects_bad_corrupt_field(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_field="payload")
        with pytest.raises(ValueError):
            FaultPlan(delay_ms=-1)

    def test_lossy_fbox_name_is_dead(self):
        with pytest.raises(TypeError):
            LossyFBox()


class TestDropSemantics:
    def test_drop_all_loses_every_request(self):
        plan = FaultPlan(seed=1, drop=1.0)
        _, server, client = sync_world(plan)
        with pytest.raises(RPCTimeout):
            trans(client, server.put_port, Message(command=USER_BASE),
                  rng=RandomSource(seed=3), timeout=0.05)
        assert server.request_counts[USER_BASE] == 0
        assert plan.injected_drops >= 1

    def test_drop_is_admitted_then_lost(self):
        # The sender's put() still reports admission: loss is invisible
        # at send time, exactly like queue overflow.
        plan = FaultPlan(seed=1, drop=1.0)
        net, server, client = sync_world(plan)
        accepted = client.put(Message(command=USER_BASE,
                                      dest=server.put_port))
        assert accepted
        assert server.request_counts[USER_BASE] == 0

    def test_lossless_plan_changes_nothing(self):
        plan = FaultPlan(seed=1)
        _, server, client = sync_world(plan)
        reply = trans(client, server.put_port,
                      Message(command=USER_BASE, data=b"x"),
                      rng=RandomSource(seed=3))
        assert reply.data == b"x"
        assert plan.frames_seen >= 2  # request and reply both inspected


class TestDuplicateSemantics:
    def test_duplicate_executes_handler_twice_without_dedup(self):
        plan = FaultPlan(seed=1, duplicate=1.0)
        _, server, client = sync_world(plan)
        reply = trans(client, server.put_port,
                      Message(command=USER_BASE, data=b"dup"),
                      rng=RandomSource(seed=3))
        assert reply.data == b"dup"
        # Both copies of the request reached the handler: this is the
        # double-execution hazard the ReplyCache exists to remove.
        assert server.request_counts[USER_BASE] == 2
        assert plan.injected_duplicates >= 1


class TestPerLinkOverrides:
    def test_reply_only_loss(self):
        # Kill only the server's egress link: requests arrive and
        # execute, replies vanish.
        plan = FaultPlan(seed=1)
        net = SimNetwork(faults=plan)
        server = EchoServer(Nic(net), rng=RandomSource(seed=1)).start()
        plan.links = {server.node.address: FaultSpec(drop=1.0)}
        client = Nic(net)
        with pytest.raises(RPCTimeout):
            trans(client, server.put_port, Message(command=USER_BASE),
                  rng=RandomSource(seed=3), timeout=0.05)
        assert server.request_counts[USER_BASE] == 1

    def test_pair_key_beats_src_key(self):
        spec_pair = FaultSpec(drop=1.0)
        spec_src = FaultSpec()
        plan = FaultPlan(seed=1, links={(7, 9): spec_pair, 7: spec_src})
        assert plan._spec(7, 9) is spec_pair
        assert plan._spec(7, 8) is spec_src
        assert plan._spec(6, 9) is plan.default


class TestReorderSemantics:
    def test_held_frame_released_behind_next(self):
        plan = FaultPlan(seed=1)
        net = SimNetwork(faults=plan)
        sender_a, sender_b, receiver = Nic(net), Nic(net), Nic(net)
        plan.links = {sender_a.address: FaultSpec(reorder=1.0)}
        inbox = PrivatePort.generate(RandomSource(seed=2))
        wire = receiver.listen(inbox)
        sender_a.put(Message(dest=wire, data=b"first"))
        # Held: nothing delivered yet.
        assert receiver.poll(inbox) is None
        sender_b.put(Message(dest=wire, data=b"second"))
        first = receiver.poll(inbox)
        second = receiver.poll(inbox)
        assert (first.message.data, second.message.data) == (b"second",
                                                             b"first")
        assert plan.injected_reorders == 1


class TestBroadcastFaults:
    def test_broadcast_duplicate_delivers_twice(self):
        plan = FaultPlan(seed=1, duplicate=1.0)
        net = SimNetwork(faults=plan)
        sender, listener = Nic(net), Nic(net)
        heard = []
        listener.on_broadcast(lambda frame: heard.append(frame.message.data))
        sender.put_broadcast(Message(command=USER_BASE, data=b"hello"))
        assert heard == [b"hello", b"hello"]

    def test_broadcast_drop_is_silent(self):
        plan = FaultPlan(seed=1, drop=1.0)
        net = SimNetwork(faults=plan)
        sender, listener = Nic(net), Nic(net)
        heard = []
        listener.on_broadcast(lambda frame: heard.append(frame))
        sender.put_broadcast(Message(command=USER_BASE))
        assert heard == []
        assert plan.injected_drops == 1


class TestDeterminism:
    def _run_traffic(self, seed):
        plan = FaultPlan(seed=seed, drop=0.2, duplicate=0.1, corrupt=0.05,
                         reorder=0.05)
        _, server, client = sync_world(plan)
        retry = RetryPolicy(attempts=6, seed=seed)
        outcomes = []
        for i in range(40):
            try:
                reply = trans(client, server.put_port,
                              Message(command=USER_BASE, data=b"%d" % i),
                              rng=RandomSource(seed=100 + i), timeout=5.0,
                              retry=retry)
                outcomes.append(reply.data)
            except RPCTimeout:
                outcomes.append(None)
        return outcomes, plan.stats(), server.request_counts[USER_BASE]

    def test_same_seed_same_faults(self):
        first = self._run_traffic(seed=11)
        second = self._run_traffic(seed=11)
        assert first == second

    def test_different_seed_different_faults(self):
        _, stats_a, _ = self._run_traffic(seed=11)
        _, stats_b, _ = self._run_traffic(seed=12)
        assert stats_a != stats_b


class TestDESFaults:
    def _des_run(self, seed):
        plan = FaultPlan(seed=seed, drop=0.2, duplicate=0.1, delay=0.2,
                         delay_ms=1.0)
        net = SimNetwork(clock=VirtualClock(),
                         latency=LatencyModel(rtt_ms=2.8), faults=plan)
        server = EchoServer(Nic(net), rng=RandomSource(seed=1)).start()
        client = Nic(net)
        retry = RetryPolicy(attempts=6, rto=0.01, seed=seed)
        replies = []
        for i in range(30):
            reply = trans(client, server.put_port,
                          Message(command=USER_BASE, data=b"%d" % i),
                          rng=RandomSource(seed=200 + i), timeout=10.0,
                          retry=retry)
            replies.append(reply.data)
        return replies, net.clock.now, plan.stats()

    def test_des_double_run_is_bit_identical(self):
        assert self._des_run(seed=5) == self._des_run(seed=5)

    def test_des_faults_consume_virtual_time(self):
        replies, clock_now, stats = self._des_run(seed=5)
        assert len(replies) == 30
        # Lossless, 30 serial RTTs would cost 30 * 2.8 ms; retransmission
        # backoff and delay faults must push the virtual clock past that.
        assert clock_now > 30 * 2.8 / 1000.0
        assert stats["injected_drops"] > 0
        assert stats["injected_delays"] > 0


class TestCorruption:
    def test_corrupt_frame_counted_and_screened(self):
        plan = FaultPlan(seed=1, corrupt=1.0)
        _, server, client = sync_world(plan)
        try:
            trans(client, server.put_port,
                  Message(command=USER_BASE, data=b"payload"),
                  rng=RandomSource(seed=3), timeout=0.05)
        except RPCTimeout:
            pass
        assert plan.injected_corruptions >= 1
        total = plan.injected_corruptions
        assert plan.corrupt_unparseable <= total

    def test_corrupted_capability_never_validates(self):
        """Fuzz over seeded plans: a single-bit flip in the validated
        capability region must never produce a status-0 reply."""
        for seed in range(24):
            plan = FaultPlan(seed=seed, corrupt=1.0,
                             corrupt_field="capability")
            net = SimNetwork(faults=plan)
            server = EchoServer(Nic(net),
                                rng=RandomSource(seed=1)).start()
            cap = server.table.create("loot")
            client = Nic(net)
            for i in range(8):
                try:
                    reply = trans(
                        client, server.put_port,
                        Message(command=STD_INFO, capability=cap),
                        rng=RandomSource(seed=500 + i), timeout=0.05,
                    )
                except RPCTimeout:
                    continue  # flip made the frame unparseable: dropped
                assert reply.status != 0, (
                    "corrupted capability validated (seed=%d, i=%d)"
                    % (seed, i)
                )
            assert plan.injected_corruptions > 0


class TestDatagramSeam:
    def test_drop_and_duplicate(self):
        plan = FaultPlan(seed=1, drop=1.0)
        assert plan.apply_datagram(b"payload") == []
        plan = FaultPlan(seed=1, duplicate=1.0)
        assert plan.apply_datagram(b"payload") == [b"payload", b"payload"]

    def test_corrupt_flips_without_reparse(self):
        plan = FaultPlan(seed=1, corrupt=1.0)
        out = plan.apply_datagram(b"\x00" * 64)
        assert len(out) == 1
        assert out[0] != b"\x00" * 64 and len(out[0]) == 64

    def test_reorder_holds_until_next_datagram(self):
        plan = FaultPlan(seed=1, reorder=1.0,
                         links={1: FaultSpec(reorder=1.0)})
        plan.default = FaultSpec()
        assert plan.apply_datagram(b"first", src=1) == []
        assert plan.apply_datagram(b"second", src=2) == [b"second", b"first"]

    def test_faulty_sendto_applies_plan(self):
        sent = []
        plan = FaultPlan(seed=1, drop=1.0)
        wrapper = faulty_sendto(lambda raw, dst: sent.append((raw, dst)),
                                plan)
        wrapper(b"gone", ("host", 1))
        assert sent == []
        clean = faulty_sendto(lambda raw, dst: sent.append((raw, dst)),
                              FaultPlan(seed=1))
        clean(b"kept", ("host", 1))
        assert sent == [(b"kept", ("host", 1))]


class TestStats:
    def test_stats_keys_are_stable(self):
        plan = FaultPlan()
        assert set(plan.stats()) == {
            "frames_seen", "injected_drops", "injected_duplicates",
            "injected_corruptions", "corrupt_unparseable",
            "injected_delays", "injected_reorders",
            "partition_drops", "by_link",
        }

    def test_network_stats_include_faults(self):
        plan = FaultPlan(seed=1, drop=0.5)
        net, server, client = sync_world(plan)
        counters = net.stats()
        assert counters["faults"] == plan.stats()
