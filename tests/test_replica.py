"""Tests for replicated services: one logical port, N server processes.

Covers the replica set and its spread policies, the wire codecs, the
membership registry, peer-applied revocation on the object table, the
epoch-guarded location cache, revocation fan-out (including under
fault injection on the control links), failover with member-wise
invalidation, per-replica duplicate suppression, and the socket control
lane / OS-process pool.
"""

import subprocess
import sys
import threading

import pytest

from repro.core.ports import Port, PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.errors import (
    InvalidCapability,
    NoSuchObject,
    RPCTimeout,
    SecurityError,
)
from repro.ipc import stdops
from repro.ipc.client import ServiceClient
from repro.ipc.locate import Locator, ShardedLocationCache
from repro.ipc.replica import (
    RENDEZVOUS,
    ROUND_ROBIN,
    ReplicaObjectServer,
    ReplicaRegistry,
    ReplicaSet,
    ReplicatedObjectServer,
    pack_here_payload,
    pack_machine,
    pack_membership,
    _unpack_machine,
    pack_destroy_payload,
    pack_refresh_payload,
    unpack_destroy_payload,
    unpack_here_payload,
    unpack_membership,
    unpack_refresh_payload,
)
from repro.ipc.rpc import RetryPolicy, trans
from repro.ipc.server import command
from repro.net.faults import FaultPlan, FaultSpec
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic


# ----------------------------------------------------------------------
# replica sets and spread policies
# ----------------------------------------------------------------------


class TestReplicaSet:
    def test_round_robin_rotates_start(self):
        rs = ReplicaSet([10, 20, 30])
        starts = [rs.select()[0] for _ in range(6)]
        assert starts == [10, 20, 30, 10, 20, 30]

    def test_round_robin_orders_are_full_rotations(self):
        rs = ReplicaSet([1, 2, 3])
        assert rs.select() == [1, 2, 3]
        assert rs.select() == [2, 3, 1]
        assert rs.select() == [3, 1, 2]

    def test_rendezvous_affinity_is_per_key(self):
        rs = ReplicaSet([10, 20, 30, 40], policy=RENDEZVOUS)
        # The same key always maps to the same preference order.
        for key in range(32):
            assert rs.select(key) == rs.select(key)
        # Different keys spread across members (not all on one home).
        homes = {rs.select(key)[0] for key in range(64)}
        assert len(homes) > 1

    def test_rendezvous_failover_order_is_stable(self):
        rs = ReplicaSet([10, 20, 30, 40], policy=RENDEZVOUS)
        order = rs.select(7)
        survivor = ReplicaSet(
            [m for m in rs.members if m != order[0]], policy=RENDEZVOUS
        )
        # Removing the home replica promotes the runner-up: the other
        # members keep their relative order.
        assert survivor.select(7) == order[1:]

    def test_rendezvous_without_key_rotates(self):
        rs = ReplicaSet([1, 2], policy=RENDEZVOUS)
        assert {rs.select()[0], rs.select()[0]} == {1, 2}

    def test_without_and_empty(self):
        rs = ReplicaSet([1, 2])
        smaller = rs.without(1)
        assert list(smaller) == [2]
        empty = smaller.without(2)
        assert len(empty) == 0
        assert empty.select() == []
        assert empty.select(5) == []

    def test_container_protocol(self):
        rs = ReplicaSet([1, 2, 3])
        assert 2 in rs and 9 not in rs
        assert len(rs) == 3
        assert rs == ReplicaSet([1, 2, 3])
        assert rs != ReplicaSet([1, 2, 3], policy=RENDEZVOUS)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ReplicaSet([1], policy="mystery")

    def test_rendezvous_is_stable_across_processes(self):
        """Per-object affinity must survive across *client processes*:
        the weights use a real hash, not per-process-randomized
        ``hash()``.  A fresh interpreter must compute the same order."""
        members = [("10.0.0.1", 7000), ("10.0.0.2", 7000), ("10.0.0.3", 7000)]
        rs = ReplicaSet(members, policy=RENDEZVOUS)
        local = [rs.select(key) for key in range(8)]
        script = (
            "import sys; sys.path.insert(0, %r)\n"
            "from repro.ipc.replica import ReplicaSet, RENDEZVOUS\n"
            "rs = ReplicaSet(%r, policy=RENDEZVOUS)\n"
            "print(repr([rs.select(key) for key in range(8)]))\n"
            % ("src", members)
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, cwd=".",
        ).stdout.strip()
        assert out == repr(local)


# ----------------------------------------------------------------------
# wire codecs
# ----------------------------------------------------------------------


class TestWireCodecs:
    def test_machine_round_trip_int(self):
        raw = pack_machine(123456)
        machine, pos = _unpack_machine(raw, 0)
        assert machine == 123456 and pos == len(raw)

    def test_machine_round_trip_address(self):
        raw = pack_machine(("127.0.0.1", 54321))
        machine, pos = _unpack_machine(raw, 0)
        assert machine == ("127.0.0.1", 54321) and pos == len(raw)

    def test_machine_truncation_rejected(self):
        raw = pack_machine(("localhost", 80))
        with pytest.raises(ValueError):
            _unpack_machine(raw[:-1], 0)
        with pytest.raises(ValueError):
            _unpack_machine(b"\x09", 0)

    @pytest.mark.parametrize("policy", [ROUND_ROBIN, RENDEZVOUS])
    def test_here_payload_round_trip(self, policy):
        port = Port(0xABCDEF012345)
        rs = ReplicaSet([3, ("h", 9), 7], policy=policy)
        payload = pack_here_payload(port, rs)
        back_port, back_rs = unpack_here_payload(payload)
        assert back_port == port
        assert back_rs == rs

    def test_here_payload_never_looks_legacy(self):
        # The locator distinguishes the extended HERE from the legacy
        # 6-byte one purely by length: even a single-member set must
        # encode longer than a bare port.
        payload = pack_here_payload(Port(1), ReplicaSet([2]))
        assert len(payload) > len(Port(1).to_bytes())

    def test_here_payload_trailing_bytes_rejected(self):
        payload = pack_here_payload(Port(1), ReplicaSet([2, 3]))
        with pytest.raises(ValueError):
            unpack_here_payload(payload + b"\x00")
        with pytest.raises(ValueError):
            unpack_here_payload(payload[:-1])

    def test_membership_round_trip(self):
        port = Port(42)
        raw = pack_membership(port, ("127.0.0.1", 6000))
        back_port, machine = unpack_membership(raw)
        assert back_port == port and machine == ("127.0.0.1", 6000)
        with pytest.raises(ValueError):
            unpack_membership(raw + b"!")

    def test_refresh_payload_round_trip_int_secret(self):
        raw = pack_refresh_payload(7, 3, 0xDEADBEEF)
        assert unpack_refresh_payload(raw) == (7, 3, 0xDEADBEEF)

    def test_refresh_payload_round_trip_bytes_secret(self):
        raw = pack_refresh_payload(7, 3, b"\x00" * 16)
        assert unpack_refresh_payload(raw) == (7, 3, b"\x00" * 16)

    def test_destroy_payload_round_trip(self):
        raw = pack_destroy_payload(9, 2)
        assert unpack_destroy_payload(raw) == (9, 2)
        with pytest.raises(ValueError):
            unpack_destroy_payload(raw + b"\x00")


# ----------------------------------------------------------------------
# membership registry
# ----------------------------------------------------------------------


class TestReplicaRegistry:
    def test_join_and_members_keep_order(self):
        reg = ReplicaRegistry()
        port = Port(5)
        reg.join(port, 30)
        reg.join(port, 10)
        reg.join(port, 30)  # idempotent
        assert reg.members(port) == (30, 10)

    def test_leave(self):
        reg = ReplicaRegistry()
        port = Port(5)
        reg.join(port, 1)
        assert reg.leave(port, 1) is True
        assert reg.leave(port, 1) is False
        assert reg.replica_set(port) is None
        assert len(reg) == 0

    def test_replica_set_policy_override(self):
        reg = ReplicaRegistry()
        reg.join(Port(1), 10)
        reg.join(Port(2), 20, policy=RENDEZVOUS)
        assert reg.replica_set(Port(1)).policy == ROUND_ROBIN
        assert reg.replica_set(Port(2)).policy == RENDEZVOUS


# ----------------------------------------------------------------------
# peer-applied revocation on the object table
# ----------------------------------------------------------------------


class TestApplyRevocation:
    def _table(self):
        from repro.core.registry import ObjectTable
        from repro.core.schemes import XorOneWayScheme

        rng = RandomSource(1)
        return ObjectTable(XorOneWayScheme(), PrivatePort.generate(rng).public, rng)

    def test_apply_refresh_installs_peer_secret(self):
        table = self._table()
        cap = table.create(b"x")
        assert table.apply_refresh(cap.object, 0x123456, 1) is True
        with pytest.raises(InvalidCapability):
            table.lookup(cap)

    def test_apply_refresh_rejects_stale_generation(self):
        table = self._table()
        cap = table.create(b"x")
        assert table.apply_refresh(cap.object, 0x1, 1) is True
        # A duplicate or reordered copy of the same (or older) refresh
        # must be a no-op: the guard is the generation number.
        assert table.apply_refresh(cap.object, 0x2, 1) is False
        assert table.apply_refresh(cap.object, 0x2, 0) is False

    def test_apply_destroy_is_idempotent(self):
        table = self._table()
        cap = table.create(b"x")
        assert table.apply_destroy(cap.object) is True
        assert table.apply_destroy(cap.object) is False
        with pytest.raises(NoSuchObject):
            table.lookup(cap)

    def test_apply_revocation_fires_cache_hook(self):
        table = self._table()
        cap = table.create(b"x")
        fired = []
        table.on_revocation(lambda *args: fired.append(args))
        table.apply_refresh(cap.object, 0x9, 1)
        table.apply_destroy(cap.object)
        assert len(fired) == 2


# ----------------------------------------------------------------------
# epoch-guarded location cache (the stale-mapping race)
# ----------------------------------------------------------------------


class TestLocationCacheEpochs:
    def test_put_with_stale_epoch_is_discarded(self):
        cache = ShardedLocationCache(shards=4)
        port = Port(7)
        epoch = cache.epoch(port)
        cache.invalidate(port)  # crash detected while locate in flight
        assert cache.put(port, 99, epoch=epoch) is False
        assert cache.get(port) is None

    def test_put_with_current_epoch_lands(self):
        cache = ShardedLocationCache(shards=4)
        port = Port(7)
        assert cache.put(port, 99, epoch=cache.epoch(port)) is True
        assert cache.get(port) == 99

    def test_invalidate_member_keeps_survivors_and_bumps_epoch(self):
        cache = ShardedLocationCache(shards=4)
        port = Port(3)
        cache.put(port, ReplicaSet([1, 2, 3]))
        epoch = cache.epoch(port)
        assert cache.invalidate_member(port, 2) is True
        assert list(cache.get(port)) == [1, 3]
        assert cache.epoch(port) == epoch + 1
        assert cache.invalidate_member(port, 2) is False

    def test_invalidate_last_member_drops_mapping(self):
        cache = ShardedLocationCache(shards=4)
        port = Port(3)
        cache.put(port, ReplicaSet([1]))
        assert cache.invalidate_member(port, 1) is True
        assert cache.get(port) is None

    def test_invalidate_member_on_single_machine_mapping(self):
        cache = ShardedLocationCache(shards=4)
        port = Port(3)
        cache.put(port, 42)
        assert cache.invalidate_member(port, 41) is False
        assert cache.invalidate_member(port, 42) is True
        assert cache.get(port) is None

    def test_threaded_invalidation_race_regression(self):
        """The race the epoch guard exists for: a locate snapshots the
        epoch, a crash-detection invalidate lands *while the broadcast
        round trip is in flight*, then the locate's put arrives.  The
        put must lose — a resurrected mapping would point every
        subsequent send at the dead machine."""
        cache = ShardedLocationCache(shards=2)
        port = Port(11)
        rounds = 200
        resurrections = []
        snapshotted = threading.Barrier(2)
        invalidated = threading.Barrier(2)
        done = threading.Barrier(2)

        def locator_side():
            for _ in range(rounds):
                epoch = cache.epoch(port)  # snapshot, then "broadcast"
                snapshotted.wait()
                invalidated.wait()         # crash detected in between
                stored = cache.put(port, "stale-machine", epoch=epoch)
                if stored:
                    resurrections.append(cache.get(port))
                done.wait()

        def crash_detector_side():
            for _ in range(rounds):
                snapshotted.wait()
                cache.invalidate(port)
                invalidated.wait()
                done.wait()

        threads = [
            threading.Thread(target=locator_side),
            threading.Thread(target=crash_detector_side),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every put raced a completed invalidate of its stripe: with the
        # epoch snapshotted beforehand, all of them must lose — one
        # success is a resurrected mapping pointing at a dead machine.
        assert resurrections == []
        assert cache.get(port) is None


# ----------------------------------------------------------------------
# the in-process replicated service
# ----------------------------------------------------------------------


@pytest.fixture
def sim_pool():
    net = SimNetwork(synchronous=True)
    pool = ReplicatedObjectServer(net, replicas=4, rng=RandomSource(7)).start()
    client_node = Nic(net)
    locator = Locator(client_node, rng=RandomSource(9))
    client = ServiceClient(
        client_node,
        pool.put_port,
        rng=RandomSource(11),
        expect_signature=pool.signature.public,
        locator=locator,
    )
    yield net, pool, client, locator
    pool.stop()


class TestReplicatedService:
    def test_locate_resolves_to_replica_set(self, sim_pool):
        _net, pool, client, locator = sim_pool
        cap = pool.create(b"payload")
        client.info(cap)
        located = locator.cache.get(pool.put_port)
        assert getattr(located, "is_replica_set", False)
        assert len(located) == 4

    def test_requests_spread_across_replicas(self, sim_pool):
        _net, pool, client, _locator = sim_pool
        cap = pool.create(b"payload")
        for _ in range(8):
            client.touch(cap)
        served = [
            server.request_counts[stdops.STD_TOUCH] for server in pool.servers
        ]
        assert sum(served) == 8
        assert max(served) < 8  # not all pinned to one member

    def test_refresh_fans_out_to_every_replica(self, sim_pool):
        _net, pool, client, _locator = sim_pool
        cap = pool.create(b"payload")
        fresh = client.refresh(cap)
        for server in pool.servers:
            with pytest.raises(InvalidCapability):
                server.table.lookup(cap)
            server.table.lookup(fresh)  # the fresh capability works
        assert sum(s.fanout_sent for s in pool.servers) == 3
        assert all(not s.fanout_failures for s in pool.servers)

    def test_destroy_fans_out_to_every_replica(self, sim_pool):
        _net, pool, client, _locator = sim_pool
        cap = pool.create(b"payload")
        client.destroy(cap)
        for server in pool.servers:
            with pytest.raises((InvalidCapability, NoSuchObject)):
                server.table.lookup(cap)

    def test_aging_fans_out_to_every_replica(self, sim_pool):
        _net, pool, _client, _locator = sim_pool
        cap = pool.create(b"payload")
        sweeper = pool.servers[0]
        entry = sweeper.table._entry(cap.object)
        entry.lifetime = 1
        expired = sweeper.sweep()
        assert [e.number for e in expired] == [cap.object]
        for server in pool.servers:
            with pytest.raises((InvalidCapability, NoSuchObject)):
                server.table.lookup(cap)

    def test_failover_invalidates_only_the_dead_member(self, sim_pool):
        _net, pool, client, locator = sim_pool
        cap = pool.create(b"payload")
        client.touch(cap)  # populate the cache with the full set
        dead = pool.kill(1)
        # Round-robin eventually starts a call at the dead member; that
        # call fails over to the next candidate and succeeds, forgetting
        # only the member that timed out.
        for _ in range(4):
            client.touch(cap)
        cached = locator.cache.get(pool.put_port)
        assert dead.node.address not in cached
        assert len(cached) == 3
        live = {s.node.address for s in pool.servers if s.running}
        assert set(cached) == live

    def test_control_commands_require_service_signature(self, sim_pool):
        from repro.ipc.replica import pack_destroy_payload as destroy_payload

        net, pool, _client, _locator = sim_pool
        cap = pool.create(b"payload")
        intruder = Nic(net)
        forged = Message(
            command=stdops.CTL_APPLY_DESTROY,
            data=destroy_payload(cap.object, 0),
        )
        reply = trans(
            intruder,
            pool.put_port,
            forged,
            rng=RandomSource(13),
            timeout=1.0,
            dst_machine=pool.servers[0].node.address,
        )
        assert reply.status == SecurityError.code
        # The forgery changed nothing: the object is still there.
        pool.servers[0].table.lookup(cap)

    def test_fanout_failure_is_recorded_not_raised(self, sim_pool):
        _net, pool, client, _locator = sim_pool
        cap = pool.create(b"payload")
        victim = pool.servers[2]
        pool.kill(2)
        fresh = client.refresh(cap)
        # The refresh succeeded for the client despite the dead peer...
        origin = next(s for s in pool.servers if s.fanout_failures)
        assert any(
            machine == victim.node.address
            for machine, _op, _number in origin.fanout_failures
        )
        # ...and every *live* replica still applied it.
        for server in pool.servers:
            if not server.running:
                continue
            with pytest.raises(InvalidCapability):
                server.table.lookup(cap)
            server.table.lookup(fresh)


class TestFanOutUnderFaults:
    """Satellite: revocation fan-out under drop/delay on control links.

    The FaultPlan targets only replica-to-replica links, so client
    traffic is clean while the control plane suffers; the at-least-once
    fan-out retry must still converge every replica — including the
    lagging one — to rejecting the revoked capability."""

    def _lossy_pool(self, drop, delay=0.0, replicas=4):
        rng = RandomSource(7)
        # Build once to learn the machine numbers (deterministic: Nic
        # attachment order), then rebuild with the per-link fault plan.
        probe_net = SimNetwork(synchronous=True)
        probe = ReplicatedObjectServer(probe_net, replicas=replicas, rng=rng)
        machines = [s.node.address for s in probe.servers]
        probe.stop()
        links = {
            (a, b): FaultSpec(drop=drop, delay=delay)
            for a in machines
            for b in machines
            if a != b
        }
        net = SimNetwork(
            synchronous=True, faults=FaultPlan(seed=21, links=links)
        )
        pool = ReplicatedObjectServer(
            net,
            replicas=replicas,
            rng=RandomSource(7),
            fanout_retry=RetryPolicy(attempts=8, rto=0.01, cap=0.05, seed=5),
        ).start()
        return net, pool

    def test_refresh_converges_under_dropped_control_frames(self):
        net, pool = self._lossy_pool(drop=0.3)
        try:
            cap = pool.create(b"under-fire")
            client = ServiceClient(
                Nic(net),
                pool.put_port,
                rng=RandomSource(31),
                expect_signature=pool.signature.public,
                locator=Locator(Nic(net), rng=RandomSource(33)),
            )
            fresh = client.refresh(cap)
            assert all(not s.fanout_failures for s in pool.servers)
            for server in pool.servers:
                with pytest.raises(InvalidCapability):
                    server.table.lookup(cap)
                server.table.lookup(fresh)
        finally:
            pool.stop()

    def test_destroy_converges_under_drop_and_delay(self):
        net, pool = self._lossy_pool(drop=0.2, delay=0.3)
        try:
            cap = pool.create(b"under-fire")
            client = ServiceClient(
                Nic(net),
                pool.put_port,
                rng=RandomSource(41),
                expect_signature=pool.signature.public,
                locator=Locator(Nic(net), rng=RandomSource(43)),
            )
            client.destroy(cap)
            assert all(not s.fanout_failures for s in pool.servers)
            for server in pool.servers:
                with pytest.raises((InvalidCapability, NoSuchObject)):
                    server.table.lookup(cap)
        finally:
            pool.stop()


class _CountingServer(ReplicaObjectServer):
    """A replica server with one user op that must never double-run."""

    INCREMENT = stdops.USER_BASE

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.executions = 0

    @command(stdops.USER_BASE)
    def _user_increment(self, ctx):
        entry, _rights = ctx.lookup()
        self.executions += 1
        return ctx.ok(data=b"%d" % self.executions)


class TestPerReplicaDedup:
    def test_duplicated_requests_execute_once_per_transaction(self):
        """Wire duplicates of a transaction land on the same replica
        (unicast retransmission) and must be absorbed by *that*
        replica's ReplyCache — at-least-once across the pool without a
        single double-execution on any member."""
        net = SimNetwork(
            synchronous=True, faults=FaultPlan(seed=3, duplicate=0.5)
        )
        pool = ReplicatedObjectServer(
            net,
            replicas=3,
            rng=RandomSource(7),
            server_cls=_CountingServer,
        ).start()
        try:
            cap = pool.create(b"counter")
            client = ServiceClient(
                Nic(net),
                pool.put_port,
                rng=RandomSource(51),
                expect_signature=pool.signature.public,
                locator=Locator(Nic(net), rng=RandomSource(53)),
                retry=RetryPolicy(attempts=4, rto=0.01, cap=0.05, seed=1),
            )
            transactions = 20
            for _ in range(transactions):
                client.call(_CountingServer.INCREMENT, capability=cap)
            executed = sum(s.executions for s in pool.servers)
            duplicates_absorbed = sum(
                s.reply_cache.hits for s in pool.servers
            )
            assert executed == transactions
            assert duplicates_absorbed > 0  # the fault plan actually fired
        finally:
            pool.stop()


# ----------------------------------------------------------------------
# sockets: control lane and the OS-process pool
# ----------------------------------------------------------------------


@pytest.mark.integration
class TestSocketControlLane:
    def test_ping_pong_and_membership(self):
        from repro.ipc.replica import (
            install_membership_handler,
            probe_liveness,
        )
        from repro.net.sockets import CTL_JOIN, CTL_LEAVE, SocketNode

        arbiter = SocketNode()
        member = SocketNode()
        try:
            registry = ReplicaRegistry()
            install_membership_handler(arbiter, registry)
            port = Port(77)
            member.send_control(
                CTL_JOIN, pack_membership(port, member.address), arbiter.address
            )
            deadline = 50
            import time

            while not registry.members(port) and deadline:
                time.sleep(0.02)
                deadline -= 1
            assert registry.members(port) == (member.address,)
            assert probe_liveness(member, arbiter.address, timeout=2.0)
            member.send_control(
                CTL_LEAVE, pack_membership(port, member.address), arbiter.address
            )
            deadline = 50
            while registry.members(port) and deadline:
                time.sleep(0.02)
                deadline -= 1
            assert registry.members(port) == ()
            assert arbiter.control_received >= 2
        finally:
            arbiter.close()
            member.close()


@pytest.mark.integration
class TestReplicaPoolUDP:
    def test_pool_end_to_end(self):
        """Fork a 3-process pool: locate resolves the whole pool over
        the wire, revocation fans out across OS processes, and a
        SIGKILLed replica is survived by failover with only the dead
        member forgotten."""
        from repro.ipc.replica import ReplicaPool
        from repro.net.sockets import SocketNode

        pool = ReplicaPool(replicas=3, objects=1, payload=b"udp")
        client_node = SocketNode()
        try:
            assert len(pool.registry.members(pool.put_port)) == 3
            assert all(pool.health(i) for i in range(3))
            client_node.connect(pool.arbiter.address)
            locator = Locator(client_node, rng=RandomSource(3))
            client = ServiceClient(
                client_node,
                pool.put_port,
                rng=RandomSource(5),
                expect_signature=pool.signature.public,
                locator=locator,
                timeout=4.0,
            )
            cap = pool.capabilities[0]
            assert "object 0" in client.info(cap)
            located = locator.cache.get(pool.put_port)
            assert getattr(located, "is_replica_set", False)
            assert len(located) == 3

            fresh = client.refresh(cap)
            # Every replica process — asked directly, not via the set —
            # must reject the revoked capability and accept the fresh.
            for i, addr in enumerate(pool.addresses):
                old = trans(
                    client_node,
                    pool.put_port,
                    Message(command=stdops.STD_TOUCH, capability=cap),
                    rng=RandomSource(100 + i),
                    timeout=4.0,
                    expect_signature=pool.signature.public,
                    dst_machine=addr,
                )
                assert old.status == InvalidCapability.code
                good = trans(
                    client_node,
                    pool.put_port,
                    Message(command=stdops.STD_TOUCH, capability=fresh),
                    rng=RandomSource(200 + i),
                    timeout=4.0,
                    expect_signature=pool.signature.public,
                    dst_machine=addr,
                )
                assert good.status == 0

            pool.kill(0)
            assert not pool.health(0, timeout=0.5)
            for _ in range(6):
                client.touch(fresh)  # failover keeps the service up
            cached = locator.cache.get(pool.put_port)
            assert pool.addresses[0] not in cached
            assert len(cached) == 2
        finally:
            client_node.close()
            pool.stop()
