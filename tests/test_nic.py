"""Tests for the NIC: GET/PUT semantics through the F-box."""

import pytest

from repro.core.ports import Port, PrivatePort
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic


@pytest.fixture
def net():
    return SimNetwork()


@pytest.fixture
def pair(net):
    return Nic(net), Nic(net)


class TestListen:
    def test_listen_returns_wire_port(self, pair):
        _, b = pair
        g = PrivatePort.generate()
        wire = b.listen(g)
        assert wire == g.public

    def test_listen_accepts_port_private_or_int(self, pair):
        _, b = pair
        assert b.listen(5) == b.listen(Port(5))

    def test_unlisten_stops_delivery(self, pair):
        a, b = pair
        g = PrivatePort(7)
        wire = b.listen(g)
        b.unlisten(g)
        assert not a.put(Message(dest=wire))

    def test_poll_empty(self, pair):
        _, b = pair
        g = PrivatePort(7)
        b.listen(g)
        assert b.poll(g) is None

    def test_poll_fifo_order(self, pair):
        a, b = pair
        g = PrivatePort(7)
        wire = b.listen(g)
        a.put(Message(dest=wire, command=1))
        a.put(Message(dest=wire, command=2))
        assert b.poll(g).message.command == 1
        assert b.poll(g).message.command == 2

    def test_pending(self, pair):
        a, b = pair
        g = PrivatePort(7)
        wire = b.listen(g)
        assert b.pending(g) == 0
        a.put(Message(dest=wire))
        assert b.pending(g) == 1


class TestServe:
    def test_handler_invoked_synchronously(self, pair):
        a, b = pair
        g = PrivatePort(7)
        seen = []
        wire = b.serve(g, seen.append)
        a.put(Message(dest=wire, data=b"request"))
        assert len(seen) == 1
        assert seen[0].message.data == b"request"

    def test_handler_wins_over_queue(self, pair):
        a, b = pair
        g = PrivatePort(7)
        b.listen(g)
        seen = []
        wire = b.serve(g, seen.append)
        a.put(Message(dest=wire))
        assert seen and b.poll(g) is None

    def test_nested_rpc_from_handler(self, net):
        # A server may itself call another server while handling a
        # request (flat file server -> block server); the synchronous
        # delivery model must support that reentrancy.
        front, back, client = Nic(net), Nic(net), Nic(net)
        g_back = PrivatePort(1)
        wire_back = back.serve(
            g_back, lambda f: back.put(f.message.reply_to(data=b"inner"))
        )

        g_front = PrivatePort(2)

        def front_handler(frame):
            reply_private = PrivatePort(3)
            front.listen(reply_private)
            front.put(Message(dest=wire_back, reply=Port(reply_private.secret)))
            inner = front.poll(reply_private)
            front.put(frame.message.reply_to(data=b"outer+" + inner.message.data))

        wire_front = front.serve(g_front, front_handler)
        reply_private = PrivatePort(4)
        client.listen(reply_private)
        client.put(Message(dest=wire_front, reply=Port(reply_private.secret)))
        reply = client.poll(reply_private)
        assert reply.message.data == b"outer+inner"


class TestEgressAlwaysTransforms:
    def test_reply_field_one_wayed_on_wire(self, net):
        a, b = Nic(net), Nic(net)
        captured = []
        net.add_tap(captured.append)
        g = PrivatePort(9)
        wire = b.listen(g)
        reply_secret = PrivatePort(12345)
        a.put(Message(dest=wire, reply=Port(reply_secret.secret)))
        on_wire = captured[0].message
        # The wire must carry F(G'), never G' itself.
        assert on_wire.reply == reply_secret.public
        assert on_wire.reply != Port(reply_secret.secret)

    def test_counters(self, pair):
        a, b = pair
        g = PrivatePort(7)
        wire = b.listen(g)
        a.put(Message(dest=wire))
        assert a.sent == 1
        assert b.received == 1
