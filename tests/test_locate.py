"""Tests for LOCATE broadcasts and the (port, machine) cache."""

import pytest

from repro.core.ports import Port, PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.errors import PortNotLocated
from repro.ipc.locate import Locator, install_locate_responder
from repro.net.network import SimNetwork
from repro.net.nic import Nic


@pytest.fixture
def world():
    net = SimNetwork()
    server_nic = Nic(net)
    install_locate_responder(server_nic)
    g = PrivatePort(1234)
    wire = server_nic.listen(g)
    client_nic = Nic(net)
    locator = Locator(client_nic, rng=RandomSource(seed=1))
    return net, server_nic, wire, locator


class TestLocate:
    def test_finds_the_serving_machine(self, world):
        _, server_nic, wire, locator = world
        assert locator.locate(wire) == server_nic.address

    def test_miss_then_hit(self, world):
        net, server_nic, wire, locator = world
        locator.locate(wire)
        broadcasts_after_miss = net.broadcasts
        locator.locate(wire)
        assert net.broadcasts == broadcasts_after_miss  # cache hit: no wire
        assert locator.hits == 1 and locator.misses == 1

    def test_unknown_port_raises(self, world):
        _, _, _, locator = world
        with pytest.raises(PortNotLocated):
            locator.locate(Port(0xDEAD), timeout=0.05)

    def test_invalidate_forces_rebroadcast(self, world):
        net, _, wire, locator = world
        locator.locate(wire)
        locator.invalidate(wire)
        before = net.broadcasts
        locator.locate(wire)
        assert net.broadcasts == before + 1

    def test_multiple_services_located_independently(self, world):
        net, server_nic, wire, locator = world
        other_nic = Nic(net)
        install_locate_responder(other_nic)
        g2 = PrivatePort(5678)
        wire2 = other_nic.listen(g2)
        assert locator.locate(wire) == server_nic.address
        assert locator.locate(wire2) == other_nic.address

    def test_responder_ignores_ports_it_does_not_serve(self, world):
        net, server_nic, wire, locator = world
        # A second machine with a responder but not serving the port must
        # not answer for it.
        bystander = Nic(net)
        install_locate_responder(bystander)
        assert locator.locate(wire) == server_nic.address

    def test_responder_ignores_non_locate_broadcasts(self, world):
        from repro.net.message import Message

        net, server_nic, _, _ = world
        sender = Nic(net)
        # Nothing should blow up; the handler just ignores it.
        sender.put_broadcast(Message(command=999, data=b"noise"))


class TestLocatedUnicast:
    def test_located_rpc_is_unicast(self, world):
        from repro.ipc.rpc import trans
        from repro.net.message import Message

        net, server_nic, wire, locator = world
        # Replace the listen-queue with an echoing handler.
        g = PrivatePort(1234)
        server_nic.serve(g, lambda f: server_nic.put(f.message.reply_to()))
        client_nic = locator.node
        machine = locator.locate(wire)
        reply = trans(
            client_nic,
            wire,
            Message(),
            rng=RandomSource(seed=2),
            dst_machine=machine,
        )
        assert reply.is_reply
