"""Tests for LOCATE broadcasts and the (port, machine) cache."""

import pytest

from repro.core.ports import Port, PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.errors import PortNotLocated
from repro.ipc.locate import Locator, install_locate_responder
from repro.net.network import SimNetwork
from repro.net.nic import Nic


@pytest.fixture
def world():
    net = SimNetwork()
    server_nic = Nic(net)
    install_locate_responder(server_nic)
    g = PrivatePort(1234)
    wire = server_nic.listen(g)
    client_nic = Nic(net)
    locator = Locator(client_nic, rng=RandomSource(seed=1))
    return net, server_nic, wire, locator


class TestLocate:
    def test_finds_the_serving_machine(self, world):
        _, server_nic, wire, locator = world
        assert locator.locate(wire) == server_nic.address

    def test_miss_then_hit(self, world):
        net, server_nic, wire, locator = world
        locator.locate(wire)
        broadcasts_after_miss = net.broadcasts
        locator.locate(wire)
        assert net.broadcasts == broadcasts_after_miss  # cache hit: no wire
        assert locator.hits == 1 and locator.misses == 1

    def test_unknown_port_raises(self, world):
        _, _, _, locator = world
        with pytest.raises(PortNotLocated):
            locator.locate(Port(0xDEAD), timeout=0.05)

    def test_invalidate_forces_rebroadcast(self, world):
        net, _, wire, locator = world
        locator.locate(wire)
        locator.invalidate(wire)
        before = net.broadcasts
        locator.locate(wire)
        assert net.broadcasts == before + 1

    def test_multiple_services_located_independently(self, world):
        net, server_nic, wire, locator = world
        other_nic = Nic(net)
        install_locate_responder(other_nic)
        g2 = PrivatePort(5678)
        wire2 = other_nic.listen(g2)
        assert locator.locate(wire) == server_nic.address
        assert locator.locate(wire2) == other_nic.address

    def test_responder_ignores_ports_it_does_not_serve(self, world):
        net, server_nic, wire, locator = world
        # A second machine with a responder but not serving the port must
        # not answer for it.
        bystander = Nic(net)
        install_locate_responder(bystander)
        assert locator.locate(wire) == server_nic.address

    def test_responder_ignores_non_locate_broadcasts(self, world):
        from repro.net.message import Message

        net, server_nic, _, _ = world
        sender = Nic(net)
        # Nothing should blow up; the handler just ignores it.
        sender.put_broadcast(Message(command=999, data=b"noise"))


class TestCacheStaleness:
    """A located (port, machine) pair is a *cache*, not a lease: the
    server can migrate and the cached machine go dark.  Clients observe
    the failure, ``invalidate()``, and re-locate — under both the real
    and the virtual clock."""

    def _migration_world(self, net):
        """Server on machine A; returns (old_nic, wire, locator)."""
        old_nic = Nic(net)
        install_locate_responder(old_nic)
        wire = old_nic.listen(PrivatePort(4321))
        client_nic = Nic(net)
        locator = Locator(client_nic, rng=RandomSource(seed=21))
        return old_nic, wire, locator

    def _migrate(self, net, old_nic, wire):
        """Move the service to a fresh machine; the old one detaches."""
        net.detach(old_nic.address)
        new_nic = Nic(net)
        install_locate_responder(new_nic)
        new_nic.listen(PrivatePort(4321))
        return new_nic

    def test_stale_cache_then_invalidate_and_relocate(self):
        net = SimNetwork()
        old_nic, wire, locator = self._migration_world(net)
        assert locator.locate(wire) == old_nic.address
        new_nic = self._migrate(net, old_nic, wire)
        # The cache still answers with the dark machine — a hit, no wire
        # traffic, and no way for the locator to know better yet.
        stale = locator.locate(wire)
        assert stale == old_nic.address
        assert locator.hits == 1 and locator.misses == 1
        # The client observed the timeout/failure; invalidate + re-locate
        # must broadcast again and find the new home.
        locator.invalidate(wire)
        assert locator.locate(wire) == new_nic.address
        assert locator.hits == 1 and locator.misses == 2

    def test_unicast_to_stale_machine_fails_then_recovers(self):
        from repro.errors import RPCTimeout
        from repro.ipc.rpc import trans
        from repro.net.message import Message

        net = SimNetwork()
        old_nic, wire, locator = self._migration_world(net)
        machine = locator.locate(wire)
        new_nic = self._migrate(net, old_nic, wire)
        new_nic.serve(
            PrivatePort(4321), lambda f: new_nic.put(f.message.reply_to())
        )
        client_nic = locator.node
        # Unicast to the cached-but-dark machine: nothing answers.
        with pytest.raises(RPCTimeout):
            trans(
                client_nic,
                wire,
                Message(),
                RandomSource(seed=22),
                dst_machine=machine,
                timeout=0.05,
            )
        locator.invalidate(wire)
        reply = trans(
            client_nic,
            wire,
            Message(),
            RandomSource(seed=23),
            dst_machine=locator.locate(wire),
        )
        assert reply.is_reply

    def test_stale_cache_under_virtual_clock(self):
        from repro.net.sched import LatencyModel, VirtualClock

        net = SimNetwork(
            clock=VirtualClock(), latency=LatencyModel(rtt_ms=2.8)
        )
        old_nic, wire, locator = self._migration_world(net)
        assert locator.locate(wire) == old_nic.address
        new_nic = self._migrate(net, old_nic, wire)
        locator.invalidate(wire)
        start = net.clock.now
        assert locator.locate(wire) == new_nic.address
        # The re-locate costs one full virtual RTT, like any LOCATE.
        assert net.clock.now - start == pytest.approx(0.0028)
        assert locator.hits == 0 and locator.misses == 2

    def test_timeout_consumes_real_time_on_sockets_shape(self):
        """PortNotLocated on a station whose poll blocks in wall time:
        the synchronous simulator pumps-and-returns, so the timeout path
        is immediate (no sleep), but the error still raises."""
        net = SimNetwork()
        Nic(net)
        client_nic = Nic(net)
        locator = Locator(client_nic, rng=RandomSource(seed=24))
        with pytest.raises(PortNotLocated):
            locator.locate(Port(0xF00D), timeout=0.01)

    def test_timeout_consumes_virtual_time_on_des(self):
        from repro.net.sched import LatencyModel, VirtualClock

        net = SimNetwork(
            clock=VirtualClock(), latency=LatencyModel(rtt_ms=2.8)
        )
        Nic(net)
        client_nic = Nic(net)
        locator = Locator(client_nic, rng=RandomSource(seed=25))
        start = net.clock.now
        with pytest.raises(PortNotLocated):
            locator.locate(Port(0xF00D), timeout=0.75)
        assert net.clock.now - start == pytest.approx(0.75)


class TestBlockingPollFeatureDetection:
    """Regression for the TypeError-swallowing probe: a station whose
    delivery path raises TypeError must propagate it, not dissolve it
    into a bogus PortNotLocated."""

    def test_delivery_typeerror_propagates(self):
        net = SimNetwork()
        client_nic = Nic(net)
        locator = Locator(client_nic, rng=RandomSource(seed=26))

        def poisoned_poll_wire(wire_port, timeout=None):
            if timeout is not None:
                raise TypeError("genuine bug inside delivery")
            return None  # fast path: nothing queued yet

        client_nic.poll_wire = poisoned_poll_wire
        client_nic.supports_poll_timeout = True
        with pytest.raises(TypeError, match="genuine bug"):
            locator.locate(Port(0xF00D), timeout=0.1)


class TestLocatedUnicast:
    def test_located_rpc_is_unicast(self, world):
        from repro.ipc.rpc import trans
        from repro.net.message import Message

        net, server_nic, wire, locator = world
        # Replace the listen-queue with an echoing handler.
        g = PrivatePort(1234)
        server_nic.serve(g, lambda f: server_nic.put(f.message.reply_to()))
        client_nic = locator.node
        machine = locator.locate(wire)
        reply = trans(
            client_nic,
            wire,
            Message(),
            rng=RandomSource(seed=2),
            dst_machine=machine,
        )
        assert reply.is_reply


class TestShardedLocationCache:
    """The locate cache is a sharded read-mostly map: lock-free reads,
    stripe-local writes and invalidations."""

    def test_put_get_invalidate(self):
        from repro.ipc.locate import ShardedLocationCache

        cache = ShardedLocationCache(shards=8)
        ports = [Port(1000 + i) for i in range(32)]
        for i, port in enumerate(ports):
            cache.put(port, i)
        assert len(cache) == 32
        assert all(cache.get(port) == i for i, port in enumerate(ports))
        cache.invalidate(ports[5])
        assert cache.get(ports[5]) is None
        assert len(cache) == 31
        # Neighbours — same stripe or not — are untouched.
        assert cache.get(ports[5 + 8]) == 13  # same stripe (value & mask)
        assert cache.get(ports[6]) == 6

    def test_shard_count_must_be_power_of_two(self):
        from repro.ipc.locate import ShardedLocationCache

        with pytest.raises(ValueError):
            ShardedLocationCache(shards=5)

    def test_contains_and_clear(self):
        from repro.ipc.locate import ShardedLocationCache

        cache = ShardedLocationCache(shards=4)
        cache.put(Port(7), 1)
        assert Port(7) in cache and Port(8) not in cache
        cache.clear()
        assert len(cache) == 0 and Port(7) not in cache

    def test_concurrent_readers_and_invalidators(self):
        """Read-mostly discipline: lock-free gets race stripe-locked
        puts/invalidations without errors or wrong answers."""
        import threading

        from repro.ipc.locate import ShardedLocationCache

        cache = ShardedLocationCache(shards=8)
        ports = [Port(2000 + i) for i in range(64)]
        for i, port in enumerate(ports):
            cache.put(port, i)
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    for i, port in enumerate(ports):
                        got = cache.get(port)
                        assert got is None or got == i
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def churner():
            try:
                for r in range(300):
                    port = ports[r % len(ports)]
                    cache.invalidate(port)
                    cache.put(port, r % len(ports))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        churners = [threading.Thread(target=churner) for _ in range(4)]
        for t in readers + churners:
            t.start()
        for t in churners:
            t.join(timeout=30.0)
        stop.set()
        for t in readers:
            t.join(timeout=30.0)
        assert not errors
