"""Tests for the error hierarchy and its wire status codes."""

import pytest

from repro import errors


class TestHierarchy:
    def test_capability_errors_are_amoeba_errors(self):
        assert issubclass(errors.InvalidCapability, errors.CapabilityError)
        assert issubclass(errors.CapabilityError, errors.AmoebaError)

    def test_server_errors_are_amoeba_errors(self):
        for cls in (
            errors.OutOfSpace,
            errors.NameNotFound,
            errors.VersionConflict,
            errors.InsufficientFunds,
            errors.WriteOnceViolation,
        ):
            assert issubclass(cls, errors.ServerError)

    def test_rpc_errors(self):
        assert issubclass(errors.RPCTimeout, errors.RPCError)
        assert issubclass(errors.PortNotLocated, errors.RPCError)


class TestWireCodes:
    def test_codes_are_unique(self):
        classes = {
            cls
            for cls in vars(errors).values()
            if isinstance(cls, type) and issubclass(cls, errors.AmoebaError)
        }
        codes = [cls.code for cls in classes]
        assert len(codes) == len(set(codes))

    def test_ok_is_zero_and_not_an_error_code(self):
        assert errors.STATUS_OK == 0
        assert errors.code_to_error(errors.AmoebaError.code) is not None

    def test_roundtrip_every_error(self):
        for cls in vars(errors).values():
            if not (isinstance(cls, type) and issubclass(cls, errors.AmoebaError)):
                continue
            exc = cls("context message")
            code = errors.error_to_code(exc)
            back = errors.code_to_error(code, "context message")
            assert type(back) is cls
            assert "context message" in str(back)

    def test_unknown_code_maps_to_base_error(self):
        exc = errors.code_to_error(9999, "future error")
        assert type(exc) is errors.AmoebaError

    def test_non_amoeba_exception_maps_to_base_code(self):
        assert errors.error_to_code(ValueError("x")) == errors.AmoebaError.code

    def test_errors_raiseable_and_catchable_as_base(self):
        with pytest.raises(errors.AmoebaError):
            raise errors.InsufficientFunds("broke")
