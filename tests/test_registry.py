"""Tests for the server-side object table (creation, lookup, revocation)."""

import threading
import time

import pytest

from repro.core.ports import Port
from repro.core.registry import ObjectTable
from repro.core.rights import ALL_RIGHTS, Rights
from repro.core.schemes import scheme_by_name
from repro.crypto.randomsrc import RandomSource
from repro.errors import InvalidCapability, NoSuchObject, PermissionDenied

PORT = Port(0x0BADC0FFEE00)


@pytest.fixture
def table():
    return ObjectTable(
        scheme_by_name("xor-oneway"), PORT, rng=RandomSource(seed=44)
    )


class TestCreateLookup:
    def test_create_returns_owner_capability(self, table):
        cap = table.create({"payload": 1})
        assert cap.port == PORT
        entry, rights = table.lookup(cap)
        assert entry.data == {"payload": 1}
        assert rights == ALL_RIGHTS

    def test_object_numbers_sequential(self, table):
        caps = [table.create(i) for i in range(5)]
        assert [c.object for c in caps] == [0, 1, 2, 3, 4]
        assert len(table) == 5

    def test_lookup_unknown_object(self, table):
        cap = table.create("x")
        ghost = cap.with_rights(cap.rights)  # copy
        table.destroy(cap)
        with pytest.raises(NoSuchObject):
            table.lookup(ghost)

    def test_lookup_requires_rights(self, table):
        cap = table.create("x")
        weak = table.restrict(cap, Rights(0x01))
        table.lookup(weak, required=Rights(0x01))  # fine
        with pytest.raises(PermissionDenied):
            table.lookup(weak, required=Rights(0x02))

    def test_lookup_rejects_tampering(self, table):
        cap = table.create("x")
        with pytest.raises(InvalidCapability):
            table.lookup(cap.with_rights(0x0F))

    def test_data_shorthand(self, table):
        cap = table.create("hello")
        assert table.data(cap) == "hello"

    def test_touch_counting(self, table):
        cap = table.create("x")
        entry, _ = table.lookup(cap)
        before = entry.touches
        table.lookup(cap)
        assert entry.touches == before + 1


class TestRestrict:
    def test_restricted_capability_works(self, table):
        cap = table.create("x")
        weak = table.restrict(cap, Rights(0b0101))
        _, rights = table.lookup(weak)
        assert rights == Rights(0b0101)

    def test_restrict_of_restrict_shrinks(self, table):
        cap = table.create("x")
        weaker = table.restrict(table.restrict(cap, Rights(0b0111)), Rights(0b0011))
        _, rights = table.lookup(weaker)
        assert rights == Rights(0b0011)

    def test_restrict_unknown_object(self, table):
        cap = table.create("x")
        table.destroy(cap)
        with pytest.raises(NoSuchObject):
            table.restrict(cap, Rights(1))


class TestRevocation:
    """§2.3: changing the stored random number instantly invalidates every
    outstanding capability."""

    def test_refresh_kills_all_outstanding(self, table):
        owner = table.create("precious")
        shared_a = table.restrict(owner, Rights(0x01))
        shared_b = table.restrict(owner, Rights(0x03))
        fresh = table.refresh(owner)
        for dead in (owner, shared_a, shared_b):
            with pytest.raises(InvalidCapability):
                table.lookup(dead)
        entry, rights = table.lookup(fresh)
        assert entry.data == "precious"
        assert rights == ALL_RIGHTS

    def test_refresh_requires_rights(self, table):
        owner = table.create("x")
        weak = table.restrict(owner, Rights(0x01))
        with pytest.raises(PermissionDenied):
            table.refresh(weak)  # default requires ALL rights

    def test_refresh_bumps_generation(self, table):
        owner = table.create("x")
        entry, _ = table.lookup(owner)
        assert entry.generation == 0
        fresh = table.refresh(owner)
        assert entry.generation == 1
        table.refresh(fresh)
        assert entry.generation == 2

    def test_data_survives_refresh(self, table):
        owner = table.create([1, 2, 3])
        fresh = table.refresh(owner)
        assert table.data(fresh) == [1, 2, 3]


class TestDestroy:
    def test_destroy_removes(self, table):
        cap = table.create("x")
        assert table.destroy(cap) == "x"
        assert len(table) == 0

    def test_numbers_recycled(self, table):
        cap = table.create("a")
        table.destroy(cap)
        again = table.create("b")
        assert again.object == cap.object

    def test_stale_capability_after_recycle_rejected(self, table):
        # The recycled object gets a fresh random number, so the old
        # capability for the same object number must not validate.
        cap = table.create("old")
        table.destroy(cap)
        table.create("new")
        with pytest.raises(InvalidCapability):
            table.lookup(cap)

    def test_destroy_requires_rights(self, table):
        cap = table.create("x")
        weak = table.restrict(cap, Rights(0x01))
        with pytest.raises(PermissionDenied):
            table.destroy(weak)


class TestMintFor:
    def test_mint_for_existing(self, table):
        cap = table.create("x")
        reminted = table.mint_for(cap.object, Rights(0x03))
        _, rights = table.lookup(reminted)
        assert rights == Rights(0x03)

    def test_mint_for_missing(self, table):
        with pytest.raises(NoSuchObject):
            table.mint_for(123)


class TestCapacityAndConcurrency:
    def test_table_capacity(self):
        table = ObjectTable(
            scheme_by_name("xor-oneway"),
            PORT,
            rng=RandomSource(seed=1),
            max_objects=2,
        )
        table.create(1)
        table.create(2)
        with pytest.raises(NoSuchObject):
            table.create(3)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            ObjectTable(scheme_by_name("simple"), PORT, max_objects=0)

    def test_concurrent_creates_unique_numbers(self, table):
        numbers = []
        errors = []

        def worker():
            try:
                for _ in range(50):
                    numbers.append(table.create("x").object)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(set(numbers)) == 200

    def test_concurrent_lookups_lose_no_touches(self, table):
        """Regression: lookup() used to bump ``touches`` *after* releasing
        the table lock, so concurrent lookups lost read-modify-write
        updates.  With the bookkeeping back under the lock the count is
        exact."""
        cap = table.create("hot")
        per_thread = 500
        n_threads = 4
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker():
            try:
                barrier.wait()
                for _ in range(per_thread):
                    table.lookup(cap)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        entry, _ = table.lookup(cap)
        assert entry.touches == per_thread * n_threads + 1

    def test_lookup_straddling_destroy_does_not_resurrect(self):
        """Regression: a lookup whose verify straddles a concurrent
        destroy must not touch the removed entry back to life (or crash);
        it reports NoSuchObject like any later lookup would."""
        scheme = scheme_by_name("xor-oneway")
        gate = threading.Event()
        entered = threading.Event()

        class GatedScheme(type(scheme)):
            def verify(self, secret, rights, check):
                entered.set()
                gate.wait(timeout=5.0)
                return super().verify(secret, rights, check)

        table = ObjectTable(GatedScheme(), PORT, rng=RandomSource(seed=45))
        cap = table.create("doomed")
        results = []

        def reader():
            try:
                results.append(table.lookup(cap))
            except NoSuchObject:
                results.append("gone")

        thread = threading.Thread(target=reader)
        thread.start()
        assert entered.wait(timeout=5.0)
        # destroy() validates the capability itself, so it must not block
        # on the reader's gate: open it for everyone, then destroy.
        gate.set()
        table.destroy(cap)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        # Whatever the reader observed (a validated entry just before the
        # destroy, or NoSuchObject just after), the object stays dead.
        assert cap.object not in table
        with pytest.raises(NoSuchObject):
            table.lookup(cap)

    def test_lookup_straddling_refresh_revalidates(self):
        """A lookup that validated against a secret which died mid-flight
        (a racing refresh) must re-validate and reject the now-revoked
        capability, never bless it with the stale verdict."""
        scheme = scheme_by_name("xor-oneway")
        gate = threading.Event()
        entered = threading.Event()
        first_verify = threading.Event()

        class GatedScheme(type(scheme)):
            def verify(self, secret, rights, check):
                if not first_verify.is_set():
                    first_verify.set()
                    entered.set()
                    gate.wait(timeout=5.0)
                return super().verify(secret, rights, check)

        table = ObjectTable(GatedScheme(), PORT, rng=RandomSource(seed=46))
        cap = table.create("refreshed")
        outcome = []

        def reader():
            try:
                outcome.append(table.lookup(cap)[0])
            except InvalidCapability:
                outcome.append("revoked")

        thread = threading.Thread(target=reader)
        thread.start()
        assert entered.wait(timeout=5.0)
        table.refresh(cap)  # second verify call: gate already recorded
        gate.set()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert outcome == ["revoked"]


class TestSchemeIntegration:
    @pytest.mark.parametrize("name", ["simple", "encrypted", "xor-oneway", "commutative"])
    def test_full_lifecycle_per_scheme(self, name):
        table = ObjectTable(
            scheme_by_name(name), PORT, rng=RandomSource(seed=7)
        )
        cap = table.create("obj")
        entry, rights = table.lookup(cap)
        assert entry.data == "obj"
        fresh = table.refresh(cap)
        with pytest.raises(InvalidCapability):
            table.lookup(cap)
        assert table.destroy(fresh) == "obj"


class TestSharding:
    """The lock-striped table: partitioning, allocation, and sweeps."""

    def test_shard_topology(self, table):
        assert table.shard_count == 16
        for number in range(64):
            assert table.shard_of(number) == number % 16

    def test_shard_count_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            ObjectTable(scheme_by_name("simple"), PORT, shards=3)
        with pytest.raises(ValueError):
            ObjectTable(scheme_by_name("simple"), PORT, shards=0)

    def test_single_shard_degenerates_to_monolithic(self):
        table = ObjectTable(
            scheme_by_name("xor-oneway"),
            PORT,
            rng=RandomSource(seed=50),
            shards=1,
        )
        caps = [table.create(i) for i in range(8)]
        assert [c.object for c in caps] == list(range(8))
        assert table.shard_of(caps[5].object) == 0

    def test_creates_spread_across_shards(self, table):
        caps = [table.create(i) for i in range(32)]
        sizes = table.shard_sizes()
        assert sum(sizes) == 32
        assert sizes == [2] * 16  # round-robin: two objects per stripe
        assert sorted(c.object for c in caps) == table.numbers()

    def test_shard_sizes_and_len_agree(self, table):
        for i in range(10):
            table.create(i)
        assert sum(table.shard_sizes()) == len(table) == 10

    def test_recycled_number_preferred_over_fresh(self, table):
        caps = [table.create(i) for i in range(5)]
        table.destroy(caps[2])
        again = table.create("recycled")
        assert again.object == caps[2].object

    def test_revocation_callback_carries_shard_index(self, table):
        seen = []
        table.on_revocation(
            lambda port, number, generation, shard: seen.append(
                (port, number, generation, shard)
            )
        )
        cap = table.create("x")
        table.refresh(cap)
        assert seen == [(PORT, cap.object, 1, table.shard_of(cap.object))]

    def test_age_expiry_carries_shard_index(self):
        table = ObjectTable(
            scheme_by_name("xor-oneway"),
            PORT,
            rng=RandomSource(seed=51),
            default_lifetime=1,
        )
        seen = []
        table.on_revocation(
            lambda _port, number, _gen, shard: seen.append((number, shard))
        )
        caps = [table.create(i) for i in range(20)]
        table.age()
        assert sorted(seen) == sorted(
            (c.object, table.shard_of(c.object)) for c in caps
        )


class TestVerifiedMemo:
    """The per-entry verified-check memo: §2.4's server-side capability
    cache.  Repeat validations skip the one-way function; the memo can
    never outlive the secret it was proven against."""

    def test_restricted_rights_stable_across_repeat_lookups(self, table):
        cap = table.create("x")
        weak = table.restrict(cap, Rights(0b0101))
        for _ in range(3):
            _, rights = table.lookup(weak)
            assert rights == Rights(0b0101)
        _, owner_rights = table.lookup(cap)
        assert owner_rights == ALL_RIGHTS

    def test_tampered_capability_rejected_despite_warm_memo(self, table):
        cap = table.create("x")
        table.lookup(cap)  # memoized
        with pytest.raises(InvalidCapability):
            table.lookup(cap.with_rights(0x0F))

    def test_memo_cleared_on_refresh(self, table):
        cap = table.create("x")
        for _ in range(5):
            table.lookup(cap)  # hot in the memo
        table.refresh(cap)
        with pytest.raises(InvalidCapability):
            table.lookup(cap)  # must NOT be served from the stale memo

    def test_memo_does_not_survive_destroy_and_recreate(self, table):
        cap = table.create("old")
        table.lookup(cap)
        table.destroy(cap)
        recreated = table.create("new")
        assert recreated.object == cap.object
        with pytest.raises(InvalidCapability):
            table.lookup(cap)

    def test_memo_bounded(self, table):
        from repro.core.registry import VERIFIED_MEMO_MAX

        cap = table.create("x")
        masks = [Rights(1 << (i % 8)) for i in range(VERIFIED_MEMO_MAX + 8)]
        restricted = [table.restrict(cap, m) for m in masks]
        for weak in restricted:
            table.lookup(weak)
        entry, _ = table.lookup(cap)
        assert len(entry.verified) <= VERIFIED_MEMO_MAX
        # Evicted pairs simply re-verify; all capabilities still work.
        for weak, m in zip(restricted, masks):
            _, rights = table.lookup(weak)
            assert rights == m

    def test_memo_hit_still_enforces_required_rights(self, table):
        cap = table.create("x")
        weak = table.restrict(cap, Rights(0x01))
        table.lookup(weak)  # memoized with rights 0x01
        table.lookup(weak, required=Rights(0x01))
        with pytest.raises(PermissionDenied):
            table.lookup(weak, required=Rights(0x02))

    def test_memo_hit_counts_as_touch(self):
        table = ObjectTable(
            scheme_by_name("xor-oneway"),
            PORT,
            rng=RandomSource(seed=52),
            default_lifetime=2,
        )
        cap = table.create("busy")
        table.lookup(cap)  # slow path: memoize
        for _ in range(6):
            table.age()
            table.lookup(cap)  # memo hits must also prove liveness
        assert len(table) == 1


class TestShardedAging:
    """age() sweeps stripe by stripe — no stop-the-world lock — and a
    sweep can never expire an entry out from under a concurrent refresh."""

    def test_age_proceeds_shard_by_shard_while_one_stripe_is_held(self):
        scheme = scheme_by_name("xor-oneway")
        armed = threading.Event()
        entered = threading.Event()
        gate = threading.Event()

        class GatedScheme(type(scheme)):
            def new_secret(self, rng):
                if armed.is_set():
                    entered.set()
                    gate.wait(timeout=10.0)
                return super().new_secret(rng)

        table = ObjectTable(
            GatedScheme(),
            PORT,
            rng=RandomSource(seed=53),
            default_lifetime=2,
        )
        # One object per stripe: numbers 0..15 land on shards 0..15.
        caps = [table.create(i) for i in range(16)]
        table.age()  # every lifetime now 1
        armed.set()
        refreshed = []
        refresher = threading.Thread(
            target=lambda: refreshed.append(table.refresh(caps[15]))
        )
        refresher.start()
        assert entered.wait(timeout=10.0)  # stripe 15 is now held
        expired_box = []
        ager = threading.Thread(target=lambda: expired_box.append(table.age()))
        ager.start()
        # The sweep finishes shards 0..14 while stripe 15 is held by the
        # in-flight refresh: those objects expire without waiting.
        deadline = time.time() + 10.0
        while time.time() < deadline and any(n in table for n in range(15)):
            time.sleep(0.001)
        assert not any(n in table for n in range(15))
        assert ager.is_alive()  # blocked on stripe 15, not on a global lock
        gate.set()
        refresher.join(timeout=10.0)
        ager.join(timeout=10.0)
        assert not refresher.is_alive() and not ager.is_alive()
        # The refreshed object survived the sweep: its refresh (a use)
        # reset the lifetime the sweep then decremented to 1, not 0.
        assert 15 in table
        entry, _ = table.lookup(refreshed[0])
        assert entry.generation == 1
        assert sorted(e.number for e in expired_box[0]) == list(range(15))

    def test_concurrent_sweeps_and_touches_never_misfire(self):
        table = ObjectTable(
            scheme_by_name("xor-oneway"),
            PORT,
            rng=RandomSource(seed=54),
            default_lifetime=150,
        )
        survivor = table.create("outlives-100-sweeps")
        doomed = ObjectTable(
            scheme_by_name("xor-oneway"),
            PORT,
            rng=RandomSource(seed=55),
            default_lifetime=50,
        )
        doomed_cap = doomed.create("dies-within-100-sweeps")
        hot = table.create("touched-throughout")
        errors = []
        stop = threading.Event()

        def toucher():
            try:
                while not stop.is_set():
                    table.lookup(hot)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def ager(target, sweeps):
            try:
                for _ in range(sweeps):
                    target.age()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        touch_threads = [threading.Thread(target=toucher) for _ in range(2)]
        age_threads = [
            threading.Thread(target=ager, args=(table, 25)) for _ in range(4)
        ] + [threading.Thread(target=ager, args=(doomed, 25)) for _ in range(4)]
        for t in touch_threads + age_threads:
            t.start()
        for t in age_threads:
            t.join(timeout=30.0)
        stop.set()
        for t in touch_threads:
            t.join(timeout=30.0)
        assert not errors
        # 100 sweeps < lifetime 150: the untouched survivor must still be
        # there (a double-decrementing stale-snapshot bug kills it early);
        # 100 sweeps > lifetime 50: the doomed object must be gone.
        assert survivor.object in table
        assert hot.object in table
        assert doomed_cap.object not in doomed


class TestConcurrentShardedOps:
    def test_eight_thread_mixed_storm(self):
        """8 threads × disjoint objects: create/lookup/refresh/destroy
        storms over distinct stripes must neither error nor cross wires."""
        table = ObjectTable(
            scheme_by_name("xor-oneway"), PORT, rng=RandomSource(seed=56)
        )
        n_threads = 8
        per_thread = 60
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(tid):
            try:
                barrier.wait()
                for i in range(per_thread):
                    cap = table.create((tid, i))
                    entry, rights = table.lookup(cap)
                    assert entry.data == (tid, i)
                    assert rights == ALL_RIGHTS
                    fresh = table.refresh(cap)
                    with pytest.raises(InvalidCapability):
                        table.lookup(cap)
                    if i % 3 == 0:
                        assert table.destroy(fresh) == (tid, i)
                    else:
                        assert table.data(fresh) == (tid, i)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors
        assert not any(t.is_alive() for t in threads)
        # Every surviving object is one a worker chose to keep.
        survivors = n_threads * sum(
            1 for i in range(per_thread) if i % 3 != 0
        )
        assert len(table) == survivors


class TestRevocationFanOutSharded:
    def test_eight_thread_refresh_destroy_age_purge_sealer_caches(self):
        """The full wiring under concurrency: refresh/destroy/age on
        shard k fires the fan-out which purges the sealer's §2.4 caches
        for that object only — from 8 threads at once, with a control
        object proving nothing else is swept."""
        from repro.softprot.cache import (
            ClientCapabilityCache,
            ServerCapabilityCache,
        )
        from repro.softprot.matrix import CapabilitySealer, KeyMatrix

        matrix = KeyMatrix(rng=RandomSource(seed=57))
        client = CapabilitySealer(
            matrix.view(1),
            client_cache=ClientCapabilityCache(max_entries=1024, shards=8),
        )
        server = CapabilitySealer(
            matrix.view(2),
            server_cache=ServerCapabilityCache(max_entries=1024, shards=8),
        )
        table = ObjectTable(
            scheme_by_name("xor-oneway"), PORT, rng=RandomSource(seed=58)
        )
        # Mirror the full wiring: the server purges its own caches via the
        # table hook; the client purges on learning of the revocation.
        table.on_revocation(
            lambda port, number, _gen, _shard: (
                server.invalidate_object(port, number),
                client.invalidate_object(port, number),
            )
        )
        control = table.create("control")
        control_sealed = client.seal(control, dst=2)
        assert server.unseal(control_sealed, src=1) == control

        n_threads = 8
        rounds = 40
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(tid):
            try:
                barrier.wait()
                for r in range(rounds):
                    cap = table.create((tid, r))
                    sealed = client.seal(cap, dst=2)
                    assert server.unseal(sealed, src=1) == cap
                    assert server.server_cache.lookup(sealed, 1) == cap
                    if r % 2:
                        table.refresh(cap)
                    else:
                        table.destroy(cap)
                    # The fan-out purged exactly this object's triples.
                    assert server.server_cache.lookup(sealed, 1) is None
                    assert client.client_cache.lookup(cap, 2) is None
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors
        assert not any(t.is_alive() for t in threads)
        # Revocations elsewhere never touched the control object's triples.
        assert server.server_cache.lookup(control_sealed, 1) == control
        assert client.client_cache.lookup(control, 2) == control_sealed

    def test_age_expiry_purges_caches_per_object(self):
        from repro.softprot.cache import (
            ClientCapabilityCache,
            ServerCapabilityCache,
        )
        from repro.softprot.matrix import CapabilitySealer, KeyMatrix

        matrix = KeyMatrix(rng=RandomSource(seed=59))
        client = CapabilitySealer(
            matrix.view(1), client_cache=ClientCapabilityCache(shards=8)
        )
        sealer = CapabilitySealer(
            matrix.view(2), server_cache=ServerCapabilityCache(shards=8)
        )
        table = ObjectTable(
            scheme_by_name("xor-oneway"),
            PORT,
            rng=RandomSource(seed=60),
            default_lifetime=2,
        )
        table.on_revocation(
            lambda port, number, _gen, _shard: sealer.invalidate_object(
                port, number
            )
        )
        caps = [table.create(i) for i in range(10)]
        sealed = [client.seal(cap, dst=2) for cap in caps]
        for blob, cap in zip(sealed, caps):
            assert sealer.unseal(blob, src=1) == cap
        table.age()  # every lifetime now 1
        table.lookup(caps[0])  # touched: resets to 2, survives the sweep
        table.age()
        assert sealer.server_cache.lookup(sealed[0], 1) == caps[0]
        for blob in sealed[1:]:
            assert sealer.server_cache.lookup(blob, 1) is None
