"""Tests for the server-side object table (creation, lookup, revocation)."""

import threading

import pytest

from repro.core.ports import Port
from repro.core.registry import ObjectTable
from repro.core.rights import ALL_RIGHTS, Rights
from repro.core.schemes import scheme_by_name
from repro.crypto.randomsrc import RandomSource
from repro.errors import InvalidCapability, NoSuchObject, PermissionDenied

PORT = Port(0x0BADC0FFEE00)


@pytest.fixture
def table():
    return ObjectTable(
        scheme_by_name("xor-oneway"), PORT, rng=RandomSource(seed=44)
    )


class TestCreateLookup:
    def test_create_returns_owner_capability(self, table):
        cap = table.create({"payload": 1})
        assert cap.port == PORT
        entry, rights = table.lookup(cap)
        assert entry.data == {"payload": 1}
        assert rights == ALL_RIGHTS

    def test_object_numbers_sequential(self, table):
        caps = [table.create(i) for i in range(5)]
        assert [c.object for c in caps] == [0, 1, 2, 3, 4]
        assert len(table) == 5

    def test_lookup_unknown_object(self, table):
        cap = table.create("x")
        ghost = cap.with_rights(cap.rights)  # copy
        table.destroy(cap)
        with pytest.raises(NoSuchObject):
            table.lookup(ghost)

    def test_lookup_requires_rights(self, table):
        cap = table.create("x")
        weak = table.restrict(cap, Rights(0x01))
        table.lookup(weak, required=Rights(0x01))  # fine
        with pytest.raises(PermissionDenied):
            table.lookup(weak, required=Rights(0x02))

    def test_lookup_rejects_tampering(self, table):
        cap = table.create("x")
        with pytest.raises(InvalidCapability):
            table.lookup(cap.with_rights(0x0F))

    def test_data_shorthand(self, table):
        cap = table.create("hello")
        assert table.data(cap) == "hello"

    def test_touch_counting(self, table):
        cap = table.create("x")
        entry, _ = table.lookup(cap)
        before = entry.touches
        table.lookup(cap)
        assert entry.touches == before + 1


class TestRestrict:
    def test_restricted_capability_works(self, table):
        cap = table.create("x")
        weak = table.restrict(cap, Rights(0b0101))
        _, rights = table.lookup(weak)
        assert rights == Rights(0b0101)

    def test_restrict_of_restrict_shrinks(self, table):
        cap = table.create("x")
        weaker = table.restrict(table.restrict(cap, Rights(0b0111)), Rights(0b0011))
        _, rights = table.lookup(weaker)
        assert rights == Rights(0b0011)

    def test_restrict_unknown_object(self, table):
        cap = table.create("x")
        table.destroy(cap)
        with pytest.raises(NoSuchObject):
            table.restrict(cap, Rights(1))


class TestRevocation:
    """§2.3: changing the stored random number instantly invalidates every
    outstanding capability."""

    def test_refresh_kills_all_outstanding(self, table):
        owner = table.create("precious")
        shared_a = table.restrict(owner, Rights(0x01))
        shared_b = table.restrict(owner, Rights(0x03))
        fresh = table.refresh(owner)
        for dead in (owner, shared_a, shared_b):
            with pytest.raises(InvalidCapability):
                table.lookup(dead)
        entry, rights = table.lookup(fresh)
        assert entry.data == "precious"
        assert rights == ALL_RIGHTS

    def test_refresh_requires_rights(self, table):
        owner = table.create("x")
        weak = table.restrict(owner, Rights(0x01))
        with pytest.raises(PermissionDenied):
            table.refresh(weak)  # default requires ALL rights

    def test_refresh_bumps_generation(self, table):
        owner = table.create("x")
        entry, _ = table.lookup(owner)
        assert entry.generation == 0
        fresh = table.refresh(owner)
        assert entry.generation == 1
        table.refresh(fresh)
        assert entry.generation == 2

    def test_data_survives_refresh(self, table):
        owner = table.create([1, 2, 3])
        fresh = table.refresh(owner)
        assert table.data(fresh) == [1, 2, 3]


class TestDestroy:
    def test_destroy_removes(self, table):
        cap = table.create("x")
        assert table.destroy(cap) == "x"
        assert len(table) == 0

    def test_numbers_recycled(self, table):
        cap = table.create("a")
        table.destroy(cap)
        again = table.create("b")
        assert again.object == cap.object

    def test_stale_capability_after_recycle_rejected(self, table):
        # The recycled object gets a fresh random number, so the old
        # capability for the same object number must not validate.
        cap = table.create("old")
        table.destroy(cap)
        table.create("new")
        with pytest.raises(InvalidCapability):
            table.lookup(cap)

    def test_destroy_requires_rights(self, table):
        cap = table.create("x")
        weak = table.restrict(cap, Rights(0x01))
        with pytest.raises(PermissionDenied):
            table.destroy(weak)


class TestMintFor:
    def test_mint_for_existing(self, table):
        cap = table.create("x")
        reminted = table.mint_for(cap.object, Rights(0x03))
        _, rights = table.lookup(reminted)
        assert rights == Rights(0x03)

    def test_mint_for_missing(self, table):
        with pytest.raises(NoSuchObject):
            table.mint_for(123)


class TestCapacityAndConcurrency:
    def test_table_capacity(self):
        table = ObjectTable(
            scheme_by_name("xor-oneway"),
            PORT,
            rng=RandomSource(seed=1),
            max_objects=2,
        )
        table.create(1)
        table.create(2)
        with pytest.raises(NoSuchObject):
            table.create(3)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            ObjectTable(scheme_by_name("simple"), PORT, max_objects=0)

    def test_concurrent_creates_unique_numbers(self, table):
        numbers = []
        errors = []

        def worker():
            try:
                for _ in range(50):
                    numbers.append(table.create("x").object)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(set(numbers)) == 200

    def test_concurrent_lookups_lose_no_touches(self, table):
        """Regression: lookup() used to bump ``touches`` *after* releasing
        the table lock, so concurrent lookups lost read-modify-write
        updates.  With the bookkeeping back under the lock the count is
        exact."""
        cap = table.create("hot")
        per_thread = 500
        n_threads = 4
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker():
            try:
                barrier.wait()
                for _ in range(per_thread):
                    table.lookup(cap)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        entry, _ = table.lookup(cap)
        assert entry.touches == per_thread * n_threads + 1

    def test_lookup_straddling_destroy_does_not_resurrect(self):
        """Regression: a lookup whose verify straddles a concurrent
        destroy must not touch the removed entry back to life (or crash);
        it reports NoSuchObject like any later lookup would."""
        scheme = scheme_by_name("xor-oneway")
        gate = threading.Event()
        entered = threading.Event()

        class GatedScheme(type(scheme)):
            def verify(self, secret, rights, check):
                entered.set()
                gate.wait(timeout=5.0)
                return super().verify(secret, rights, check)

        table = ObjectTable(GatedScheme(), PORT, rng=RandomSource(seed=45))
        cap = table.create("doomed")
        results = []

        def reader():
            try:
                results.append(table.lookup(cap))
            except NoSuchObject:
                results.append("gone")

        thread = threading.Thread(target=reader)
        thread.start()
        assert entered.wait(timeout=5.0)
        # destroy() validates the capability itself, so it must not block
        # on the reader's gate: open it for everyone, then destroy.
        gate.set()
        table.destroy(cap)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        # Whatever the reader observed (a validated entry just before the
        # destroy, or NoSuchObject just after), the object stays dead.
        assert cap.object not in table
        with pytest.raises(NoSuchObject):
            table.lookup(cap)

    def test_lookup_straddling_refresh_revalidates(self):
        """A lookup that validated against a secret which died mid-flight
        (a racing refresh) must re-validate and reject the now-revoked
        capability, never bless it with the stale verdict."""
        scheme = scheme_by_name("xor-oneway")
        gate = threading.Event()
        entered = threading.Event()
        first_verify = threading.Event()

        class GatedScheme(type(scheme)):
            def verify(self, secret, rights, check):
                if not first_verify.is_set():
                    first_verify.set()
                    entered.set()
                    gate.wait(timeout=5.0)
                return super().verify(secret, rights, check)

        table = ObjectTable(GatedScheme(), PORT, rng=RandomSource(seed=46))
        cap = table.create("refreshed")
        outcome = []

        def reader():
            try:
                outcome.append(table.lookup(cap)[0])
            except InvalidCapability:
                outcome.append("revoked")

        thread = threading.Thread(target=reader)
        thread.start()
        assert entered.wait(timeout=5.0)
        table.refresh(cap)  # second verify call: gate already recorded
        gate.set()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert outcome == ["revoked"]


class TestSchemeIntegration:
    @pytest.mark.parametrize("name", ["simple", "encrypted", "xor-oneway", "commutative"])
    def test_full_lifecycle_per_scheme(self, name):
        table = ObjectTable(
            scheme_by_name(name), PORT, rng=RandomSource(seed=7)
        )
        cap = table.create("obj")
        entry, rights = table.lookup(cap)
        assert entry.data == "obj"
        fresh = table.refresh(cap)
        with pytest.raises(InvalidCapability):
            table.lookup(cap)
        assert table.destroy(fresh) == "obj"
