"""Tests for the ObjectServer worker pool (sharded multi-worker dispatch).

The pool is opt-in (``workers=N``): each delivered batch is partitioned
by object number, partitions run on pool threads, and requests naming
the same object never run concurrently — handlers stay single-threaded
per object with no locking of their own, while the object table's lock
stripes make the shared validation path safe.
"""

import threading
import time

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.errors import STATUS_OK
from repro.ipc import stdops
from repro.ipc.rpc import trans, trans_many
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic

OP_RECORD = USER_BASE
OP_SLOW = USER_BASE + 1


class RecordingServer(ObjectServer):
    """Echoes, while recording per-object concurrency."""

    service_name = "worker pool probe"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._probe_lock = threading.Lock()
        self.active_by_object = {}
        self.max_active_by_object = {}
        self.max_active_global = 0
        self.handled_threads = set()

    def _enter(self, number):
        with self._probe_lock:
            active = self.active_by_object.get(number, 0) + 1
            self.active_by_object[number] = active
            peak = self.max_active_by_object.get(number, 0)
            if active > peak:
                self.max_active_by_object[number] = active
            total = sum(self.active_by_object.values())
            if total > self.max_active_global:
                self.max_active_global = total
            self.handled_threads.add(threading.get_ident())

    def _exit(self, number):
        with self._probe_lock:
            self.active_by_object[number] -= 1

    @command(OP_RECORD)
    def _record(self, ctx):
        entry, _ = ctx.lookup()
        self._enter(entry.number)
        try:
            return ctx.ok(data=ctx.request.data)
        finally:
            self._exit(entry.number)

    @command(OP_SLOW)
    def _slow(self, ctx):
        entry, _ = ctx.lookup()
        self._enter(entry.number)
        try:
            # Long enough that pool threads overlap (sleep drops the GIL).
            time.sleep(0.002)
            return ctx.ok(data=ctx.request.data)
        finally:
            self._exit(entry.number)


@pytest.fixture
def world():
    net = SimNetwork(synchronous=False, auto_drain=False)
    server = RecordingServer(
        Nic(net), rng=RandomSource(seed=3), workers=4
    ).start()
    client = Nic(net)
    return net, server, client


class TestWorkerPool:
    def test_batch_replies_all_correct(self, world):
        net, server, client = world
        caps = [server.table.create("obj-%d" % i) for i in range(8)]
        requests = [
            Message(
                command=OP_RECORD,
                capability=caps[i % len(caps)],
                data=b"payload-%d" % i,
            )
            for i in range(32)
        ]
        replies = trans_many(
            client, server.put_port, requests, RandomSource(seed=4)
        )
        assert [r.data for r in replies] == [r.data for r in requests]
        assert all(r.status == STATUS_OK for r in replies)

    def test_same_object_never_concurrent(self, world):
        net, server, client = world
        caps = [server.table.create("obj-%d" % i) for i in range(8)]
        requests = [
            Message(command=OP_SLOW, capability=caps[i % len(caps)], data=b"x")
            for i in range(32)
        ]
        replies = trans_many(
            client, server.put_port, requests, RandomSource(seed=5), timeout=30.0
        )
        assert len(replies) == 32
        # The affinity invariant: no object's handler ever ran while
        # another invocation for the same object was still in flight.
        assert server.max_active_by_object
        assert max(server.max_active_by_object.values()) == 1
        # Distinct objects did overlap (sleep drops the GIL, so with 4
        # workers and 8 objects the partitions interleave).
        assert server.max_active_global >= 2
        assert len(server.handled_threads) >= 2

    def test_capability_less_frames_share_serial_bucket(self, world):
        net, server, client = world
        cap = server.table.create("lone")
        requests = [
            Message(command=OP_RECORD, capability=cap, data=b"with-cap"),
            Message(command=OP_RECORD, data=b"no-cap"),  # BadRequest path
            Message(command=stdops.STD_INFO, capability=cap),
        ] * 4
        replies = trans_many(
            client, server.put_port, requests, RandomSource(seed=6)
        )
        assert len(replies) == 12
        for i, reply in enumerate(replies):
            if i % 3 == 1:
                assert reply.status != STATUS_OK  # missing capability
            else:
                assert reply.status == STATUS_OK

    def test_request_counts_still_exact(self, world):
        net, server, client = world
        caps = [server.table.create(i) for i in range(4)]
        requests = [
            Message(command=OP_RECORD, capability=caps[i % 4], data=b"n")
            for i in range(20)
        ]
        trans_many(client, server.put_port, requests, RandomSource(seed=7))
        assert server.request_counts[OP_RECORD] == 20

    def test_stop_shuts_pool_down_and_restart_works(self, world):
        net, server, client = world
        cap = server.table.create("x")
        pool = server._pool
        assert pool is not None
        server.stop()
        assert server._pool is None
        server.start()
        reply = trans(
            client,
            server.put_port,
            Message(command=OP_RECORD, capability=cap, data=b"again"),
            RandomSource(seed=8),
        )
        assert reply.data == b"again"
        server.stop()

    def test_single_frame_batches_skip_the_pool(self):
        """On a synchronous network every delivery is a batch of one;
        the pool must not add overhead (or thread hops) to that path."""
        net = SimNetwork()
        server = RecordingServer(
            Nic(net), rng=RandomSource(seed=9), workers=4
        ).start()
        client = Nic(net)
        cap = server.table.create("solo")
        reply = trans(
            client,
            server.put_port,
            Message(command=OP_RECORD, capability=cap, data=b"one"),
            RandomSource(seed=10),
        )
        assert reply.data == b"one"
        assert server.handled_threads == {threading.get_ident()}
        server.stop()

    def test_workers_disabled_by_default(self):
        net = SimNetwork()
        server = RecordingServer(Nic(net), rng=RandomSource(seed=11)).start()
        assert server._pool is None
        server.stop()


class TestWorkerPoolWithStdOps:
    def test_refresh_under_pool_revokes(self, world):
        """STD_REFRESH dispatched through the pool still revokes: the
        old capability fails afterwards, the fresh one works."""
        net, server, client = world
        cap = server.table.create("precious")
        rng = RandomSource(seed=12)
        refresh = Message(command=stdops.STD_REFRESH, capability=cap)
        use_old = Message(command=OP_RECORD, capability=cap, data=b"old")
        replies = trans_many(
            client, server.put_port, [refresh], rng
        )
        fresh = replies[0].capability
        assert fresh is not None
        after = trans_many(
            client,
            server.put_port,
            [
                Message(command=OP_RECORD, capability=fresh, data=b"new"),
                use_old,
            ],
            rng,
        )
        assert after[0].status == STATUS_OK
        assert after[1].status != STATUS_OK  # revoked


class TestSealedBatchesStaySerial:
    def test_mixed_sealed_and_plaintext_batch_keeps_object_affinity(self):
        """Regression: a sealed request's object is unknown until
        unsealed, so a batch mixing sealed and plaintext requests must
        be dispatched serially — otherwise a sealed WRITE for object k
        (serial bucket) and a plaintext WRITE for object k (bucket
        k mod workers) could run concurrently."""
        from repro.softprot.cache import (
            ClientCapabilityCache,
            ServerCapabilityCache,
        )
        from repro.softprot.matrix import CapabilitySealer, KeyMatrix

        net = SimNetwork(synchronous=False, auto_drain=False)
        matrix = KeyMatrix(rng=RandomSource(seed=20))
        server_nic = Nic(net)
        server = RecordingServer(
            server_nic,
            rng=RandomSource(seed=21),
            sealer=CapabilitySealer(
                matrix.view(server_nic.address),
                server_cache=ServerCapabilityCache(),
            ),
            workers=4,
        ).start()
        client_nic = Nic(net)
        client_sealer = CapabilitySealer(
            matrix.view(client_nic.address),
            client_cache=ClientCapabilityCache(),
        )
        caps = [server.table.create("obj-%d" % i) for i in range(4)]
        requests = []
        for i in range(16):
            plain = Message(
                command=OP_SLOW, capability=caps[i % 4], data=b"p%d" % i
            )
            if i % 2:
                requests.append(
                    client_sealer.seal_message(plain, server_nic.address)
                )
            else:
                requests.append(plain)
        replies = trans_many(
            client_nic,
            server.put_port,
            requests,
            RandomSource(seed=22),
            timeout=60.0,
        )
        assert len(replies) == 16
        assert all(r.status == STATUS_OK for r in replies)
        # Serial dispatch: never two handlers in flight, one thread only.
        assert server.max_active_global == 1
        assert max(server.max_active_by_object.values()) == 1
        assert len(server.handled_threads) == 1
        server.stop()


class TestMultiObjectRequestsStaySerial:
    def test_batch_with_extra_caps_dispatches_serially(self):
        """Regression: a request carrying extra_caps names several
        objects (a bank transfer's payee, a directory install's target),
        so bucketing it by its header capability alone would let it race
        the buckets of the objects it does not key on.  Any such frame
        makes the whole batch serial."""
        net = SimNetwork(synchronous=False, auto_drain=False)
        server = RecordingServer(
            Nic(net), rng=RandomSource(seed=30), workers=4
        ).start()
        client = Nic(net)
        caps = [server.table.create("obj-%d" % i) for i in range(4)]
        requests = []
        for i in range(16):
            changes = {"command": OP_SLOW, "capability": caps[i % 4],
                       "data": b"m%d" % i}
            if i % 3 == 0:
                changes["extra_caps"] = (caps[(i + 1) % 4],)
            requests.append(Message(**changes))
        replies = trans_many(
            client, server.put_port, requests, RandomSource(seed=31),
            timeout=60.0,
        )
        assert len(replies) == 16
        assert all(r.status == STATUS_OK for r in replies)
        assert server.max_active_global == 1
        assert len(server.handled_threads) == 1
        server.stop()


class TestDeferredRepliesUnderPool:
    def test_park_and_release_from_pool_threads(self):
        """DeferredReply.send() fired from a pool thread serializes
        against the dispatching thread's egress; all replies arrive."""
        OP_PARK = USER_BASE + 7
        OP_RELEASE = USER_BASE + 8

        class ParkingServer(ObjectServer):
            service_name = "parking"

            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.parked = []

            @command(OP_PARK)
            def _park(self, ctx):
                ctx.lookup()
                self.parked.append(ctx.defer())
                return None

            @command(OP_RELEASE)
            def _release(self, ctx):
                ctx.lookup()
                while self.parked:
                    self.parked.pop(0).send()
                return ctx.ok(data=b"released")

            @command(OP_SLOW)
            def _slow(self, ctx):
                ctx.lookup()
                time.sleep(0.002)
                return ctx.ok(data=ctx.request.data)

        net = SimNetwork(synchronous=False, auto_drain=False)
        server = ParkingServer(
            Nic(net), rng=RandomSource(seed=32), workers=4
        ).start()
        client = Nic(net)
        cap = server.table.create("lot")
        # Same object throughout: parks and the release share a bucket,
        # so the parked handles exist before the release handler runs —
        # and its sends fire on that pool thread mid-batch.
        requests = [
            Message(command=OP_PARK, capability=cap),
            Message(command=OP_PARK, capability=cap),
            Message(command=OP_RELEASE, capability=cap),
        ]
        # A second object's slow traffic keeps another worker inside the
        # bulk-egress window at the same time.
        other = server.table.create("busy")
        requests += [
            Message(command=OP_SLOW, capability=other, data=b"x")
            for _ in range(5)
        ]
        replies = trans_many(
            client, server.put_port, requests, RandomSource(seed=33),
            timeout=60.0,
        )
        assert len(replies) == 8
        assert all(r.status == STATUS_OK for r in replies)
        assert replies[2].data == b"released"
        server.stop()
