"""Tests for the charging file server: §3.6 quota-by-pricing."""

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.errors import BadRequest, InsufficientFunds
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.servers.bank import R_DEPOSIT, R_INSPECT, R_WITHDRAW, BankClient, BankServer
from repro.servers.charging import ChargingFlatFileServer
from repro.servers.flatfile import FILE_CREATE, FILE_WRITE, FlatFileClient


@pytest.fixture
def world():
    net = SimNetwork()
    server_nic = Nic(net)
    bank = BankServer(Nic(net), rng=RandomSource(seed=1)).start()
    revenue = bank.create_account()
    files = ChargingFlatFileServer(
        server_nic,
        bank_client=BankClient(server_nic, bank.put_port, rng=RandomSource(seed=2)),
        revenue_cap=revenue,
        price=2,
        charge_unit=1024,
        rng=RandomSource(seed=3),
    ).start()
    client_nic = Nic(net)
    bank_client = BankClient(
        client_nic, bank.put_port, rng=RandomSource(seed=4),
        expect_signature=bank.signature_image,
    )
    file_client = FlatFileClient(
        client_nic, files.put_port, rng=RandomSource(seed=5),
        expect_signature=files.signature_image,
    )
    central = bank.create_account({"USD": 100_000}, mint_right=True)
    wallet = bank_client.open_account()
    bank_client.transfer(central, wallet, "USD", 100)
    # The server needs withdraw+deposit on the wallet to charge/refund;
    # a real client would keep inspect too.
    pay_cap = bank_client.restrict(wallet, R_WITHDRAW | R_DEPOSIT | R_INSPECT)
    return bank, bank_client, files, file_client, wallet, pay_cap, revenue


class TestCharging:
    def test_create_charges(self, world):
        bank, bank_client, _, file_client, wallet, pay_cap, revenue = world
        file_client.call(FILE_CREATE, data=b"x" * 100, extra_caps=(pay_cap,))
        # 100 bytes -> 1 unit -> 2 dollars.
        assert bank_client.balance(wallet)["USD"] == 98
        assert bank.table.data(revenue).balances == {"USD": 2}

    def test_growth_charges_by_kiloblock(self, world):
        _, bank_client, _, file_client, wallet, pay_cap, _ = world
        cap = file_client.call(
            FILE_CREATE, data=b"", extra_caps=(pay_cap,)
        ).capability
        balance_after_create = bank_client.balance(wallet)["USD"]
        file_client.call(
            FILE_WRITE, capability=cap, offset=0, data=b"y" * 3000,
            extra_caps=(pay_cap,),
        )
        # Growth from 0 to 3000 bytes = 3 units at 2 dollars each (the
        # creation fee was a flat 1 unit on top).
        assert bank_client.balance(wallet)["USD"] == balance_after_create - 6

    def test_rewrite_within_paid_size_is_free(self, world):
        _, bank_client, _, file_client, wallet, pay_cap, _ = world
        cap = file_client.call(
            FILE_CREATE, data=b"z" * 500, extra_caps=(pay_cap,)
        ).capability
        before = bank_client.balance(wallet)["USD"]
        file_client.write(cap, 0, b"overwrite")
        assert bank_client.balance(wallet)["USD"] == before

    def test_create_without_payment_refused(self, world):
        _, _, _, file_client, _, _, _ = world
        with pytest.raises(BadRequest):
            file_client.create(b"freeloader")


class TestQuota:
    def test_running_out_of_dollars_is_the_quota(self, world):
        """'Quotas can be implemented by limiting how many dollars each
        client has.'"""
        _, bank_client, _, file_client, wallet, pay_cap, _ = world
        cap = file_client.call(
            FILE_CREATE, data=b"", extra_caps=(pay_cap,)
        ).capability
        # Wallet holds 98 dollars = 49 more units of 1024 bytes.
        with pytest.raises(InsufficientFunds):
            file_client.call(
                FILE_WRITE, capability=cap, offset=0,
                data=b"x" * (60 * 1024 - 1), extra_caps=(pay_cap,),
            )

    def test_quota_failure_writes_nothing(self, world):
        _, _, _, file_client, _, pay_cap, _ = world
        cap = file_client.call(
            FILE_CREATE, data=b"", extra_caps=(pay_cap,)
        ).capability
        try:
            file_client.call(
                FILE_WRITE, capability=cap, offset=0,
                data=b"x" * (60 * 1024 - 1), extra_caps=(pay_cap,),
            )
        except InsufficientFunds:
            pass
        assert file_client.size(cap) == 0


class TestRefund:
    def test_destroy_refunds(self, world):
        """'Returning the resource might result in the client getting his
        money back' (disk blocks, unlike typesetter pages)."""
        _, bank_client, _, file_client, wallet, pay_cap, _ = world
        cap = file_client.call(
            FILE_CREATE, data=b"x" * 2048, extra_caps=(pay_cap,)
        ).capability
        assert bank_client.balance(wallet)["USD"] == 96
        file_client.destroy(cap)
        assert bank_client.balance(wallet)["USD"] == 100

    def test_no_refund_server(self):
        """Typesetter-page mode: refund_on_destroy=False keeps the money."""
        net = SimNetwork()
        server_nic = Nic(net)
        bank = BankServer(Nic(net), rng=RandomSource(seed=11)).start()
        revenue = bank.create_account()
        files = ChargingFlatFileServer(
            server_nic,
            bank_client=BankClient(server_nic, bank.put_port,
                                   rng=RandomSource(seed=12)),
            revenue_cap=revenue,
            price=1,
            refund_on_destroy=False,
            rng=RandomSource(seed=13),
        ).start()
        client_nic = Nic(net)
        bank_client = BankClient(client_nic, bank.put_port,
                                 rng=RandomSource(seed=14))
        file_client = FlatFileClient(client_nic, files.put_port,
                                     rng=RandomSource(seed=15))
        central = bank.create_account({"USD": 50}, mint_right=True)
        wallet = bank_client.open_account()
        bank_client.transfer(central, wallet, "USD", 10)
        cap = file_client.call(
            FILE_CREATE, data=b"page", extra_caps=(wallet,)
        ).capability
        assert bank_client.balance(wallet)["USD"] == 9
        file_client.destroy(cap)
        assert bank_client.balance(wallet)["USD"] == 9  # no refund
