"""The event-loop delivery engine: queueing, fairness, overload, compat.

Deferred delivery must preserve every externally visible contract of the
synchronous simulator (admission semantics, §2.4 source stamping, the
routing index's leak discipline) while adding what the synchronous model
cannot express: frames genuinely *in flight*, per-port queue depths,
drops under overload, and many transactions outstanding at once.
"""

import pytest

from repro.core.ports import Port, PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.errors import RPCTimeout
from repro.ipc.rpc import AsyncTrans, trans, trans_many
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic


class Echo(ObjectServer):
    service_name = "echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


class TestDeferredDelivery:
    def test_send_is_enqueue_until_pumped(self):
        net = SimNetwork(synchronous=False, auto_drain=False)
        a, b = Nic(net), Nic(net)
        wire = b.listen(Port(5))
        assert a.put(Message(dest=wire))
        assert b.poll(Port(5)) is None  # not delivered yet
        assert net.pending == 1
        assert net.pump() == 1
        assert b.poll(Port(5)) is not None
        assert net.pending == 0

    def test_send_still_reports_admission(self):
        net = SimNetwork(synchronous=False, auto_drain=False)
        a = Nic(net)
        assert not a.put(Message(dest=Port(404)))
        assert net.frames_dropped == 1
        assert net.pending == 0

    def test_unicast_admission_checked_against_filter(self):
        net = SimNetwork(synchronous=False, auto_drain=False)
        a, b = Nic(net), Nic(net)
        b.listen(Port(5))
        # Unicast to a machine without a GET on that port is refused.
        assert not a.put(Message(dest=Port(6)), dst_machine=b.address)

    def test_dispatch_rechecks_live_filters(self):
        # Admitted at enqueue, but the listener withdraws its GET before
        # the pump: the frame is dropped like a packet to a dead host.
        net = SimNetwork(synchronous=False, auto_drain=False)
        a, b = Nic(net), Nic(net)
        b.listen(Port(5))
        assert a.put(Message(dest=b.fbox.listen_port(Port(5))))
        b.unlisten(Port(5))
        assert net.pump() == 1
        assert net.loop.dropped_dead == 1
        assert net.frames_dropped == 1

    def test_dispatch_survives_detach_of_target(self):
        net = SimNetwork(synchronous=False, auto_drain=False)
        a, b = Nic(net), Nic(net)
        wire = b.listen(Port(5))
        assert a.put(Message(dest=wire), dst_machine=b.address)
        net.detach(b.address)
        assert net.pump() == 1
        assert net.loop.dropped_dead == 1

    def test_pump_budget_and_rotation(self):
        net = SimNetwork(synchronous=False, auto_drain=False)
        a = Nic(net)
        r1, r2 = Nic(net), Nic(net)
        w1, w2 = r1.listen(Port(1)), r2.listen(Port(2))
        for _ in range(3):
            a.put(Message(dest=w1))
            a.put(Message(dest=w2))
        # Budgeted pump alternates ports: after 2 dispatches each port
        # has received exactly one frame.
        assert net.pump(2) == 2
        assert r1.pending(Port(1)) == 1
        assert r2.pending(Port(2)) == 1
        assert net.run() == 4

    def test_queue_depth_visible(self):
        net = SimNetwork(synchronous=False, auto_drain=False)
        a, b = Nic(net), Nic(net)
        wire = b.listen(Port(5))
        for _ in range(7):
            a.put(Message(dest=wire))
        assert net.loop.depth(wire) == 7
        assert net.loop.max_depth_seen == 7
        assert net.stats()["scheduler"]["pending"] == 7

    def test_overload_drops_are_counted(self):
        net = SimNetwork(synchronous=False, auto_drain=False, max_queue_depth=4)
        a, b = Nic(net), Nic(net)
        wire = b.listen(Port(5))
        results = [a.put(Message(dest=wire)) for _ in range(10)]
        # Overflow is a silent loss at the sender (the port IS admitted;
        # a real network drops in a full buffer without telling anyone) —
        # visible only in the counters and the missing deliveries.
        assert results == [True] * 10
        assert net.loop.dropped_overflow == 6
        assert net.frames_dropped == 6
        assert net.run() == 4

    def test_overflow_not_misreported_as_port_not_located(self):
        from repro.errors import PortNotLocated, RPCTimeout

        net = SimNetwork(synchronous=False, auto_drain=False, max_queue_depth=1)
        nic = Nic(net)
        wire = nic.serve(PrivatePort(5), lambda frame: None)
        Nic(net).put(Message(dest=wire))  # fill the queue
        client = Nic(net)
        # A server IS listening; a full queue must surface as loss (a
        # timeout), never as PortNotLocated.
        with pytest.raises(RPCTimeout):
            trans(client, wire, Message(), RandomSource(seed=1), timeout=0.05)

    def test_no_queue_residue_after_drain(self):
        net = SimNetwork(synchronous=False, auto_drain=False)
        a, b = Nic(net), Nic(net)
        wire = b.listen(Port(5))
        for _ in range(5):
            a.put(Message(dest=wire))
        net.run()
        assert net.loop._queues == {}
        assert not net.loop._ready

    def test_raising_handler_keeps_remainder_queued(self):
        # A per-frame handler that raises aborts the pump with only its
        # own frame consumed; the rest stay queued for the next pump.
        net = SimNetwork(synchronous=False, auto_drain=False)
        a, b = Nic(net), Nic(net)
        taken = []

        def handler(frame):
            taken.append(frame)
            raise RuntimeError("handler crash")

        wire = b.serve(PrivatePort(5), handler)
        for _ in range(5):
            a.put(Message(dest=wire))
        with pytest.raises(RuntimeError):
            net.pump()
        assert len(taken) == 1
        assert net.pending == 4
        with pytest.raises(RuntimeError):
            net.pump()
        assert len(taken) == 2
        assert net.pending == 3

    def test_source_still_unforgeable(self):
        net = SimNetwork(synchronous=False, auto_drain=False)
        a, b = Nic(net), Nic(net)
        wire = b.listen(Port(5))
        a.put(Message(dest=wire))
        net.run()
        assert b.poll(Port(5)).src == a.address


class TestAutoDrainCompat:
    def test_blocking_trans_unchanged(self):
        net = SimNetwork(synchronous=False)  # auto_drain defaults on
        server = Echo(Nic(net), rng=RandomSource(seed=1)).start()
        client = Nic(net)
        reply = trans(client, server.put_port, Message(command=USER_BASE,
                      data=b"x"), RandomSource(seed=2))
        assert reply.data == b"x"
        assert net.pending == 0

    def test_round_robin_across_replicas(self):
        net = SimNetwork(synchronous=False)
        first = Echo(Nic(net), rng=RandomSource(seed=1)).start()
        second = Echo(Nic(net), rng=RandomSource(seed=2),
                      get_port=first.get_port,
                      signature=first.signature).start()
        client = Nic(net)
        rng = RandomSource(seed=3)
        for _ in range(8):
            trans(client, first.put_port, Message(command=USER_BASE), rng)
        assert first.request_counts[USER_BASE] == 4
        assert second.request_counts[USER_BASE] == 4

    def test_handler_sends_enqueue_without_recursion(self):
        # While the loop is draining, a handler's own put must enqueue,
        # not recurse — the loop's drain flag guards re-entry.
        net = SimNetwork(synchronous=False)
        depths = []
        nic = Nic(net)

        def handler(frame):
            depths.append(net.loop._draining)
            nic.put(frame.message.reply_to())

        nic.serve(PrivatePort(5), handler)
        client = Nic(net)
        reply = trans(client, nic.fbox.listen_port(Port(5)), Message(),
                      RandomSource(seed=1))
        assert reply.is_reply
        assert depths == [True]


class TestDeferredServerReplies:
    def test_deferred_reply_answers_later(self):
        net = SimNetwork(synchronous=False, auto_drain=False)

        class Parked(ObjectServer):
            service_name = "parked"

            def __init__(self, *a, **k):
                super().__init__(*a, **k)
                self.parked = []

            @command(USER_BASE)
            def _park(self, ctx):
                self.parked.append(ctx.defer())

        server = Parked(Nic(net), rng=RandomSource(seed=1)).start()
        client = Nic(net)
        call = AsyncTrans(client, server.put_port, Message(command=USER_BASE),
                          rng=RandomSource(seed=2))
        net.run()
        assert call.poll() is None  # request handled, reply parked
        assert len(server.parked) == 1
        server.parked[0].send()
        net.run()
        assert call.poll() is not None

    def test_out_of_order_replies_land_on_right_ports(self):
        net = SimNetwork(synchronous=False, auto_drain=False)

        class LIFO(ObjectServer):
            service_name = "lifo"

            def __init__(self, *a, **k):
                super().__init__(*a, **k)
                self.parked = []

            @command(USER_BASE)
            def _park(self, ctx):
                self.parked.append((ctx.defer(), ctx.request.data))

            @command(USER_BASE + 1)
            def _release(self, ctx):
                # Answer everything parked, newest first.
                while self.parked:
                    handle, data = self.parked.pop()
                    handle.send(handle.ctx.ok(data=data))
                return ctx.ok()

        server = LIFO(Nic(net), rng=RandomSource(seed=1)).start()
        client = Nic(net)
        rng = RandomSource(seed=2)
        calls = [
            AsyncTrans(client, server.put_port,
                       Message(command=USER_BASE, data=b"c%d" % i), rng=rng)
            for i in range(3)
        ]
        net.run()
        trans(client, server.put_port, Message(command=USER_BASE + 1),
              RandomSource(seed=3))
        # Replies were sent in reverse order, yet each lands on its own
        # transaction's fresh reply port.
        assert [c.result().data for c in calls] == [b"c0", b"c1", b"c2"]

    def test_deferred_reply_sends_once(self):
        net = SimNetwork(synchronous=False)
        handles = []

        class Once(ObjectServer):
            service_name = "once"

            @command(USER_BASE)
            def _park(self, ctx):
                handles.append(ctx.defer())

        server = Once(Nic(net), rng=RandomSource(seed=1)).start()
        client = Nic(net)
        call = AsyncTrans(client, server.put_port, Message(command=USER_BASE),
                          rng=RandomSource(seed=2))
        handles[0].send()
        assert call.result().is_reply
        with pytest.raises(Exception):
            handles[0].send()


class TestPipelinedTimeout:
    def test_unanswered_pipeline_times_out_clean(self):
        net = SimNetwork(synchronous=False, auto_drain=False)
        nic = Nic(net)
        nic.serve(PrivatePort(5), lambda frame: None)  # swallows requests
        client = Nic(net)
        wire = nic.fbox.listen_port(Port(5))
        with pytest.raises(RPCTimeout):
            trans_many(client, wire, [Message() for _ in range(4)],
                       rng=RandomSource(seed=1), timeout=0.05)
        # The failed batch left no reply GETs behind.
        assert len(client._sinks) == 0
        assert set(net._listeners) == {wire}


class TestBatchLane:
    """The fused trans_many lane must be behavior-identical to N
    one-at-a-time AsyncTrans — only the bookkeeping is batched."""

    def test_fused_and_generic_replies_identical(self):
        payloads = [b"p%d" % i for i in range(12)]

        def run(net):
            server = Echo(Nic(net), rng=RandomSource(seed=1)).start()
            client = Nic(net)
            replies = trans_many(
                client, server.put_port,
                [Message(command=USER_BASE, data=p) for p in payloads],
                rng=RandomSource(seed=2),
            )
            return [(r.data, r.status, r.is_reply) for r in replies]

        deferred = run(SimNetwork(synchronous=False, auto_drain=False))
        synchronous = run(SimNetwork())
        assert deferred == synchronous

    def test_one_way_batch_matches_one_way(self):
        from repro.net.fbox import FBox

        fbox = FBox()
        ports = [Port(100 + i) for i in range(20)]
        assert fbox.one_way_batch(ports) == [fbox.one_way(p) for p in ports]

    def test_put_many_counts_accepted(self):
        net = SimNetwork()
        a, b = Nic(net), Nic(net)
        wire = b.listen(Port(5))
        batch = [Message(dest=wire), Message(dest=Port(404)), Message(dest=wire)]
        assert a.put_many(batch) == 2
        assert b.pending(Port(5)) == 2

    def test_serve_batch_on_synchronous_network(self):
        net = SimNetwork()
        nic = Nic(net)
        runs = []
        wire = nic.serve_batch(PrivatePort(5), runs.append)
        Nic(net).put(Message(dest=wire, data=b"one"))
        # Each synchronous delivery arrives as a batch of one.
        assert [len(r) for r in runs] == [1]
        assert runs[0][0].message.data == b"one"

    def test_bulk_overflow_drops_tail_and_times_out_clean(self):
        net = SimNetwork(synchronous=False, auto_drain=False,
                         max_queue_depth=8)
        server = Echo(Nic(net), rng=RandomSource(seed=1)).start()
        client = Nic(net)
        requests = [Message(command=USER_BASE, data=b"x")] * 12
        with pytest.raises(RPCTimeout):
            trans_many(client, server.put_port, requests,
                       rng=RandomSource(seed=2), timeout=0.05)
        assert net.loop.dropped_overflow == 4
        # Every reply GET was withdrawn on the failure path.
        assert len(client._sinks) == 0

    def test_pipelined_with_client_signature(self):
        net = SimNetwork(synchronous=False, auto_drain=False)
        seen = []

        class Audited(ObjectServer):
            service_name = "audited"

            @command(USER_BASE)
            def _op(self, ctx):
                seen.append(ctx.request.signature)
                return ctx.ok()

        server = Audited(Nic(net), rng=RandomSource(seed=1)).start()
        client = Nic(net)
        client_sig = PrivatePort(777)
        trans_many(client, server.put_port, [Message(command=USER_BASE)] * 3,
                   rng=RandomSource(seed=2), signature=client_sig)
        # The F-box one-ways the signature secret: servers see F(S).
        assert seen == [client_sig.public] * 3

    def test_pipelined_reply_signature_screening(self):
        net = SimNetwork(synchronous=False, auto_drain=False)
        server = Echo(Nic(net), rng=RandomSource(seed=1)).start()
        client = Nic(net)
        replies = trans_many(client, server.put_port,
                             [Message(command=USER_BASE, data=b"y")] * 4,
                             rng=RandomSource(seed=2),
                             expect_signature=server.signature_image)
        assert [r.data for r in replies] == [b"y"] * 4


class TestBroadcastCache:
    def test_broadcast_after_attach_and_detach(self):
        net = SimNetwork()
        sender = Nic(net)
        receivers = [Nic(net) for _ in range(3)]
        seen = []
        for nic in receivers:
            nic.on_broadcast(lambda frame, nic=nic: seen.append(nic.address))
        assert net.broadcast(sender, Message(dest=Port(1))) == 3
        # The cached station list must notice topology changes.
        net.detach(receivers[0].address)
        late = Nic(net)
        late.on_broadcast(lambda frame: seen.append(late.address))
        seen.clear()
        assert net.broadcast(sender, Message(dest=Port(1))) == 3
        assert seen == sorted(seen)
        assert receivers[0].address not in seen
        assert late.address in seen
