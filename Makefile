PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-smoke bench-udp-smoke bench-des-smoke bench-shard-smoke bench-fault-smoke bench-recovery-smoke bench-replica-smoke bench-chaos-smoke

## Tier-1 verification: the full test suite, fail-fast.
test:
	$(PYTHON) -m pytest -x -q

## Quick signal while iterating (no integration-marked tests).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not integration"

## Full throughput suite; refreshes BENCH_throughput.json.
bench:
	$(PYTHON) benchmarks/run_bench.py

## CI-sized benchmark pass: proves the harness runs end to end in a few
## seconds.  Does not overwrite BENCH_throughput.json.
bench-smoke:
	$(PYTHON) benchmarks/run_bench.py --smoke

## Tiny multi-process run of the real-wire UDP benchmark: server in its
## own OS process over loopback, serial vs 16-in-flight pipelined.
bench-udp-smoke:
	$(PYTHON) benchmarks/bench_udp.py --smoke

## Virtual-clock DES benchmark at a fixed seed: asserts deterministic
## replay and the >= 8x pipelining amortization at the paper-era RTT.
bench-des-smoke:
	$(PYTHON) benchmarks/bench_des.py --smoke

## Sharded-data-plane benchmark: contended 8-thread lookups plus the
## queue-overload flood; asserts the drop-and-count and recovery bars.
bench-shard-smoke:
	$(PYTHON) benchmarks/bench_shard.py --smoke

## Fault-injection scenario suite: asserts the lossy DES arm is
## deterministic by double run, goodput at 10% loss stays >= 50% of
## lossless, the retry storm recovers every overflow-dropped request,
## crash recovery succeeds, and retried transfers are exactly-once.
bench-fault-smoke:
	$(PYTHON) benchmarks/bench_fault.py --smoke

## Durability suite: asserts WAL overhead on the echo workload stays
## <= 15%, kill-and-reboot (power failure mid-snapshot, respawn on the
## same disk) recovers every entry with zero double-executions, and the
## scenario is deterministic by double run.
bench-recovery-smoke:
	$(PYTHON) benchmarks/bench_recovery.py --smoke

## Replicated-service suite: 4-OS-process pool aggregate throughput,
## the replica-kill failover storm (asserts every transaction completes
## with zero per-replica double-executions and member-wise location
## invalidation), and the bounded-ingress overload flood on the pool.
bench-replica-smoke:
	$(PYTHON) benchmarks/bench_replica.py --smoke

## Chaos suite: 20 seeded composed-fault scenarios (partitions landing
## mid-revocation-fan-out, replica kill inside a drop burst, power fail
## during a partition, intruder replay from the dark side of a cut,
## multi-hop delegation across a heal) — asserts zero invariant
## violations, bit-identical double runs, and the partition primitive
## severing/healing on all three delivery disciplines.
bench-chaos-smoke:
	$(PYTHON) benchmarks/bench_chaos.py --smoke
