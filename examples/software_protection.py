"""Protection without F-boxes (§2.4): matrix, caches, bootstrap, links.

The scenario: the same wiretapping thief from examples/fig1_intruder.py
tries again — but this deployment encrypts every capability under the
(source, destination) key matrix, so the stolen bytes are useless from
any other machine.  The keys themselves come from the paper's public-key
bootstrap handshake, and the capability caches remove the per-message
cipher cost.

Run:  python examples/software_protection.py
"""

from repro import Intruder, Machine, ObjectServer, ServiceClient, SimNetwork, command
from repro.core.rights import Rights
from repro.crypto.publickey import generate_keypair
from repro.crypto.randomsrc import RandomSource
from repro.ipc.stdops import USER_BASE
from repro.softprot.boot import BootProtocol, establish_matrix_keys
from repro.softprot.cache import ClientCapabilityCache, ServerCapabilityCache
from repro.softprot.linkcrypt import LinkCryptNode
from repro.softprot.matrix import CapabilitySealer, KeyMatrix


class VaultServer(ObjectServer):
    service_name = "vault"

    @command(USER_BASE)
    def _open_vault(self, ctx):
        entry, _ = ctx.lookup(Rights(0x01))
        return ctx.ok(data=entry.data)


def main():
    rng = RandomSource(seed=2024)
    net = SimNetwork()
    server_machine = Machine(net, name="vault-server")
    client_machine = Machine(net, name="client", with_memory_server=False)

    # --- 1. the public-key bootstrap establishes the matrix keys ---------
    server_keys = generate_keypair(bits=512, rng=rng)
    print("vault server boots, broadcasts (name, put-port, public key)")
    client_matrix = KeyMatrix(rng=RandomSource(seed=1))
    server_matrix = KeyMatrix(rng=RandomSource(seed=2))
    forward, reverse = establish_matrix_keys(
        client_matrix.view(client_machine.address),
        server_matrix.view(server_machine.address),
        server_keys,
        rng=rng,
    )
    print("bootstrap handshake done: fresh conventional keys both ways")

    # A replayed reply from an earlier boot is rejected:
    offer, fresh_key = BootProtocol.client_offer(server_keys.public, rng)
    old_reply, _, _ = BootProtocol.server_accept(server_keys, offer, rng)
    offer2, fresh_key2 = BootProtocol.client_offer(server_keys.public, rng)
    try:
        BootProtocol.client_confirm(server_keys.public, fresh_key2, old_reply)
    except Exception as exc:
        print("replayed old-boot reply rejected: %s" % exc)

    # --- 2. matrix-sealed RPC ---------------------------------------------
    vault = VaultServer(
        server_machine.nic,
        rng=RandomSource(seed=3),
        sealer=CapabilitySealer(
            server_matrix.view(server_machine.address),
            server_cache=ServerCapabilityCache(),
        ),
        require_sealed=True,
    ).start()
    gold = vault.table.create(b"1000 bars of gold")

    client_sealer = CapabilitySealer(
        client_matrix.view(client_machine.address),
        client_cache=ClientCapabilityCache(),
    )
    client = ServiceClient(
        client_machine.nic,
        vault.put_port,
        rng=RandomSource(seed=4),
        locator=client_machine.locator,
        sealer=client_sealer,
        expect_signature=vault.signature_image,
    )
    print("client opens the vault: %r"
          % client.call(USER_BASE, capability=gold).data)

    # --- 3. the thief tries the fig1 attack again --------------------------
    intruder = Intruder(net, rng=RandomSource(seed=5))
    intruder.start_capture()
    client.call(USER_BASE, capability=gold)
    sealed_frames = [f for f in intruder.captured_requests()
                     if f.message.sealed_caps]
    print("thief captured %d sealed request(s); capability bytes visible: %s"
          % (len(sealed_frames),
             gold.check in (sealed_frames[0].message.sealed_caps if sealed_frames else b"")))
    reply_private, _ = intruder.steal_capability(sealed_frames[0])
    answer = intruder.nic.poll(reply_private)
    print("thief replays from machine %d: server says status=%s (%s)"
          % (intruder.address,
             answer.message.status if answer else "no reply",
             answer.message.data.decode("utf-8", "replace") if answer else ""))

    # --- 4. the caches remove the cipher cost ------------------------------
    before = client_sealer.cipher_ops
    for _ in range(20):
        client.call(USER_BASE, capability=gold)
    print("20 more calls cost %d new cipher ops (client cache: %r)"
          % (client_sealer.cipher_ops - before, client_sealer.client_cache))

    # --- 5. link-level encryption, the other alternative --------------------
    a = LinkCryptNode(Machine(net, name="link-a",
                              with_memory_server=False).nic,
                      rng=RandomSource(seed=6))
    b = LinkCryptNode(Machine(net, name="link-b",
                              with_memory_server=False).nic,
                      rng=RandomSource(seed=7))
    key = RandomSource(seed=8).bytes(16)
    a.add_line(b.nic.address, b.endpoint[1], key)
    b.add_line(a.nic.address, a.endpoint[1], key)
    from repro.core.ports import PrivatePort
    from repro.net.message import Message

    g = PrivatePort.generate(RandomSource(seed=9))
    wire = b.nic.listen(g)
    sniffed = []
    net.add_tap(lambda f: sniffed.append(f.message.data))
    a.put(Message(dest=wire, data=b"capability inside the tunnel"),
          dst_machine=b.nic.address)
    got = b.nic.poll(g)
    print("link crypt delivered %r; plaintext on the wire: %s"
          % (got.message.data,
             any(b"capability inside" in d for d in sniffed)))
    print("OK")


if __name__ == "__main__":
    main()
