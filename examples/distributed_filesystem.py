"""The modular Amoeba file stack (§3.2-§3.4) across three machines.

block server (storage machine)
   ^ capability interface
flat file server (storage machine) - a *client* of the block server
   ^ capability interface
directory servers (two different machines!)
   ^ capability interface
UNIX-like facade (workstation) - paths, fds, read/write/seek

The path walk in the middle hops between directory servers on different
machines without the user noticing: "The distribution is completely
transparent."

Run:  python examples/distributed_filesystem.py
"""

from repro import (
    BlockClient,
    BlockServer,
    DirectoryClient,
    DirectoryServer,
    FlatFileClient,
    FlatFileServer,
    Machine,
    SimNetwork,
    UnixFs,
    resolve_path,
)
from repro.disk.virtualdisk import VirtualDisk
from repro.servers.directory import DIR_CREATE


def main():
    net = SimNetwork()
    storage = Machine(net, name="storage")
    naming = Machine(net, name="naming")
    workstation = Machine(net, name="workstation", with_memory_server=False)

    # --- storage machine: block server + flat file server on top --------
    disk = VirtualDisk(n_blocks=4096, block_size=512)
    blocks = BlockServer(storage.nic, disk=disk).start()
    files = FlatFileServer(
        storage.nic,
        block_client=BlockClient(storage.nic, blocks.put_port),
    ).start()
    print("storage machine: block server + flat file server (disk: %r)" % disk)

    # --- two directory servers on two machines --------------------------
    dirs_a = DirectoryServer(naming.nic).start()
    dirs_b = DirectoryServer(storage.nic).start()
    root = dirs_a.create_root()

    dclient_a = DirectoryClient(workstation.nic, dirs_a.put_port)
    dclient_b = DirectoryClient(workstation.nic, dirs_b.put_port)
    fclient = FlatFileClient(workstation.nic, files.put_port)

    # /home lives on naming machine; /home/shared on the storage machine.
    home = dclient_a.create_directory(root, "home")
    shared = dclient_b.call(DIR_CREATE).capability
    dclient_a.enter(home, "shared", shared)

    paper = fclient.create(b"Using Sparse Capabilities in a DOS, 1986")
    dclient_b.enter(shared, "paper.txt", paper)

    # --- transparent path walk across both servers ----------------------
    found = resolve_path(workstation.nic, root, "home/shared/paper.txt")
    print("resolve('home/shared/paper.txt') crossed %d directory servers"
          % len({dirs_a.put_port, dirs_b.put_port}))
    print("  -> %r" % found)
    print("  contents: %r" % fclient.read(found, 0, 40))

    # --- the UNIX facade over the same stack -----------------------------
    fs = UnixFs(workstation.nic, root, files.put_port)
    fd = fs.open("home/shared/paper.txt", "r")
    print("unixfs read: %r" % fs.read(fd, 25))
    fs.mkdir("home/ast")
    fd = fs.open("home/ast/notes.txt", "a")
    fs.write(fd, b"the kernel knows nothing about any of this\n")
    print("unixfs tree under /home: %s" % fs.listdir("home"))
    print("stat: %s" % fs.stat("home/ast/notes.txt"))

    # --- the file bytes really live on raw disk blocks -------------------
    print("disk after all that: %r (reads=%d writes=%d)"
          % (disk, disk.reads, disk.writes))
    print("wire traffic: %s" % net.stats())
    print("OK")


if __name__ == "__main__":
    main()
