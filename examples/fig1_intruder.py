"""Figure 1, live: clients, servers, intruders, and F-boxes.

Walks through every attack the paper's threat model allows and shows
which defence stops it:

  1. impersonation via GET(P)      -> stopped by the one-way F-box
  2. forged replies                -> stopped by F(S) signatures
  3. request replay                -> reply port corrupted by double-F
  4. capability theft by wiretap   -> the residual risk that motivates
                                      the software protection of §2.4
                                      (see examples/software_protection.py)

Run:  python examples/fig1_intruder.py
"""

from repro import Intruder, Machine, ObjectServer, ServiceClient, SimNetwork, command
from repro.core.rights import Rights
from repro.ipc.stdops import USER_BASE


class PayrollServer(ObjectServer):
    service_name = "payroll"

    @command(USER_BASE)
    def _salary(self, ctx):
        entry, _ = ctx.lookup(Rights(0x01))
        return ctx.ok(data=entry.data)


def main():
    net = SimNetwork()
    server_machine = Machine(net, name="server")
    client_machine = Machine(net, name="client", with_memory_server=False)

    payroll = PayrollServer(server_machine.nic).start()
    cap = payroll.table.create(b"salary: 3000 guilders")
    client = ServiceClient(
        client_machine.nic, payroll.put_port,
        expect_signature=payroll.signature_image,
    )
    intruder = Intruder(net)
    intruder.start_capture()

    # --- Attack 1: impersonate the server by listening on its put-port --
    listened = intruder.attempt_get(payroll.put_port)
    print("attack 1: intruder GET(P) actually listens on %r (P is %r)"
          % (listened, payroll.put_port))
    for _ in range(5):
        client.call(USER_BASE, capability=cap)
    print("  requests intercepted by intruder: %d (server handled %d)"
          % (intruder.intercepted_count(payroll.put_port),
             payroll.request_counts[USER_BASE]))

    # --- Attack 2: forge a reply faster than the server ------------------
    forged_delivered = []

    def race(frame):
        if not frame.message.is_reply and frame.message.command == USER_BASE:
            forged_delivered.append(intruder.forge_reply(frame, data=b"POISON"))

    net.add_tap(race)
    reply = client.call(USER_BASE, capability=cap)
    print("attack 2: forged reply was delivered=%s, but client accepted %r"
          % (any(forged_delivered), reply.data))
    net.remove_tap(race)

    # --- Attack 3: replay a captured request -----------------------------
    request = intruder.captured_requests()[0]
    before = payroll.request_counts[USER_BASE]
    intruder.replay(request)
    replayed_on_wire = intruder.nic.fbox.transform_egress(request.message)
    print("attack 3: replay re-ran the operation (server count %d -> %d)"
          % (before, payroll.request_counts[USER_BASE]))
    print("  but the reply port was double-one-wayed: %r != %r"
          % (replayed_on_wire.reply, request.message.reply))

    # --- Attack 4: steal the capability bytes off the wire ---------------
    stolen = next(f.message.capability for f in intruder.captured_requests()
                  if f.message.capability)
    reply_private, _ = intruder.steal_capability(intruder.captured_requests()[0])
    hijacked = intruder.nic.poll(reply_private)
    print("attack 4: stolen capability worked=%s (bearer token!)"
          % (hijacked is not None and hijacked.message.status == 0))
    print("  -> this is exactly why §2.4 encrypts capabilities per")
    print("     (source, destination); see examples/software_protection.py")

    print("wire traffic: %s" % net.stats())
    print("OK")


if __name__ == "__main__":
    main()
