"""The memory server (§3.1): segments, remote process creation, and the
electronic disk.

"By directing the CREATE SEGMENT requests to a memory server on a remote
machine, the parent can create the child wherever it wants to, providing
a more convenient and efficient interface than the traditional
FORK + EXEC."

Run:  python examples/remote_process.py
"""

from repro import Machine, SimNetwork
from repro.errors import PermissionDenied
from repro.kernel.memory import R_READ


def main():
    net = SimNetwork()
    parent_ws = Machine(net, name="parent-workstation",
                        memory_capacity=1 << 20)
    big_server = Machine(net, name="big-compute-server",
                         memory_capacity=64 << 20)

    # --- the parent builds the child ON THE REMOTE MACHINE ---------------
    remote = parent_ws.memory_client(remote_port=big_server.memory_port)
    text = remote.create_segment(4096, initial=b"\x90" * 64 + b"; program text")
    data = remote.create_segment(2048, initial=b"initialised globals")
    stack = remote.create_segment(8192)
    print("created text/data/stack segments on %r" % big_server.name)

    child = remote.make_process("worker", [text, data, stack])
    print("MAKE PROCESS -> %r" % child)
    print("  started: %s" % remote.start(child))
    print("  info: %s" % remote.process_info(child))
    print("  stopped: %s" % remote.stop(child))

    # The process capability is the handle for ALL manipulation; hand a
    # colleague a read-only one and they can observe but not control:
    observer = remote.restrict(child, R_READ)
    try:
        remote.start(observer)
    except PermissionDenied:
        print("  observer capability cannot start/stop the process")

    # --- the electronic disk ----------------------------------------------
    # "An electronic disk of the required size is created using CREATE
    # SEGMENT, and then can be read and written, either by local or
    # remote processes using READ and WRITE."
    edisk = remote.create_segment(256 * 512)  # 256 sectors of 512 bytes
    sector = 512

    def write_sector(n, payload):
        remote.write(edisk, n * sector, payload)

    def read_sector(n, length):
        return remote.read(edisk, n * sector, length)

    write_sector(0, b"boot sector of the electronic disk")
    write_sector(17, b"somewhere in the middle")
    print("electronic disk sector 0:  %r" % read_sector(0, 34))
    print("electronic disk sector 17: %r" % read_sector(17, 23))

    # The segment capability is a normal capability: restrict, revoke...
    ro_disk = remote.restrict(edisk, R_READ)
    print("read-only disk capability reads sector 0: %r"
          % remote.read(ro_disk, 0, 11))

    used = big_server.memory_server.used
    print("remote memory in use: %d bytes across %d objects"
          % (used, len(big_server.memory_server.table)))
    print("OK")


if __name__ == "__main__":
    main()
