"""Sparse capabilities over real UDP sockets ("hashlib and sockets").

Everything in the other examples runs on the in-process simulator; this
one runs the same servers over genuine datagrams on localhost, proving
the RPC layer and the capability schemes are transport-independent.

Run:  python examples/udp_cluster.py
"""

from repro import FlatFileClient, FlatFileServer
from repro.errors import PermissionDenied
from repro.net.sockets import SocketNode


def main():
    with SocketNode() as server_node, SocketNode() as alice_node, \
            SocketNode() as bob_node:
        print("three UDP endpoints: server=%s alice=%s bob=%s"
              % (server_node.address, alice_node.address, bob_node.address))

        files = FlatFileServer(server_node).start()
        print("flat file server on put-port %r" % files.put_port)

        alice = FlatFileClient(
            alice_node, files.put_port,
            expect_signature=files.signature_image,
            timeout=5.0,
        )
        # Over UDP there is no broadcast segment, so clients address the
        # server's socket directly (the LOCATE cache would normally have
        # resolved this).
        alice.locator = None
        alice_node.connect(server_node.address)

        cap = alice.create(b"bytes carried by real datagrams")
        print("alice created %r" % cap)
        print("alice reads: %r" % alice.read(cap, 0, 31))

        read_only = alice.restrict(cap, 0x01)
        bob = FlatFileClient(
            bob_node, files.put_port,
            expect_signature=files.signature_image,
            timeout=5.0,
        )
        bob_node.connect(server_node.address)
        print("bob reads with the restricted capability: %r"
              % bob.read(read_only, 0, 5))
        try:
            bob.write(read_only, 0, b"nope")
        except PermissionDenied as exc:
            print("bob's write refused across the real network: %s" % exc)
        print("OK")


if __name__ == "__main__":
    main()
