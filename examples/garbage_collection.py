"""Mark-and-age garbage collection for capability-named storage.

Sparse capabilities are bearer tokens with no holder records, so a
storage server can never know which objects are still wanted.  The cure
is the STD_TOUCH operation plus aging: a sweeper walks everything
reachable from the naming roots and touches it; each server then ages its
table and collects whatever went unproven.  Objects whose capabilities
were simply forgotten — the classic distributed storage leak — disappear
on their own.

Run:  python examples/garbage_collection.py
"""

from repro import (
    DirectoryClient,
    DirectoryServer,
    FlatFileClient,
    FlatFileServer,
    Machine,
    SimNetwork,
)
from repro.errors import NoSuchObject
from repro.servers.sweeper import ReachabilitySweeper


def main():
    net = SimNetwork()
    storage = Machine(net, name="storage")
    ws = Machine(net, name="workstation", with_memory_server=False)

    dirs = DirectoryServer(storage.nic).start()
    files = FlatFileServer(storage.nic).start()
    # Policy: objects must prove liveness within three sweeps.
    dirs.table.default_lifetime = 3
    files.table.default_lifetime = 3

    dclient = DirectoryClient(ws.nic, dirs.put_port)
    fclient = FlatFileClient(ws.nic, files.put_port)
    root = dirs.create_root()

    # A healthy tree...
    project = dclient.create_directory(root, "project")
    report = fclient.create(b"quarterly report")
    dclient.enter(project, "report.txt", report)

    # ...and two classic leaks:
    orphan = fclient.create(b"capability was lost in a crashed process")
    unlinked = fclient.create(b"entry removed, object forgotten")
    dclient.enter(project, "tmp", unlinked)
    dclient.remove(project, "tmp")

    print("objects on the file server before GC: %d" % len(files.table))

    sweeper = ReachabilitySweeper(ws.nic, [root])
    for cycle in range(1, 5):
        touched, expired = sweeper.collect([dirs, files])
        print("cycle %d: touched %d reachable objects, collected %d"
              % (cycle, touched, expired))

    print("objects on the file server after GC: %d" % len(files.table))
    print("the named file is untouched: %r" % fclient.read(report, 0, 16))
    for label, cap in (("orphan", orphan), ("unlinked", unlinked)):
        try:
            fclient.read(cap, 0, 1)
            print("%s SURVIVED (bug!)" % label)
        except NoSuchObject:
            print("%s was collected" % label)
    print("OK")


if __name__ == "__main__":
    main()
