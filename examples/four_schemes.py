"""The four rights-protection algorithms of §2.3, side by side.

For each scheme: mint an owner capability, verify it, try to tamper with
it, and — where supported — fabricate a weaker sub-capability.  The
commutative scheme does the last step entirely client-side, which is the
paper's distinctive third algorithm.

Run:  python examples/four_schemes.py
"""

from repro import ObjectTable, PrivatePort, Rights, scheme_by_name
from repro.core.schemes import all_scheme_names
from repro.crypto.randomsrc import RandomSource
from repro.errors import BadRequest, InvalidCapability

R_READ = 0x01
R_WRITE = 0x02


def demonstrate(name):
    print("=" * 64)
    scheme = scheme_by_name(name)
    print("scheme %r  (check field: %d bytes, client-restrictable: %s)"
          % (scheme.name, scheme.check_bytes, scheme.client_restrictable))

    rng = RandomSource(seed=42)
    port = PrivatePort.generate(rng).public
    table = ObjectTable(scheme, port, rng=rng)

    owner = table.create({"file": "annual-report"})
    print("  owner capability: %r" % owner)
    entry, rights = table.lookup(owner)
    print("  verifies with rights %s" % format(int(rights), "08b"))

    # Tamper with the rights field.
    forged = owner.with_rights(int(owner.rights) ^ 0x40)
    try:
        table.lookup(forged)
        print("  tampered rights ACCEPTED (the simple scheme cannot tell:")
        print("   it grants all-or-nothing and ignores the rights field)")
    except InvalidCapability:
        print("  tampered rights rejected")

    # Fabricate a read-only sub-capability.
    try:
        read_only = table.restrict(owner, Rights(R_READ))
        _, weak_rights = table.lookup(read_only)
        print("  server-side restrict -> rights %s"
              % format(int(weak_rights), "08b"))
    except BadRequest as exc:
        print("  restrict refused: %s" % exc)

    if scheme.client_restrictable:
        local = scheme.client_restrict(owner, Rights(R_READ))
        _, local_rights = table.lookup(local)
        print("  CLIENT-side restrict (0 messages!) -> rights %s"
              % format(int(local_rights), "08b"))
        # Order independence: drop write then read == drop read then write.
        a = scheme.client_restrict(
            scheme.client_restrict(owner, Rights(0xFF ^ R_WRITE)),
            Rights(0xFF ^ R_READ),
        )
        b = scheme.client_restrict(
            scheme.client_restrict(owner, Rights(0xFF ^ R_READ)),
            Rights(0xFF ^ R_WRITE),
        )
        print("  commutativity: same capability either order -> %s"
              % (a == b))

    # Revocation works identically everywhere.
    fresh = table.refresh(owner)
    try:
        table.lookup(owner)
    except InvalidCapability:
        print("  revocation: owner capability invalidated, fresh one works: %s"
              % (table.lookup(fresh) is not None))


def main():
    for name in all_scheme_names():
        demonstrate(name)
    print("=" * 64)
    print("OK")


if __name__ == "__main__":
    main()
