"""The bank server economy (§3.6): money, currencies, quotas, refunds.

"Thus to obtain permission to create a file, a client would present a
capability for one of his accounts to the bank server ... by having the
file server charge x dollars per kiloblock of disk space, quotas can be
implemented by limiting how many dollars each client has.  CPU time could
be charged in francs, phototypesetter pages in yen."

Run:  python examples/bank_economy.py
"""

from repro import BankClient, BankServer, FlatFileClient, Machine, SimNetwork
from repro.errors import InsufficientFunds, PermissionDenied
from repro.servers.bank import R_DEPOSIT, R_INSPECT, R_WITHDRAW
from repro.servers.charging import ChargingFlatFileServer
from repro.servers.flatfile import FILE_CREATE, FILE_WRITE


def main():
    net = SimNetwork()
    bank_machine = Machine(net, name="bank")
    storage = Machine(net, name="storage")
    alice_ws = Machine(net, name="alice", with_memory_server=False)

    # --- the bank, with franc and yen exchange ---------------------------
    bank = BankServer(
        bank_machine.nic,
        exchange_rates={("USD", "FRF"): (7, 1), ("FRF", "USD"): (1, 7)},
    ).start()
    central = bank.create_account({"USD": 1_000_000}, mint_right=True)
    print("central bank opened with a million dollars (mint right held)")

    # --- a charging file server: 1 dollar per 512-byte kiloblock ---------
    revenue = bank.create_account()
    files = ChargingFlatFileServer(
        storage.nic,
        bank_client=BankClient(storage.nic, bank.put_port),
        revenue_cap=revenue,
        price=1,
        charge_unit=512,
    ).start()

    # --- alice gets an allowance: that IS her disk quota ------------------
    alice_bank = BankClient(alice_ws.nic, bank.put_port,
                            expect_signature=bank.signature_image)
    wallet = alice_bank.open_account()
    alice_bank.transfer(central, wallet, "USD", 10)
    print("alice's allowance: %s (= 10 disk units of quota)"
          % alice_bank.balance(wallet))

    # A deposit-only capability would protect alice if she only received
    # money; the file server needs withdraw (to charge) and deposit (to
    # refund), but never mint:
    pay = alice_bank.restrict(wallet, R_WITHDRAW | R_DEPOSIT | R_INSPECT)
    try:
        alice_bank.mint(pay, "USD", 10**9)
    except PermissionDenied:
        print("the pay capability cannot mint money (rights bit absent)")

    # --- buy some storage -------------------------------------------------
    alice_files = FlatFileClient(alice_ws.nic, files.put_port,
                                 expect_signature=files.signature_image)
    doc = alice_files.call(FILE_CREATE, data=b"q" * 1500,
                           extra_caps=(pay,)).capability
    print("alice bought a 1500-byte file; wallet now %s, server revenue %s"
          % (alice_bank.balance(wallet), bank.table.data(revenue).balances))

    # --- the quota bites ---------------------------------------------------
    try:
        alice_files.call(FILE_WRITE, capability=doc, offset=0,
                         data=b"x" * (100 * 512), extra_caps=(pay,))
    except InsufficientFunds as exc:
        print("quota exceeded: %s" % exc)

    # --- disk blocks refund; typesetter pages would not --------------------
    alice_files.destroy(doc)
    print("after destroying the file the money came back: %s"
          % alice_bank.balance(wallet))

    # --- currencies: CPU in francs -----------------------------------------
    francs = alice_bank.convert(wallet, "USD", "FRF", 3)
    print("alice converts 3 USD -> %d FRF for CPU time: %s"
          % (francs, alice_bank.balance(wallet)))

    # conservation check (the bank can audit itself)
    print("dollars in circulation: %d == dollars ever minted minus converted: %d"
          % (bank.total_in_circulation("USD"), bank.minted["USD"]))
    print("OK")


if __name__ == "__main__":
    main()
