"""Quickstart: sparse capabilities in five minutes.

Reproduces the paper's running example (§2.3): a client creates a file,
writes data into it, and gives another client permission to read (but not
modify) the file — then revokes everything with one call.

Run:  python examples/quickstart.py
"""

from repro import FlatFileClient, FlatFileServer, Machine, SimNetwork
from repro.errors import InvalidCapability, PermissionDenied


def main():
    # One simulated Ethernet segment; every machine sits behind an F-box.
    net = SimNetwork()
    server_machine = Machine(net, name="file-server")
    alice_machine = Machine(net, name="alice", with_memory_server=False)
    bob_machine = Machine(net, name="bob", with_memory_server=False)

    # The file server is an ordinary user process with a secret get-port.
    files = FlatFileServer(server_machine.nic).start()
    print("file server listening on put-port %r" % files.put_port)

    # --- Alice creates a file and writes into it -----------------------
    alice = FlatFileClient(
        alice_machine.nic, files.put_port,
        expect_signature=files.signature_image,
    )
    cap = alice.create()
    alice.write(cap, 0, b"The five deliverables are on schedule.")
    print("alice created file: %r" % cap)

    # --- She fabricates a read-only sub-capability for Bob -------------
    # (XOR-one-way scheme: this is a server round-trip; the commutative
    # scheme in examples/four_schemes.py does it without one.)
    read_only = alice.restrict(cap, keep_mask=0x01)
    print("read-only capability for bob: %r" % read_only)

    # --- Bob reads, but cannot write ------------------------------------
    bob = FlatFileClient(
        bob_machine.nic, files.put_port,
        expect_signature=files.signature_image,
    )
    print("bob reads: %r" % bob.read(read_only, 0, 38))
    try:
        bob.write(read_only, 0, b"bob was here")
    except PermissionDenied as exc:
        print("bob's write refused: %s" % exc)

    # --- Bob tampers with the rights field; the server notices ----------
    forged = read_only.with_rights(0xFF)
    try:
        bob.write(forged, 0, b"bob was here")
    except InvalidCapability as exc:
        print("bob's forgery refused: %s" % exc)

    # --- Alice revokes: every outstanding capability dies at once -------
    fresh = alice.refresh(cap)
    try:
        bob.read(read_only, 0, 1)
    except InvalidCapability:
        print("after revocation bob's capability is dead")
    print("alice still reads via the fresh capability: %r"
          % alice.read(fresh, 0, 8))

    print("wire traffic: %s" % net.stats())
    print("OK")


if __name__ == "__main__":
    main()
