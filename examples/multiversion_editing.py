"""The multiversion file server (§3.5): COW versions, atomic commit,
optimistic concurrency, and write-once media.

Run:  python examples/multiversion_editing.py
"""

from repro import Machine, MultiversionClient, MultiversionFileServer, SimNetwork
from repro.disk.virtualdisk import VirtualDisk
from repro.errors import VersionConflict, VersionImmutable


def main():
    net = SimNetwork()
    server_machine = Machine(net, name="mv-server")
    alice_ws = Machine(net, name="alice", with_memory_server=False)
    bob_ws = Machine(net, name="bob", with_memory_server=False)

    # A write-once disk: the video-disk scenario the design targets.
    disk = VirtualDisk(n_blocks=1024, block_size=128, write_once=True)
    mv = MultiversionFileServer(server_machine.nic, disk=disk).start()
    print("multiversion server on WRITE-ONCE media: %r" % disk)

    alice = MultiversionClient(alice_ws.nic, mv.put_port,
                               expect_signature=mv.signature_image)
    bob = MultiversionClient(bob_ws.nic, mv.put_port,
                             expect_signature=mv.signature_image)

    # --- alice drafts and commits v1 --------------------------------------
    doc = alice.create_file()
    v1, _ = alice.new_version(doc)
    alice.write(v1, 0, b"Chapter 1. It was a dark and stormy night." + b" " * 86)
    seq = alice.commit(v1)
    print("alice committed version %d" % seq)

    # --- concurrent editing: optimistic concurrency -----------------------
    a_draft, a_base = alice.new_version(doc)
    b_draft, b_base = bob.new_version(doc)
    print("alice and bob both branch from version %d" % a_base)
    print("  (branching copied 0 pages: %d shared so far)" % mv.pages_shared)

    alice.write(a_draft, 0, b"Chapter 1. ALICE")
    bob.write(b_draft, 0, b"Chapter 1. BOB  ")
    print("bob commits first: version %d" % bob.commit(b_draft))
    try:
        alice.commit(a_draft)
    except VersionConflict as exc:
        print("alice's commit conflicts: %s" % exc)
    retry, base = alice.new_version(doc)
    alice.write(retry, 64, b" ...alice appends after bob instead.")
    print("alice retries from version %d: committed %d"
          % (base, alice.commit(retry)))

    # --- the full history stays readable -----------------------------------
    for s in range(alice.n_versions(doc)):
        print("  version %d: %r" % (s, alice.read_version(doc, s, 0, 27)))

    # --- committed versions are immutable ----------------------------------
    try:
        bob.write(b_draft, 0, b"sneaky post-commit edit")
    except VersionImmutable as exc:
        print("post-commit write refused: %s" % exc)

    # --- COW accounting ------------------------------------------------------
    print("pages copied on write: %d, page-references shared at branch: %d"
          % (mv.pages_copied, mv.pages_shared))
    print("write-once disk: %d blocks burnt, %d writes (never a rewrite)"
          % (disk.used_blocks, disk.writes))
    print("OK")


if __name__ == "__main__":
    main()
