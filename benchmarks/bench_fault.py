"""Fault-injection scenario benchmarks: the robustness story, measured.

Every other benchmark runs on a perfect wire.  These arms run the same
protocol stack over a seeded :class:`~repro.net.faults.FaultPlan` and
measure what the at-least-once layer (:class:`~repro.ipc.rpc.RetryPolicy`
client-side, :class:`~repro.ipc.server.ReplyCache` server-side) buys:

Workloads (stable keys in ``BENCH_throughput.json``)
----------------------------------------------------
``fault_goodput_sweep``
    Retried echo transactions at 0/5/10/20% frame loss; goodput is
    completed transactions per frame on the wire.  The smoke bar:
    goodput at 10% loss stays >= 50% of lossless.
``fault_des_lossy``
    The DES virtual-clock wire at 10% loss + 1% duplication — the
    determinism-by-double-run contract must hold *with* faults, and
    retransmission backoff must show up as virtual time.
``fault_retry_storm``
    A client fleet bursting into PR 5's bounded ingress queue
    (deferred discipline): overflow drops requests, retries recover
    every one of them.
``fault_crash_recovery``
    A bank server crashes mid-session and is respawned on a fresh
    machine with the *same* put-port but regenerated secrets.  The
    client survives via locate invalidation on timeout, re-LOCATE, and
    re-opening its now-invalid capabilities.
``fault_bank_effectively_once``
    The acceptance scenario: thousands of retried, non-idempotent bank
    transfers under loss + duplication, with server-side dedup — the
    payee's balance must equal the completed count *exactly* and money
    must be conserved (zero double-executions).

All arms are seeded end to end; the fault path is fully off by default
elsewhere, so the perfect-wire benchmarks are untouched.
"""

from repro.crypto.randomsrc import RandomSource
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic

PAPER_RTT_MS = 2.8


class EchoServer(ObjectServer):
    service_name = "fault bench echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


def _fault_api():
    """The fault/retry API, or None on source trees that predate it."""
    try:
        from repro.ipc.rpc import RetryPolicy
        from repro.net.faults import FaultPlan
    except ImportError:
        return None
    return FaultPlan, RetryPolicy


# ----------------------------------------------------------------------
# goodput vs loss
# ----------------------------------------------------------------------


def _goodput_point(n, loss, seed):
    from repro.errors import RPCTimeout
    from repro.ipc.rpc import RetryPolicy, trans
    from repro.net.faults import FaultPlan

    plan = FaultPlan(seed=seed, drop=loss)
    net = SimNetwork(faults=plan)
    server = EchoServer(Nic(net), rng=RandomSource(seed=1), dedup=True).start()
    server.count_requests = False
    client = Nic(net)
    retry = RetryPolicy(attempts=10, seed=seed)
    completed = 0
    for i in range(n):
        try:
            trans(client, server.put_port,
                  Message(command=USER_BASE, data=b"payload"),
                  rng=RandomSource(seed=1000 + i), timeout=5.0, retry=retry)
            completed += 1
        except RPCTimeout:
            pass
    return {
        "loss": loss,
        "transactions": n,
        "completed": completed,
        "frames_sent": plan.frames_seen,
        "injected_drops": plan.injected_drops,
        "dedup_hits": server.reply_cache.stats()["hits"],
        "goodput": round(completed / plan.frames_seen, 6),
    }


def fault_goodput_sweep(n=300, loss_points=(0.0, 0.05, 0.10, 0.20), seed=17):
    """Retried echo goodput (completed per wire frame) across loss rates."""
    if _fault_api() is None:
        return None
    points = [_goodput_point(n, loss, seed) for loss in loss_points]
    lossless = points[0]["goodput"]
    for point in points:
        point["vs_lossless"] = round(point["goodput"] / lossless, 4)
    return {
        "transactions_per_point": n,
        "seed": seed,
        "points": points,
    }


# ----------------------------------------------------------------------
# DES determinism under loss
# ----------------------------------------------------------------------


def _des_lossy_run(n, drop, duplicate, seed):
    from repro.ipc.rpc import RetryPolicy, trans
    from repro.net.faults import FaultPlan
    from repro.net.sched import LatencyModel, VirtualClock

    plan = FaultPlan(seed=seed, drop=drop, duplicate=duplicate,
                     delay=0.05, delay_ms=1.0)
    net = SimNetwork(clock=VirtualClock(),
                     latency=LatencyModel(rtt_ms=PAPER_RTT_MS),
                     faults=plan)
    server = EchoServer(Nic(net), rng=RandomSource(seed=1), dedup=True).start()
    server.count_requests = False
    client = Nic(net)
    retry = RetryPolicy(attempts=8, rto=0.01, seed=seed)
    for i in range(n):
        trans(client, server.put_port,
              Message(command=USER_BASE, data=b"%d" % i),
              rng=RandomSource(seed=2000 + i), timeout=10.0, retry=retry)
    return net.clock.now, plan.stats()


def fault_des_lossy(n=200, drop=0.10, duplicate=0.01, seed=23):
    """10% loss + 1% duplication on the DES wire, double-run checked."""
    if _fault_api() is None:
        return None
    try:
        virtual, stats = _des_lossy_run(n, drop, duplicate, seed)
    except ImportError:
        return None
    again = _des_lossy_run(n, drop, duplicate, seed)
    return {
        "transactions": n,
        "drop": drop,
        "duplicate": duplicate,
        "seed": seed,
        "virtual_seconds": round(virtual, 9),
        "virtual_ms_per_trans": round(virtual / n * 1e3, 6),
        "faults": stats,
        "deterministic": again == (virtual, stats),
    }


# ----------------------------------------------------------------------
# retry storm vs the bounded ingress queue
# ----------------------------------------------------------------------


def fault_retry_storm(clients=8, per_client=40, depth=16, seed=29):
    """A fleet bursts into a bounded-queue deferred network; overflow
    drops requests and the at-least-once layer recovers all of them."""
    if _fault_api() is None:
        return None
    from repro.ipc.rpc import AsyncTrans, RetryPolicy
    from repro.net.faults import FaultPlan

    plan = FaultPlan(seed=seed, drop=0.05)
    try:
        net = SimNetwork(synchronous=False, max_queue_depth=depth,
                         auto_drain=False, faults=plan)
    except TypeError:
        return None
    server = EchoServer(Nic(net), rng=RandomSource(seed=1), dedup=True).start()
    server.count_requests = False
    stations = [Nic(net) for _ in range(clients)]
    pending = []
    for c, station in enumerate(stations):
        retry = RetryPolicy(attempts=12, seed=seed + c)
        for i in range(per_client):
            pending.append(AsyncTrans(
                station, server.put_port,
                Message(command=USER_BASE, data=b"%d:%d" % (c, i)),
                rng=RandomSource(seed=3000 + c * per_client + i),
                retry=retry,
            ))
    completed = sum(1 for at in pending if at.result(timeout=5.0) is not None)
    loop_stats = net.stats().get("scheduler", {})
    return {
        "clients": clients,
        "per_client": per_client,
        "queue_depth": depth,
        "seed": seed,
        "transactions": clients * per_client,
        "completed": completed,
        "dropped_overflow": loop_stats.get("dropped_overflow", 0),
        "injected_drops": plan.injected_drops,
        "dedup_hits": server.reply_cache.stats()["hits"],
    }


# ----------------------------------------------------------------------
# crash and recovery
# ----------------------------------------------------------------------


def fault_crash_recovery(n_pre=25, n_post=25, seed=31):
    """Bank server crash + respawn: same put-port, regenerated secrets.

    The client rides out the crash with the full robustness tool chain:
    the timed-out call invalidates its locate cache, the next call
    re-broadcasts LOCATE and finds the respawned machine, the stale
    account capability is rejected by the regenerated object table, and
    a re-opened account completes the session.
    """
    if _fault_api() is None:
        return None
    from repro.errors import InvalidCapability, NoSuchObject, RPCTimeout
    from repro.ipc.locate import Locator, install_locate_responder
    from repro.ipc.rpc import RetryPolicy
    from repro.net.faults import FaultPlan
    from repro.servers.bank import BankClient, BankServer

    net = SimNetwork(faults=FaultPlan(seed=seed, drop=0.02))
    server = BankServer(Nic(net), rng=RandomSource(seed=1), dedup=True).start()
    install_locate_responder(server.node)
    get_port = server.get_port
    client_nic = Nic(net)
    locator = Locator(client_nic, rng=RandomSource(seed=2))
    client = BankClient(client_nic, server.put_port,
                        rng=RandomSource(seed=3), locator=locator,
                        timeout=0.25, retry=RetryPolicy(attempts=6, seed=seed))
    central = server.create_account({"USD": 100_000}, mint_right=True)
    alice = client.open_account()
    pre_done = 0
    for _ in range(n_pre):
        client.transfer(central, alice, "USD", 1)
        pre_done += 1

    # Crash: the server's machine leaves the wire mid-session.
    net.detach(server.node.address)
    timed_out = False
    try:
        client.transfer(central, alice, "USD", 1)
    except RPCTimeout:
        timed_out = True  # and the locate cache entry was invalidated
    cache_invalidated = locator.cache.get(server.put_port) is None

    # Respawn: same service identity (put-port), fresh rng — the object
    # table secrets and the signature secret are regenerated.
    respawn = BankServer(Nic(net), rng=RandomSource(seed=100 + seed),
                         get_port=get_port, dedup=True).start()
    install_locate_responder(respawn.node)
    client.expect_signature = respawn.signature_image
    central2 = respawn.create_account({"USD": 100_000}, mint_right=True)

    # The old capability is dead — the regenerated table rejects it.
    stale_rejected = False
    try:
        client.balance(alice)
    except (InvalidCapability, NoSuchObject):
        stale_rejected = True
    relocated = locator.cache.get(server.put_port) == respawn.node.address

    # Re-open and finish the session on the respawned server.
    alice2 = client.open_account()
    post_done = 0
    for _ in range(n_post):
        client.transfer(central2, alice2, "USD", 1)
        post_done += 1
    recovered = (timed_out and cache_invalidated and stale_rejected
                 and relocated and post_done == n_post
                 and client.balance(alice2) == {"USD": n_post})
    return {
        "seed": seed,
        "pre_crash_transfers": pre_done,
        "post_crash_transfers": post_done,
        "timed_out_on_crash": timed_out,
        "locate_cache_invalidated": cache_invalidated,
        "stale_capability_rejected": stale_rejected,
        "relocated_to_respawn": relocated,
        "recovered": recovered,
    }


# ----------------------------------------------------------------------
# effectively-once transfers at scale
# ----------------------------------------------------------------------


def fault_bank_effectively_once(n=10_000, drop=0.10, duplicate=0.01, seed=37):
    """The acceptance arm: n retried transfers under loss + duplication
    with server-side dedup; the payee balance must equal n exactly."""
    if _fault_api() is None:
        return None
    from repro.ipc.rpc import RetryPolicy
    from repro.net.faults import FaultPlan
    from repro.servers.bank import BankClient, BankServer

    plan = FaultPlan(seed=seed, drop=drop, duplicate=duplicate)
    net = SimNetwork(faults=plan)
    server = BankServer(Nic(net), rng=RandomSource(seed=1), dedup=True).start()
    server.count_requests = False
    client = BankClient(Nic(net), server.put_port, rng=RandomSource(seed=2),
                        expect_signature=server.signature_image,
                        timeout=5.0,
                        retry=RetryPolicy(attempts=12, seed=seed))
    central = server.create_account({"USD": n}, mint_right=True)
    alice = client.open_account()
    import time

    start = time.perf_counter()
    completed = 0
    for _ in range(n):
        client.transfer(central, alice, "USD", 1)
        completed += 1
    elapsed = time.perf_counter() - start
    balance = client.balance(alice)["USD"]
    conserved = server.total_in_circulation("USD") == n
    cache = server.reply_cache.stats()
    return {
        "transfers": n,
        "drop": drop,
        "duplicate": duplicate,
        "seed": seed,
        "completed": completed,
        "payee_balance": balance,
        "exactly_once": balance == completed and conserved,
        "conserved": conserved,
        "dedup_hits": cache["hits"],
        "dedup_busy_drops": cache["busy_drops"],
        "injected_drops": plan.injected_drops,
        "injected_duplicates": plan.injected_duplicates,
        "seconds": round(elapsed, 3),
        "transfers_per_sec": round(completed / elapsed, 1) if elapsed else None,
    }


#: Registry merged into run_bench.py's workload table.
WORKLOADS = {
    "fault_goodput_sweep": fault_goodput_sweep,
    "fault_des_lossy": fault_des_lossy,
    "fault_retry_storm": fault_retry_storm,
    "fault_crash_recovery": fault_crash_recovery,
    "fault_bank_effectively_once": fault_bank_effectively_once,
}

#: CI-sized overrides, same shape as bench_throughput.SMOKE_OVERRIDES.
SMOKE_OVERRIDES = {
    "fault_goodput_sweep": {"n": 120},
    "fault_des_lossy": {"n": 80},
    "fault_retry_storm": {"clients": 4, "per_client": 25},
    "fault_crash_recovery": {"n_pre": 10, "n_post": 10},
    "fault_bank_effectively_once": {"n": 1_500},
}


def main(argv=None):
    """Stand-alone entry point (``make bench-fault-smoke``).

    Runs all five arms and *asserts* the robustness acceptance bars:
    the lossy DES arm is deterministic by double run, goodput at 10%
    loss stays >= 50% of lossless, the retry storm loses frames to the
    bounded queue yet completes every transaction, crash recovery
    succeeds, and the transfer arm is exactly-once.  Never writes
    ``BENCH_throughput.json`` (that is ``run_bench.py``'s job).
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized iteration counts")
    args = parser.parse_args(argv)
    results = {}
    for name, workload in WORKLOADS.items():
        kwargs = SMOKE_OVERRIDES.get(name, {}) if args.smoke else {}
        result = workload(**kwargs)
        if result is None:
            print("  %-28s skipped (API absent)" % name)
            continue
        results[name] = result
    if not results:
        print("fault API absent on this tree; nothing to check")
        return 0

    failures = []
    sweep = results.get("fault_goodput_sweep")
    if sweep:
        for point in sweep["points"]:
            print("  goodput @ %4.0f%% loss        %8.4f  (%.2fx lossless)"
                  % (point["loss"] * 100, point["goodput"],
                     point["vs_lossless"]))
        at_ten = [p for p in sweep["points"] if p["loss"] == 0.10]
        if at_ten and at_ten[0]["vs_lossless"] < 0.5:
            failures.append(
                "goodput at 10%% loss is %.2fx lossless (< 0.5x bar)"
                % at_ten[0]["vs_lossless"])

    lossy = results.get("fault_des_lossy")
    if lossy:
        print("  %-28s %10.3f virtual ms/trans  (%s)"
              % ("fault_des_lossy", lossy["virtual_ms_per_trans"],
                 "deterministic" if lossy["deterministic"]
                 else "NON-DETERMINISTIC"))
        if not lossy["deterministic"]:
            failures.append("lossy DES double run diverged")

    storm = results.get("fault_retry_storm")
    if storm:
        print("  %-28s %d/%d completed, %d overflow drops"
              % ("fault_retry_storm", storm["completed"],
                 storm["transactions"], storm["dropped_overflow"]))
        if storm["completed"] != storm["transactions"]:
            failures.append("retry storm lost %d transactions"
                            % (storm["transactions"] - storm["completed"]))
        if storm["dropped_overflow"] == 0:
            failures.append("retry storm never overflowed the queue "
                            "(not a storm)")

    crash = results.get("fault_crash_recovery")
    if crash:
        print("  %-28s %s" % ("fault_crash_recovery",
                              "recovered" if crash["recovered"]
                              else "FAILED to recover"))
        if not crash["recovered"]:
            failures.append("crash recovery failed: %r" % (crash,))

    bank = results.get("fault_bank_effectively_once")
    if bank:
        print("  %-28s %d transfers, balance %d, %d dedup hits  (%s)"
              % ("fault_bank_effectively_once", bank["completed"],
                 bank["payee_balance"], bank["dedup_hits"],
                 "exactly-once" if bank["exactly_once"]
                 else "DOUBLE-EXECUTED"))
        if not bank["exactly_once"]:
            failures.append("transfer arm was not exactly-once")

    for failure in failures:
        print("FAIL: %s" % failure)
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
