"""RPC: blocking transaction cost, LOCATE economics, restrict round-trips.

Regenerates the §2.1/§2.2 communication model as measurements, including
the §2.3 message-count comparison: restricting via the server costs one
full round-trip (2 frames); the commutative scheme's client-side restrict
costs 0 frames and no server time at all.
"""

import pytest

from repro.core.rights import Rights
from repro.core.schemes import CommutativeScheme
from repro.crypto.randomsrc import RandomSource
from repro.ipc.client import ServiceClient
from repro.ipc.locate import Locator, install_locate_responder
from repro.ipc.rpc import trans
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic


class Echo(ObjectServer):
    service_name = "echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


@pytest.fixture
def world():
    net = SimNetwork()
    server_nic = Nic(net)
    install_locate_responder(server_nic)
    server = Echo(server_nic, rng=RandomSource(seed=1)).start()
    client_nic = Nic(net)
    return net, server, client_nic


class TestRoundTrip:
    def test_trans_round_trip(self, benchmark, world):
        _, server, client_nic = world
        rng = RandomSource(seed=2)
        reply = benchmark(
            trans, client_nic, server.put_port,
            Message(command=USER_BASE, data=b"payload"), rng,
        )
        assert reply.data == b"payload"

    def test_trans_with_signature_check(self, benchmark, world):
        _, server, client_nic = world
        rng = RandomSource(seed=3)
        reply = benchmark(
            trans, client_nic, server.put_port,
            Message(command=USER_BASE, data=b"x"), rng, 2.0,
            server.signature_image,
        )
        assert reply.data == b"x"

    def test_trans_1kb_payload(self, benchmark, world):
        _, server, client_nic = world
        rng = RandomSource(seed=4)
        payload = b"k" * 1024
        reply = benchmark(
            trans, client_nic, server.put_port,
            Message(command=USER_BASE, data=payload), rng,
        )
        assert len(reply.data) == 1024


class TestLocateEconomics:
    def test_locate_cold(self, benchmark, world):
        net, server, client_nic = world

        def cold_locate():
            locator = Locator(client_nic, rng=RandomSource(seed=5))
            return locator.locate(server.put_port)

        machine = benchmark(cold_locate)
        assert machine == server.node.address

    def test_locate_cached(self, benchmark, world):
        net, server, client_nic = world
        locator = Locator(client_nic, rng=RandomSource(seed=6))
        locator.locate(server.put_port)
        machine = benchmark(locator.locate, server.put_port)
        assert machine == server.node.address

    def test_cache_saves_frames(self, world):
        net, server, client_nic = world
        locator = Locator(client_nic, rng=RandomSource(seed=7))
        locator.locate(server.put_port)
        net.reset_stats()
        for _ in range(100):
            locator.locate(server.put_port)
        assert net.frames_sent == 0  # the cache eliminates all traffic


class TestRestrictMessageCost:
    """The §2.3 comparison, as frame counts on the wire."""

    def test_server_restrict_two_frames(self, world):
        net, server, client_nic = world
        client = ServiceClient(client_nic, server.put_port,
                               rng=RandomSource(seed=8))
        cap = server.table.create("x")
        net.reset_stats()
        client.restrict(cap, 0x01)
        assert net.frames_sent == 2

    def test_client_restrict_zero_frames(self):
        net = SimNetwork()
        scheme = CommutativeScheme()
        server = Echo(Nic(net), scheme=scheme, rng=RandomSource(seed=9)).start()
        cap = server.table.create("x")
        net.reset_stats()
        scheme.client_restrict(cap, Rights(0x01))
        assert net.frames_sent == 0

    def test_restrict_round_trip_timing(self, benchmark, world):
        _, server, client_nic = world
        client = ServiceClient(client_nic, server.put_port,
                               rng=RandomSource(seed=10))
        cap = server.table.create("x")
        weak = benchmark(client.restrict, cap, 0x01)
        assert weak.rights == Rights(0x01)
