"""Entry point for the throughput benchmark suite.

Runs the workloads in :mod:`bench_throughput` and writes
``BENCH_throughput.json`` with stable keys, so successive PRs can diff
perf numbers mechanically (the convention recorded in ``CHANGES.md``:
commit the refreshed JSON whenever a PR claims a wire-path speedup).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py                 # current tree
    PYTHONPATH=src python benchmarks/run_bench.py \
        --baseline-src /path/to/old/checkout/src                  # + comparison
    PYTHONPATH=src python benchmarks/run_bench.py --pytest        # also run the
                                                                  # pytest-benchmark suite

With ``--baseline-src`` the same workload code is executed in a
subprocess against the older source tree, and the output gains
``baseline`` and ``speedup`` sections.  The two headline speedups are
``echo_round_trip`` (trans/sec) and ``routing_50_machines`` (frames/sec).
"""

import argparse
import json
import os
import subprocess
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO = os.path.dirname(_HERE)

SCHEMA = "bench_throughput/v1"

#: Append-only run log: one JSON line per run_bench.py invocation, so
#: perf history survives BENCH_throughput.json being overwritten in
#: place.  Smoke runs are recorded too (flagged), since CI is where
#: most runs happen.
HISTORY = os.path.join(_REPO, "BENCH_history.jsonl")


def append_history(report, smoke, path=HISTORY):
    entry = {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "smoke": bool(smoke),
    }
    entry.update(report)
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def run_workloads(smoke=False):
    from bench_chaos import SMOKE_OVERRIDES as CHAOS_SMOKE_OVERRIDES
    from bench_chaos import WORKLOADS as CHAOS_WORKLOADS
    from bench_des import SMOKE_OVERRIDES as DES_SMOKE_OVERRIDES
    from bench_des import WORKLOADS as DES_WORKLOADS
    from bench_fault import SMOKE_OVERRIDES as FAULT_SMOKE_OVERRIDES
    from bench_fault import WORKLOADS as FAULT_WORKLOADS
    from bench_recovery import SMOKE_OVERRIDES as RECOVERY_SMOKE_OVERRIDES
    from bench_recovery import WORKLOADS as RECOVERY_WORKLOADS
    from bench_replica import SMOKE_OVERRIDES as REPLICA_SMOKE_OVERRIDES
    from bench_replica import WORKLOADS as REPLICA_WORKLOADS
    from bench_shard import SMOKE_OVERRIDES as SHARD_SMOKE_OVERRIDES
    from bench_shard import WORKLOADS as SHARD_WORKLOADS
    from bench_throughput import SMOKE_OVERRIDES, WORKLOADS
    from bench_udp import SMOKE_OVERRIDES as UDP_SMOKE_OVERRIDES
    from bench_udp import WORKLOADS as UDP_WORKLOADS

    workloads = dict(WORKLOADS)
    workloads.update(UDP_WORKLOADS)
    workloads.update(DES_WORKLOADS)
    workloads.update(SHARD_WORKLOADS)
    workloads.update(FAULT_WORKLOADS)
    workloads.update(RECOVERY_WORKLOADS)
    workloads.update(REPLICA_WORKLOADS)
    workloads.update(CHAOS_WORKLOADS)
    overrides = dict(SMOKE_OVERRIDES)
    overrides.update(UDP_SMOKE_OVERRIDES)
    overrides.update(DES_SMOKE_OVERRIDES)
    overrides.update(SHARD_SMOKE_OVERRIDES)
    overrides.update(FAULT_SMOKE_OVERRIDES)
    overrides.update(RECOVERY_SMOKE_OVERRIDES)
    overrides.update(REPLICA_SMOKE_OVERRIDES)
    overrides.update(CHAOS_SMOKE_OVERRIDES)
    results = {}
    for name, workload in workloads.items():
        kwargs = overrides.get(name, {}) if smoke else {}
        result = workload(**kwargs)
        if result is not None:  # None = API absent on this source tree
            results[name] = result
    _derive_ratios(results)
    return results


def _derive_ratios(results):
    """In-run comparison keys: pipelined vs the same run's serial echo."""
    pipelined = results.get("pipelined_16_inflight")
    echo = results.get("echo_round_trip")
    if pipelined and echo:
        serial = echo.get("trans_per_sec")
        if serial:
            pipelined["vs_serial_echo_x"] = round(
                pipelined["trans_per_sec"] / serial, 2
            )
            primitive = pipelined.get("primitive_trans_per_sec")
            if primitive:
                pipelined["primitive_vs_serial_echo_x"] = round(
                    primitive / serial, 2
                )
    udp_pipelined = results.get("udp_pipelined_16_inflight")
    udp_echo = results.get("udp_echo_round_trip")
    if udp_pipelined and udp_echo:
        serial = udp_echo.get("trans_per_sec")
        if serial:
            udp_pipelined["vs_udp_serial_x"] = round(
                udp_pipelined["trans_per_sec"] / serial, 2
            )
    des_pipelined = results.get("des_pipelined_16_inflight")
    des_echo = results.get("des_echo_round_trip")
    if des_pipelined and des_echo:
        serial = des_echo.get("virtual_ms_per_trans")
        if serial:
            # Virtual-time amortization: one 2.8 ms RTT per serial trans
            # vs one RTT per 16-deep batch (>= 8x by the acceptance bar).
            des_pipelined["vs_des_serial_x"] = round(
                serial / des_pipelined["virtual_ms_per_trans"], 2
            )


def run_in_tree(src_dir, smoke=False):
    """Run the same workloads against another source tree, in a subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir
    argv = [sys.executable, os.path.abspath(__file__), "--emit-raw"]
    if smoke:
        argv.append("--smoke")
    out = subprocess.run(
        argv,
        env=env,
        cwd=_HERE,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout)


def speedups(current, baseline):
    """The headline ratios; >1.0 means the current tree is faster."""
    ratios = {}
    try:
        ratios["echo_round_trip_x"] = round(
            current["echo_round_trip"]["trans_per_sec"]
            / baseline["echo_round_trip"]["trans_per_sec"],
            2,
        )
    except (KeyError, ZeroDivisionError):
        pass
    try:
        ratios["routing_50_machines_x"] = round(
            current["routing_50_machines"]["frames_per_sec"]
            / baseline["routing_50_machines"]["frames_per_sec"],
            2,
        )
    except (KeyError, ZeroDivisionError):
        pass
    try:
        ratios["contended_lookup_8t_x"] = round(
            current["contended_lookup_8t"]["lookups_per_sec"]
            / baseline["contended_lookup_8t"]["lookups_per_sec"],
            2,
        )
    except (KeyError, ZeroDivisionError):
        pass
    return ratios


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        default=os.path.join(_REPO, "BENCH_throughput.json"),
        help="output path (default: BENCH_throughput.json at the repo root)",
    )
    parser.add_argument(
        "--baseline-src",
        default=None,
        help="src/ directory of an older checkout to compare against",
    )
    parser.add_argument(
        "--baseline-label",
        default=None,
        help="label recorded for the baseline tree (e.g. a commit hash)",
    )
    parser.add_argument(
        "--emit-raw",
        action="store_true",
        help="print raw workload results as JSON to stdout and exit "
        "(used internally for --baseline-src subruns)",
    )
    parser.add_argument(
        "--pytest",
        action="store_true",
        help="also run the pytest-benchmark suite over bench_throughput.py",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast mode for CI: tiny iteration counts that prove the "
        "harness runs end to end; results are printed, and written to "
        "--json only when that flag is passed explicitly",
    )
    args = parser.parse_args(argv)
    json_is_default = args.json == parser.get_default("json")

    sys.path.insert(0, _HERE)
    if args.emit_raw:
        json.dump(run_workloads(smoke=args.smoke), sys.stdout)
        return 0

    current = run_workloads(smoke=args.smoke)
    report = {
        "schema": SCHEMA,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "current": current,
    }
    if args.baseline_src:
        try:
            baseline = run_in_tree(args.baseline_src, smoke=args.smoke)
        except subprocess.CalledProcessError as exc:
            sys.stderr.write(
                "baseline run against %r failed:\n%s\n"
                % (args.baseline_src, exc.stderr or exc.stdout)
            )
            return 2
        report["baseline"] = baseline
        if args.baseline_label:
            report["baseline_label"] = args.baseline_label
        report["speedup"] = speedups(current, baseline)

    append_history(report, smoke=args.smoke)
    if args.smoke and json_is_default:
        print("smoke mode: results not written (pass --json to keep them)")
    else:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote %s" % args.json)
    print("appended %s" % HISTORY)
    for name, result in sorted(current.items()):
        headline = result.get("trans_per_sec") or result.get("frames_per_sec")
        if headline:
            print("  %-24s %12.0f /sec" % (name, headline))
    pipelined = current.get("pipelined_16_inflight", {})
    for key in ("vs_serial_echo_x", "primitive_vs_serial_echo_x"):
        if key in pipelined:
            print("  %-24s %11.2fx" % (key, pipelined[key]))
    udp_pipelined = current.get("udp_pipelined_16_inflight", {})
    if "vs_udp_serial_x" in udp_pipelined:
        print("  %-24s %11.2fx" % ("vs_udp_serial_x", udp_pipelined["vs_udp_serial_x"]))
    des_pipelined = current.get("des_pipelined_16_inflight", {})
    if "vs_des_serial_x" in des_pipelined:
        print("  %-24s %11.2fx" % ("vs_des_serial_x", des_pipelined["vs_des_serial_x"]))
    fault_bank = current.get("fault_bank_effectively_once", {})
    if fault_bank:
        print(
            "  %-24s %s (%d dedup hits)"
            % (
                "fault_bank_exactly_once",
                "yes" if fault_bank.get("exactly_once") else "NO",
                fault_bank.get("dedup_hits", 0),
            )
        )
    contended = current.get("contended_lookup_8t", {})
    if "lookups_per_sec" in contended:
        print(
            "  %-24s %12.0f /sec"
            % ("contended_lookup_8t", contended["lookups_per_sec"])
        )
    flood = current.get("flood_drop_vs_backpressure", {})
    if "dropped_overflow" in flood:
        print(
            "  %-24s %5d dropped, recovery %.2fx"
            % (
                "flood_drop_vs_backpr.",
                flood["dropped_overflow"],
                flood["post_flood_ratio"],
            )
        )
    for name, ratio in sorted(report.get("speedup", {}).items()):
        print("  %-24s %11.2fx" % (name, ratio))

    if args.pytest:
        import pytest

        return pytest.main([os.path.join(_HERE, "bench_throughput.py"), "-q"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
