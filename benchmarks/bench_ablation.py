"""Ablations over the design choices DESIGN.md calls out.

* Feistel round count — why 16 rounds (DES parity) and not fewer/more:
  cost is linear in rounds, avalanche saturates early; 16 is comfortably
  past saturation at ~2x the minimum sound cost.
* Commutative modulus size — why 512 bits: cost grows ~quadratically,
  256 would be cheap but weak, 1024 doubles-plus the latency.
* One-way output width — the 48-bit truncation of Fig. 2 costs nothing:
  the hash dominates, truncation width is free.
* Capability-cache capacity — hit rate vs working set: the §2.4 cache
  only needs to cover the hot working set to eliminate cipher cost.
"""

import pytest

from repro.core.capability import Capability
from repro.core.ports import Port
from repro.core.rights import Rights
from repro.crypto.commutative import CommutativeOneWayFamily
from repro.crypto.feistel import FeistelCipher
from repro.crypto.oneway import OneWayFunction
from repro.crypto.primes import generate_prime
from repro.crypto.randomsrc import RandomSource
from repro.softprot.cache import ClientCapabilityCache
from repro.softprot.matrix import CapabilitySealer, KeyMatrix


class TestFeistelRounds:
    @pytest.mark.parametrize("rounds", [4, 8, 16, 32])
    def test_encrypt_cost_by_rounds(self, benchmark, rounds):
        cipher = FeistelCipher(b"ablation key", rounds=rounds)
        ct = benchmark(cipher.encrypt, 0x0123456789ABCD)
        assert cipher.decrypt(ct) == 0x0123456789ABCD

    @pytest.mark.parametrize("rounds", [4, 8, 16])
    def test_avalanche_quality_by_rounds(self, rounds):
        """Average flipped output bits for a 1-bit input change should sit
        near 28 (half of 56) once the network is sound."""
        cipher = FeistelCipher(b"ablation key", rounds=rounds)
        total = 0
        samples = 200
        for i in range(samples):
            a = cipher.encrypt(i)
            b = cipher.encrypt(i ^ 1)
            total += bin(a ^ b).count("1")
        average = total / samples
        assert 18 <= average <= 38  # centred on 28 for any sound count


@pytest.fixture(scope="module")
def moduli():
    """RSA-style moduli of three sizes, factors discarded."""
    rng = RandomSource(seed=404)
    out = {}
    for bits in (256, 512, 1024):
        p = generate_prime(bits // 2, rng,
                           avoid_divisors_of_p_minus_1=(3, 5, 7, 11, 13, 17, 19, 23))
        q = generate_prime(bits // 2, rng,
                           avoid_divisors_of_p_minus_1=(3, 5, 7, 11, 13, 17, 19, 23))
        out[bits] = p * q
    return out


class TestCommutativeModulusSize:
    @pytest.mark.parametrize("bits", [256, 512, 1024])
    def test_apply_cost_by_modulus(self, benchmark, moduli, bits):
        family = CommutativeOneWayFamily(modulus=moduli[bits])
        x = family.random_element(RandomSource(seed=1))
        y = benchmark(family.apply, 3, x)
        assert 0 <= y < family.modulus

    @pytest.mark.parametrize("bits", [256, 512, 1024])
    def test_full_verify_cost_by_modulus(self, benchmark, moduli, bits):
        # Worst case: all eight rights deleted -> composite exponent.
        family = CommutativeOneWayFamily(modulus=moduli[bits])
        x = family.random_element(RandomSource(seed=2))
        y = benchmark(family.apply_many, tuple(range(8)), x)
        assert 0 <= y < family.modulus


class TestOneWayWidth:
    @pytest.mark.parametrize("width", [48, 64, 128, 256])
    def test_oneway_cost_by_width(self, benchmark, width):
        f = OneWayFunction(width_bits=width)
        out = benchmark(f, 12345)
        assert out < (1 << width)


class TestCacheCapacity:
    @pytest.mark.parametrize("capacity", [8, 64, 512])
    def test_hit_rate_vs_working_set(self, capacity):
        """Working set of 64 capabilities cycled repeatedly: the cache
        eliminates cipher work exactly when it covers the set."""
        matrix = KeyMatrix(rng=RandomSource(seed=3))
        sealer = CapabilitySealer(
            matrix.view(1), client_cache=ClientCapabilityCache(capacity)
        )
        caps = [
            Capability(port=Port(5), object=n, rights=Rights(0xFF),
                       check=bytes([n % 256]) * 6)
            for n in range(64)
        ]
        for _ in range(4):
            for cap in caps:
                sealer.seal(cap, 2)
        cache = sealer.client_cache
        if capacity >= 64:
            assert cache.hits >= 3 * 64  # everything after the first pass
        else:
            assert cache.hits == 0  # LRU thrashing: cyclic scan, no reuse

    @pytest.mark.parametrize("capacity", [8, 512])
    def test_seal_cost_with_capacity(self, benchmark, capacity):
        matrix = KeyMatrix(rng=RandomSource(seed=4))
        sealer = CapabilitySealer(
            matrix.view(1), client_cache=ClientCapabilityCache(capacity)
        )
        caps = [
            Capability(port=Port(5), object=n, rights=Rights(0xFF),
                       check=bytes([n % 256]) * 6)
            for n in range(64)
        ]
        state = {"i": 0}

        def seal_next():
            cap = caps[state["i"] % 64]
            state["i"] += 1
            return sealer.seal(cap, 2)

        benchmark(seal_next)
