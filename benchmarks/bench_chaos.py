"""Chaos scenario sweep: composed faults, machine-checked invariants.

Every arm here runs a :class:`repro.testing.chaos.ScenarioRunner` world —
a replicated (or durable single) capability service on the DES virtual
wire — under a *timeline* of composed faults: partitions landing
mid-revocation-fan-out, a replica killed inside a drop burst, power
failing while the network is down, an intruder replaying captured
frames from the dark side of a cut.  Each scenario is drawn from one
seed, runs **twice**, and the two result dicts (trace included) must be
bit-identical — the determinism-by-double-run contract every DES
harness in this repo shares.

Workloads (stable keys in ``BENCH_throughput.json``)
----------------------------------------------------
``chaos_matrix``
    The seeded scenario matrix: 7 families x 2-3 seeds = 20 scenarios,
    every invariant checked continuously and at quiesce, zero
    violations tolerated, every scenario deterministic by double run.
``chaos_partition_disciplines``
    The partition primitive demonstrated on all three delivery
    disciplines (synchronous, deferred event loop, DES): a transaction
    succeeds, the link is severed and the same transaction times out,
    the link heals and it succeeds again.

Scenario families
-----------------
``partition_revocation_fanout``
    One replica is isolated *while* a REFRESH revokes the workload's
    capability; the fan-out to the dark replica fails, the partition
    heals, ``reconcile()`` re-drives it — and the revoked capability
    must then validate nowhere (no phantom authority).
``kill_primary_mid_storm``
    Replica 0 crashes inside a client-side drop burst; the workload
    survives by failover and the survivors stay convergent.
``asymmetric_partition``
    Only the server->client direction is cut: requests execute, acks
    are lost, retries fail over — per-replica effectively-once must
    hold even though the pool as a whole is at-least-once.
``power_fail_during_partition``
    Durable single server: the client is partitioned away, power fails
    mid-checkpoint, the network heals, the server reboots from its WAL
    — every acked increment must survive (durability).
``intruder_replay_mid_partition``
    An intruder taps the wire, the capability is refreshed (revoking
    the captured one), the legitimate client is partitioned away, and
    the intruder replays its captures — zero executions may land.
``delegation_chain``
    A->B->C multi-hop delegation, each hop restricting rights before
    forwarding, with a replica partitioned and healed mid-chain; the
    final capability must carry *exactly* the intended rights
    everywhere (read works, write is denied, nothing lost).
``drop_burst_partition``
    Background loss + a per-link drop/delay burst + a replica isolated
    and healed, all composed over one timeline.
"""

import sys

from repro.crypto.randomsrc import RandomSource
from repro.errors import PermissionDenied, RPCTimeout
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic


def _chaos_api():
    """The chaos-engine API, or None on source trees that predate it."""
    try:
        from repro.net.faults import FaultPlan

        if not hasattr(FaultPlan, "sever"):
            return None
        from repro.testing import chaos
    except ImportError:
        return None
    return chaos


# ----------------------------------------------------------------------
# the scenario families (one function per family, seeded)
# ----------------------------------------------------------------------


def _scn_partition_revocation_fanout(seed):
    from repro.testing.chaos import (
        STANDARD_INVARIANTS,
        ScenarioRunner,
        no_lost_authority,
        no_phantom_authority,
    )

    r = ScenarioRunner("partition_revocation_fanout", seed)
    old_cap = r.capability
    state = {"fresh": None}
    r.at(0.25, "isolate_r2", lambda: r.isolate_replica(2))
    r.at(0.30, "refresh", lambda: state.__setitem__("fresh", r.refresh()))
    r.at(0.90, "rejoin_r2", lambda: r.rejoin_replica(2))
    r.at(0.95, "reconcile", r.reconcile)
    r.continuously(*STANDARD_INVARIANTS[:3])
    r.run_ops(6, spacing=0.05)
    r.run_ops(8, capability=state["fresh"], spacing=0.05)
    r.quiesce()
    r.check(*STANDARD_INVARIANTS)
    r.check(no_phantom_authority(old_cap))
    if state["fresh"] is not None:
        r.check(no_lost_authority(state["fresh"]))
    return r.result()


def _scn_kill_primary_mid_storm(seed):
    from repro.testing.chaos import STANDARD_INVARIANTS, ScenarioRunner

    r = ScenarioRunner("kill_primary_mid_storm", seed, client_timeout=0.8)
    r.at(0.20, "burst", lambda: r.burst(r.client_machine, drop=0.3))
    r.at(0.30, "kill_r0", lambda: r.kill_replica(0))
    r.at(0.80, "calm", lambda: r.calm(r.client_machine))
    r.continuously(*STANDARD_INVARIANTS[:3])
    r.run_ops(12, spacing=0.07)
    r.quiesce()
    r.check(*STANDARD_INVARIANTS)
    return r.result()


def _scn_asymmetric_partition(seed):
    from repro.testing.chaos import (
        STANDARD_INVARIANTS,
        ScenarioRunner,
        acked_implies_executed,
        effectively_once,
    )

    r = ScenarioRunner("asymmetric_partition", seed, client_timeout=0.6)

    def cut_ack_path():
        # Requests still arrive and execute; only the replies die.
        r.plan.partition(r.machines, [r.client_machine], symmetric=False)

    def heal_ack_path():
        r.plan.heal_partition(r.machines, [r.client_machine])

    r.at(0.25, "cut_ack_path", cut_ack_path)
    r.at(0.85, "heal_ack_path", heal_ack_path)
    r.continuously(effectively_once, acked_implies_executed)
    r.run_ops(10, spacing=0.06)
    r.quiesce()
    r.check(*STANDARD_INVARIANTS)
    return r.result()


def _scn_power_fail_during_partition(seed):
    from repro.testing.chaos import (
        ScenarioRunner,
        conservation,
        durability,
        effectively_once,
    )

    r = ScenarioRunner("power_fail_during_partition", seed,
                       replicas=1, durable=True, client_timeout=0.6,
                       retry_attempts=2)
    r.at(0.20, "partition_client", r.partition_client)
    r.at(0.35, "power_fail", lambda: r.power_fail(after_writes=9))
    r.at(0.55, "heal_client", r.heal_client)
    r.continuously(effectively_once, conservation)
    r.run_ops(8, spacing=0.06)
    r.reboot_server()
    r.run_ops(4, spacing=0.03)
    r.quiesce()
    # acked_implies_executed is per-incarnation (the respawn's log starts
    # empty); across a reboot the durability checker carries that burden.
    r.check(effectively_once, conservation, durability)
    return r.result()


def _scn_intruder_replay_mid_partition(seed):
    from repro.testing.chaos import (
        STANDARD_INVARIANTS,
        ScenarioRunner,
        no_intruder_executions,
        no_lost_authority,
        no_phantom_authority,
    )

    r = ScenarioRunner("intruder_replay_mid_partition", seed)
    old_cap = r.capability
    state = {"fresh": None}
    r.start_capture()
    r.run_ops(5, spacing=0.04)  # the intruder captures these INCRs
    r.at(0.40, "refresh", lambda: state.__setitem__("fresh", r.refresh()))
    r.at(0.55, "partition_client", r.partition_client)
    r.at(0.60, "replay", r.replay_captured)
    r.at(0.80, "heal_client", r.heal_client)
    r.run_ops(6, spacing=0.08)
    r.run_ops(3, capability=state["fresh"], spacing=0.05)
    r.quiesce()
    r.check(*STANDARD_INVARIANTS)
    r.check(no_intruder_executions, no_phantom_authority(old_cap))
    if state["fresh"] is not None:
        r.check(no_lost_authority(state["fresh"]))
    return r.result()


def _scn_delegation_chain(seed):
    from repro.testing.chaos import (
        CMD_GET,
        CMD_INCR,
        RIGHT_READ,
        RIGHT_WRITE,
        STANDARD_INVARIANTS,
        ScenarioRunner,
        no_lost_authority,
    )

    r = ScenarioRunner("delegation_chain", seed)
    alice = r._make_client("alice")
    bob = r._make_client("bob")
    carol = r._make_client("carol")
    # Hop 1: the owner keeps read+write for Bob.
    cap_b = alice.restrict(r.capability, int(RIGHT_READ | RIGHT_WRITE))
    r.note("delegate", "alice->bob rights=0x%02x" % int(cap_b.rights))
    # A replica drops out and rejoins *between* the hops — restriction
    # is fabricated from mirrored secrets, so the chain must not care.
    r.isolate_replica(1)
    r.note("action", "isolate_r1")
    cap_c = bob.restrict(cap_b, int(RIGHT_READ))
    r.note("delegate", "bob->carol rights=0x%02x" % int(cap_c.rights))
    r.rejoin_replica(1)
    r.note("action", "rejoin_r1")
    r.reconcile()
    # End to end: exactly the intended rights survived the chain.
    value = int(carol.call(CMD_GET, capability=cap_c).data)
    r.note("delegate", "carol reads %d" % value)
    try:
        carol.call(CMD_INCR, capability=cap_c)
    except PermissionDenied:
        r.note("delegate", "carol write denied")
    else:
        r.violations.append(
            "delegation: read-only hop capability allowed a write"
        )
    r.run_ops(4, spacing=0.03)
    r.quiesce()
    r.check(*STANDARD_INVARIANTS)
    r.check(no_lost_authority(cap_c, RIGHT_READ))
    return r.result()


def _scn_drop_burst_partition(seed):
    from repro.testing.chaos import (
        STANDARD_INVARIANTS,
        ScenarioRunner,
        acked_implies_executed,
        conservation,
        effectively_once,
    )

    r = ScenarioRunner("drop_burst_partition", seed, drop=0.05,
                       client_timeout=0.8)
    r.at(0.15, "burst",
         lambda: r.burst(r.client_machine, drop=0.35, delay=0.2))
    r.at(0.35, "isolate_r2", lambda: r.isolate_replica(2))
    r.at(0.70, "rejoin_r2", lambda: r.rejoin_replica(2))
    r.at(0.80, "calm", lambda: r.calm(r.client_machine))
    r.continuously(effectively_once, conservation, acked_implies_executed)
    r.run_ops(12, spacing=0.06)
    r.quiesce()
    r.check(*STANDARD_INVARIANTS)
    return r.result()


#: The matrix: (family function, seeds).  7 families x 2-3 seeds = 20
#: scenarios; every one runs twice and must replay bit-identically.
SCENARIO_MATRIX = (
    (_scn_partition_revocation_fanout, (11, 12, 13)),
    (_scn_kill_primary_mid_storm, (21, 22, 23)),
    (_scn_asymmetric_partition, (31, 32, 33)),
    (_scn_power_fail_during_partition, (41, 42, 43)),
    (_scn_intruder_replay_mid_partition, (51, 52, 53)),
    (_scn_delegation_chain, (61, 62)),
    (_scn_drop_burst_partition, (71, 72, 73)),
)


def chaos_matrix(seeds_per_family=None):
    """Run the full scenario matrix, each scenario twice (determinism).

    ``seeds_per_family`` trims each family's seed tuple (CI smoke keeps
    the full matrix — the scenarios are virtual-time, so wall cost is
    compute only — but the knob exists for quick local iteration).
    """
    chaos = _chaos_api()
    if chaos is None:
        return None
    scenarios = []
    for family, seeds in SCENARIO_MATRIX:
        for seed in seeds[:seeds_per_family]:
            scenarios.append((family, seed))
    results = []
    nondeterministic = []
    violations = []
    for family, seed in scenarios:
        result = family(seed)
        again = family(seed)
        if again != result:
            nondeterministic.append("%s@%d" % (result["name"], seed))
        for violation in result["violations"]:
            violations.append("%s@%d: %s" % (result["name"], seed, violation))
        results.append(result)
    return {
        "scenarios": len(results),
        "families": len(SCENARIO_MATRIX),
        "acked": sum(r["acked"] for r in results),
        "failed": sum(r["failed"] for r in results),
        "violations": violations,
        "nondeterministic": nondeterministic,
        "deterministic": not nondeterministic,
        "per_scenario": [
            {
                "name": r["name"],
                "seed": r["seed"],
                "acked": r["acked"],
                "failed": r["failed"],
                "partition_drops": r["faults"].get("partition_drops", 0),
                "virtual_seconds": r["virtual_seconds"],
            }
            for r in results
        ],
    }


# ----------------------------------------------------------------------
# the partition primitive on every delivery discipline
# ----------------------------------------------------------------------


class _EchoServer(ObjectServer):
    service_name = "chaos bench echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


def _discipline_world(discipline, plan):
    from repro.net.sched import LatencyModel, VirtualClock

    if discipline == "des":
        net = SimNetwork(
            clock=VirtualClock(),
            latency=LatencyModel(rtt_ms=2.8, jitter_ms=0.2, seed=5),
            faults=plan,
        )
    else:
        net = SimNetwork(synchronous=(discipline == "synchronous"),
                         faults=plan)
    server = _EchoServer(Nic(net), rng=RandomSource(seed=5)).start()
    client = Nic(net)
    return net, server, client


def _echo_once(client, server, payload, timeout=0.25):
    from repro.ipc.rpc import trans

    reply = trans(
        client,
        server.put_port,
        Message(command=USER_BASE, data=payload),
        rng=RandomSource(seed=9),
        timeout=timeout,
    )
    return reply.data == payload


def chaos_partition_disciplines():
    """Sever/heal on all three disciplines: ok -> timeout -> ok again."""
    chaos = _chaos_api()
    if chaos is None:
        return None
    from repro.net.faults import FaultPlan

    out = {}
    for discipline in ("synchronous", "deferred", "des"):
        plan = FaultPlan(seed=5)
        net, server, client = _discipline_world(discipline, plan)
        before = _echo_once(client, server, b"pre-cut")
        plan.sever(src=client.address, dst=server.node.address)
        cut_timed_out = False
        try:
            _echo_once(client, server, b"mid-cut")
        except RPCTimeout:
            cut_timed_out = True
        plan.heal(src=client.address, dst=server.node.address)
        after = _echo_once(client, server, b"post-heal")
        stats = plan.stats()
        out[discipline] = {
            "before_cut_ok": before,
            "cut_timed_out": cut_timed_out,
            "healed_ok": after,
            "partition_drops": stats["partition_drops"],
            "by_link": stats["by_link"],
        }
    return out


#: Registry merged into run_bench.py's workload table.
WORKLOADS = {
    "chaos_matrix": chaos_matrix,
    "chaos_partition_disciplines": chaos_partition_disciplines,
}

#: CI-sized overrides, same shape as bench_throughput.SMOKE_OVERRIDES.
#: The matrix is virtual-time, so smoke keeps all 20 scenarios.
SMOKE_OVERRIDES = {}


def main(argv=None):
    """Stand-alone entry point (``make bench-chaos-smoke``).

    Runs the matrix and the disciplines arm and *asserts* the
    acceptance bars: >= 20 scenarios, zero invariant violations, every
    scenario bit-identical across its double run, and the partition
    primitive severing and healing on all three delivery disciplines.
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode (same matrix; asserts the bars)")
    args = parser.parse_args(argv)

    matrix = chaos_matrix(**SMOKE_OVERRIDES.get("chaos_matrix", {})
                          if args.smoke else {})
    if matrix is None:
        print("chaos API absent on this tree; nothing to check")
        return 0

    failures = []
    for row in matrix["per_scenario"]:
        print("  %-32s seed=%-3d acked=%3d failed=%3d pdrops=%3d %8.3fs virt"
              % (row["name"], row["seed"], row["acked"], row["failed"],
                 row["partition_drops"], row["virtual_seconds"]))
    print("  %d scenarios / %d families, %d acked, %d failed ops"
          % (matrix["scenarios"], matrix["families"],
             matrix["acked"], matrix["failed"]))
    if matrix["scenarios"] < 20:
        failures.append("only %d scenarios (< 20 bar)" % matrix["scenarios"])
    for violation in matrix["violations"]:
        failures.append("invariant violation: %s" % violation)
    for name in matrix["nondeterministic"]:
        failures.append("double run diverged: %s" % name)

    disciplines = chaos_partition_disciplines()
    for discipline, row in sorted(disciplines.items()):
        verdict = (row["before_cut_ok"] and row["cut_timed_out"]
                   and row["healed_ok"])
        print("  partition on %-12s %s (pdrops=%d)"
              % (discipline, "ok/cut/healed" if verdict else "BROKEN",
                 row["partition_drops"]))
        if not verdict:
            failures.append(
                "partition primitive broken on %s: %r" % (discipline, row))
        if row["partition_drops"] <= 0:
            failures.append("no partition drops counted on %s" % discipline)

    if failures:
        print("FAILURES:")
        for failure in failures:
            print("  - %s" % failure)
        return 1
    print("chaos bars hold: %d deterministic scenarios, 0 violations, "
          "partition severs/heals on all 3 disciplines"
          % matrix["scenarios"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
