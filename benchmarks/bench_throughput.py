"""Wire-path throughput: frames/sec through the full transaction stack.

This module is both the library of throughput workloads used by
``benchmarks/run_bench.py`` (which writes ``BENCH_throughput.json``) and a
pytest-benchmark suite over the same workloads.

The workloads deliberately use only APIs that exist in every revision of
this repository (``trans``, ``Nic``, ``SimNetwork``, ``ObjectServer``),
so ``run_bench.py --baseline-src`` can execute the identical code against
an older checkout and report honest speedups.

Workloads
---------
``echo_round_trip``
    One client, one echo server, blocking ``trans`` round trips — the §2.1
    primitive every higher-level operation is built from.
``multi_client``
    N clients × M replicated servers on one shared put-port; exercises the
    round-robin arbiter plus the full dispatch path.
``routing_scan``
    50 attached machines, each listening on its own port; one sender
    cycles port-addressed frames across all of them.  This isolates the
    router: pre-index it scanned every NIC per frame, post-index it is one
    dict lookup.
``pipelined_16_inflight``
    The §2.1 primitive with 16 transactions in flight through the
    event-loop delivery engine (``SimNetwork(synchronous=False)`` +
    ``trans_many``), measured twice: against the full ObjectServer stack
    (apples-to-apples with ``echo_round_trip``) and against a batch
    service built directly on the station API (the engine's own floor).
    Returns None on source trees that predate the engine, so
    ``--baseline-src`` comparisons skip it cleanly.
``stage_timings``
    Per-stage microcosts (one-way F cold/warm, F-box egress, pack,
    unpack) so regressions can be attributed, not just detected.
"""

import time

from repro.core.ports import Port, PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.ipc.rpc import trans
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.fbox import FBox
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic


class EchoServer(ObjectServer):
    service_name = "bench echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


def _quiet(server):
    """Disable per-request counting where supported (no-op on old trees)."""
    server.count_requests = False
    return server


def _best_of(repeats, measured):
    """Run a measured segment ``repeats`` times, return the fastest.

    The minimum is the standard low-noise estimator for a deterministic
    workload: every source of variance (GC, scheduler, frequency
    scaling) only ever adds time.
    """
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        measured()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


# ----------------------------------------------------------------------
# workloads — each returns a dict of stable keys
# ----------------------------------------------------------------------


def echo_round_trip(n=4000, payload=b"payload", warmup=400, repeats=5):
    """Blocking echo transactions, one client against one server."""
    net = SimNetwork()
    server = _quiet(EchoServer(Nic(net), rng=RandomSource(seed=1)).start())
    client = Nic(net)
    rng = RandomSource(seed=2)
    request = Message(command=USER_BASE, data=payload)
    for _ in range(warmup):
        trans(client, server.put_port, request, rng)

    def measured():
        for _ in range(n):
            trans(client, server.put_port, request, rng)

    net.reset_stats()
    elapsed = _best_of(repeats, measured)
    return {
        "transactions": n,
        "frames": net.frames_sent // repeats,
        "seconds": round(elapsed, 6),
        "trans_per_sec": round(n / elapsed, 1),
        "frames_per_sec": round(net.frames_sent / repeats / elapsed, 1),
        "us_per_trans": round(elapsed / n * 1e6, 3),
    }


def multi_client(n_clients=8, n_servers=4, requests=200, warmup=40):
    """N clients × M replicated servers sharing one put-port."""
    net = SimNetwork()
    shared_rng = RandomSource(seed=3)
    first = _quiet(EchoServer(Nic(net), rng=RandomSource(seed=4)).start())
    for _ in range(n_servers - 1):
        _quiet(
            EchoServer(
                Nic(net),
                rng=shared_rng,
                get_port=first.get_port,
                signature=first.signature,
            ).start()
        )
    clients = [Nic(net) for _ in range(n_clients)]
    rng = RandomSource(seed=5)
    request = Message(command=USER_BASE, data=b"x" * 64)
    for client in clients:
        for _ in range(warmup // n_clients + 1):
            trans(client, first.put_port, request, rng)
    total = n_clients * requests

    def measured():
        for _ in range(requests):
            for client in clients:
                trans(client, first.put_port, request, rng)

    net.reset_stats()
    repeats = 3
    elapsed = _best_of(repeats, measured)
    net.frames_sent //= repeats
    return {
        "clients": n_clients,
        "servers": n_servers,
        "transactions": total,
        "frames": net.frames_sent,
        "seconds": round(elapsed, 6),
        "trans_per_sec": round(total / elapsed, 1),
        "frames_per_sec": round(net.frames_sent / elapsed, 1),
        "us_per_trans": round(elapsed / total * 1e6, 3),
    }


def routing_scan(n_machines=50, frames=20000, warmup=500):
    """Port-addressed delivery with many attached machines.

    Every machine has a GET outstanding on its own port, so the pre-index
    router examined all of them for every frame; the sender cycles through
    the ports so no single queue grows unboundedly hot.
    """
    net = SimNetwork()
    sender = Nic(net)
    wire_ports = []
    for i in range(n_machines):
        receiver = Nic(net)
        wire_ports.append(receiver.listen(Port(1000 + i)))
    request = Message(command=USER_BASE)
    n_ports = len(wire_ports)
    for i in range(warmup):
        sender.put(request.copy(dest=wire_ports[i % n_ports]))
    # Pre-build the messages so the measurement isolates routing +
    # delivery rather than message construction.
    cycle = [request.copy(dest=port) for port in wire_ports]

    def measured():
        for i in range(frames):
            sender.put(cycle[i % n_ports])

    net.reset_stats()
    repeats = 3
    elapsed = _best_of(repeats, measured)
    return {
        "machines": n_machines,
        "frames": frames,
        "delivered": net.frames_delivered // repeats,
        "seconds": round(elapsed, 6),
        "frames_per_sec": round(frames / elapsed, 1),
        "us_per_frame": round(elapsed / frames * 1e6, 3),
    }


def pipelined_inflight(inflight=16, batches=250, payload=b"payload",
                       warmup=20, repeats=5):
    """Pipelined transactions through the event-loop delivery engine.

    Two measurements over identical wire traffic:

    * ``trans_per_sec`` — ``trans_many`` against a replicated-shape
      :class:`EchoServer` (the full ObjectServer dispatch stack), the
      number to compare with ``echo_round_trip``;
    * ``primitive_trans_per_sec`` — the same batch against an echo
      service written directly on the batch station API
      (``serve_batch`` + ``put_owned_unicast_bulk``), which is what the
      engine itself costs without the service framework.
    """
    try:
        from repro.ipc.rpc import trans_many
        net = SimNetwork(synchronous=False, auto_drain=False)
    except (ImportError, TypeError):
        return None  # pre-engine source tree (a --baseline-src subrun)

    server = _quiet(EchoServer(Nic(net), rng=RandomSource(seed=1)).start())
    client = Nic(net)
    rng = RandomSource(seed=7)
    requests = [Message(command=USER_BASE, data=payload)] * inflight
    for _ in range(warmup):
        trans_many(client, server.put_port, requests, rng)
    total = inflight * batches

    def measured():
        for _ in range(batches):
            trans_many(client, server.put_port, requests, rng)

    net.reset_stats()
    elapsed = _best_of(repeats, measured)
    frames = net.frames_sent // repeats

    # The primitive-level service: same protocol, no dispatch framework.
    raw_net = SimNetwork(synchronous=False, auto_drain=False)
    service = Nic(raw_net)

    def batch_echo(frames_run):
        out = []
        append = out.append
        for frame in frames_run:
            message = frame.message
            append((message.reply_to(data=message.data), frame.src))
        service.put_owned_unicast_bulk(out)

    wire = service.serve_batch(PrivatePort(1111), batch_echo)
    raw_client = Nic(raw_net)
    for _ in range(warmup):
        trans_many(raw_client, wire, requests, rng)

    def measured_raw():
        for _ in range(batches):
            trans_many(raw_client, wire, requests, rng)

    raw_elapsed = _best_of(repeats, measured_raw)
    return {
        "inflight": inflight,
        "transactions": total,
        "frames": frames,
        "seconds": round(elapsed, 6),
        "trans_per_sec": round(total / elapsed, 1),
        "us_per_trans": round(elapsed / total * 1e6, 3),
        "primitive_trans_per_sec": round(total / raw_elapsed, 1),
        "primitive_us_per_trans": round(raw_elapsed / total * 1e6, 3),
    }


def stage_timings(iters=20000):
    """Microcosts of the individual wire-path stages, in µs per call."""
    fbox = FBox()
    rng = RandomSource(seed=6)
    message = Message(
        dest=Port(7),
        reply=Port(8),
        signature=Port(9),
        command=USER_BASE,
        data=b"d" * 128,
    )
    raw = fbox.transform_egress(message).pack()

    def clock(fn, reps):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        return (time.perf_counter() - start) / reps * 1e6

    warm_port = Port(424242)
    fbox.one_way(warm_port)
    cold_values = [Port.random(rng) for _ in range(iters)]
    cold_iter = iter(cold_values)

    return {
        "one_way_warm_us": round(clock(lambda: fbox.one_way(warm_port), iters), 4),
        "one_way_cold_us": round(
            clock(lambda: fbox.one_way(next(cold_iter)), iters), 4
        ),
        "transform_egress_us": round(
            clock(lambda: fbox.transform_egress(message), iters), 4
        ),
        "pack_us": round(clock(message.pack, iters), 4),
        "unpack_us": round(clock(lambda: Message.unpack(raw), iters), 4),
    }


#: Stable workload registry consumed by run_bench.py.  A workload may
#: return None (API not present on this source tree) and is then omitted
#: from the results.
WORKLOADS = {
    "echo_round_trip": echo_round_trip,
    "multi_client_8x4": multi_client,
    "routing_50_machines": routing_scan,
    "pipelined_16_inflight": pipelined_inflight,
    "stage_timings": stage_timings,
}

#: Reduced-size keyword overrides for `run_bench.py --smoke`: the same
#: workloads at a fraction of the iterations, so CI can prove the whole
#: harness runs in a few seconds without fighting benchmark noise.
SMOKE_OVERRIDES = {
    "echo_round_trip": {"n": 400, "warmup": 50, "repeats": 2},
    "multi_client_8x4": {"requests": 25, "warmup": 8},
    "routing_50_machines": {"frames": 2000, "warmup": 100},
    "pipelined_16_inflight": {"batches": 25, "warmup": 4, "repeats": 2},
    "stage_timings": {"iters": 2000},
}


# ----------------------------------------------------------------------
# pytest-benchmark wrappers
# ----------------------------------------------------------------------


class TestThroughput:
    def test_echo_round_trip(self, benchmark):
        net = SimNetwork()
        server = _quiet(EchoServer(Nic(net), rng=RandomSource(seed=1)).start())
        client = Nic(net)
        rng = RandomSource(seed=2)
        request = Message(command=USER_BASE, data=b"payload")
        reply = benchmark(trans, client, server.put_port, request, rng)
        assert reply.data == b"payload"

    def test_routing_50_machines(self, benchmark):
        net = SimNetwork()
        sender = Nic(net)
        wire_ports = [Nic(net).listen(Port(1000 + i)) for i in range(50)]
        frames = [Message(dest=port) for port in wire_ports]
        counter = iter(range(10**9))

        def send_one():
            return sender.put(frames[next(counter) % 50])

        assert benchmark(send_one)

    def test_pack_unpack(self, benchmark):
        message = Message(dest=Port(7), command=USER_BASE, data=b"d" * 128)
        raw = message.pack()

        def codec_round_trip():
            return Message.unpack(message.pack()).pack() == raw

        assert benchmark(codec_round_trip)
