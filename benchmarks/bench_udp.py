"""Real-wire throughput: transactions/sec across OS processes over UDP.

The in-process workloads in :mod:`bench_throughput` measure the CPU cost
of the stack; these measure the *latency-bearing* path the paper's F-box
argument is actually about — genuine datagrams between two processes on
loopback, with syscalls, pump-thread handoffs, and kernel socket buffers
in the loop.  This is where pipelining pays multiplicatively: while a
serial client spends each round trip waiting, ``trans_many`` keeps 16
transactions in flight, the client's egress buffering coalesces the
burst, and the server's recv-side batching turns it into one batch of
handler calls plus one reply flush.

Workloads (stable keys in ``BENCH_throughput.json``)
----------------------------------------------------
``udp_echo_round_trip``
    Blocking ``trans`` round trips against an :class:`EchoServer` running
    in its own OS process — the serial baseline.
``udp_pipelined_16_inflight``
    The same wire traffic with 16 transactions in flight via
    ``trans_many`` and a ``buffer_egress`` client; ``vs_udp_serial_x``
    (derived in ``run_bench.py``) is the headline pipelining multiple.

The server process is started fresh per workload and handshakes its
address and ports over a pipe; everything uses APIs present since the
event-loop PR, so ``--baseline-src`` comparisons run it unchanged.
"""

import multiprocessing
import time

from repro.core.ports import Port
from repro.crypto.randomsrc import RandomSource
from repro.ipc.rpc import trans, trans_many
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.message import Message
from repro.net.sockets import SocketNode

#: Generous per-transaction timeout: the benchmark must not flake on a
#: loaded CI box; a genuinely lost datagram fails loudly instead.
_TIMEOUT = 10.0


class EchoServer(ObjectServer):
    service_name = "udp bench echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


def _echo_server_proc(conn):
    """Server process body: one EchoServer on one SocketNode.

    Sends ``(address, put_port_value)`` over ``conn`` once listening,
    then blocks until the parent signals shutdown (or dies, which closes
    the pipe).  Egress buffering is on so a batch of requests drained by
    recv-side batching answers with one coalesced reply flush.
    """
    node = SocketNode(buffer_egress=True)
    server = EchoServer(node, rng=RandomSource(seed=1))
    server.count_requests = False
    server.start()
    conn.send((node.address, server.put_port.value))
    try:
        conn.recv()  # blocks for the shutdown token / closed pipe
    except EOFError:
        pass
    node.close()


def _spawn_echo_server():
    """Start the echo server in its own process; returns (proc, conn,
    server address, put port)."""
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(target=_echo_server_proc, args=(child_conn,), daemon=True)
    proc.start()
    child_conn.close()
    address, put_value = parent_conn.recv()
    return proc, parent_conn, address, Port(put_value)


def _stop_server(proc, conn):
    try:
        conn.send("stop")
    except (BrokenPipeError, OSError):
        pass
    proc.join(timeout=5.0)
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=5.0)
    conn.close()


def _best_of(repeats, measured):
    """Fastest of ``repeats`` runs — the low-noise estimator (variance
    from the scheduler and the other process only ever adds time)."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        measured()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


# ----------------------------------------------------------------------
# workloads — each returns a dict of stable keys, or None when the
# source tree under test (a --baseline-src subrun) lacks the APIs
# ----------------------------------------------------------------------


def udp_echo_round_trip(n=800, payload=b"payload", warmup=80, repeats=5):
    """Serial blocking transactions against the other process."""
    proc, conn, address, put_port = _spawn_echo_server()
    try:
        with SocketNode() as client:
            rng = RandomSource(seed=2)
            request = Message(command=USER_BASE, data=payload)
            for _ in range(warmup):
                trans(client, put_port, request, rng,
                      dst_machine=address, timeout=_TIMEOUT)

            def measured():
                for _ in range(n):
                    trans(client, put_port, request, rng,
                          dst_machine=address, timeout=_TIMEOUT)

            elapsed = _best_of(repeats, measured)
    finally:
        _stop_server(proc, conn)
    return {
        "transactions": n,
        "seconds": round(elapsed, 6),
        "trans_per_sec": round(n / elapsed, 1),
        "us_per_trans": round(elapsed / n * 1e6, 3),
    }


def udp_pipelined_inflight(inflight=16, batches=50, payload=b"payload",
                           warmup=6, repeats=5):
    """16-in-flight pipelined transactions over the same wire."""
    proc, conn, address, put_port = _spawn_echo_server()
    try:
        try:
            client = SocketNode(buffer_egress=True)
        except TypeError:
            return None  # pre-engine source tree (a --baseline-src subrun)
        with client:
            rng = RandomSource(seed=3)
            requests = [Message(command=USER_BASE, data=payload)] * inflight
            for _ in range(warmup):
                trans_many(client, put_port, requests, rng,
                           dst_machine=address, timeout=_TIMEOUT)

            def measured():
                for _ in range(batches):
                    trans_many(client, put_port, requests, rng,
                               dst_machine=address, timeout=_TIMEOUT)

            elapsed = _best_of(repeats, measured)
    finally:
        _stop_server(proc, conn)
    total = inflight * batches
    return {
        "inflight": inflight,
        "transactions": total,
        "seconds": round(elapsed, 6),
        "trans_per_sec": round(total / elapsed, 1),
        "us_per_trans": round(elapsed / total * 1e6, 3),
    }


#: Registry merged into run_bench.py's workload table.
WORKLOADS = {
    "udp_echo_round_trip": udp_echo_round_trip,
    "udp_pipelined_16_inflight": udp_pipelined_inflight,
}

#: CI-sized overrides, same shape as bench_throughput.SMOKE_OVERRIDES.
SMOKE_OVERRIDES = {
    "udp_echo_round_trip": {"n": 60, "warmup": 10, "repeats": 1},
    "udp_pipelined_16_inflight": {"batches": 6, "warmup": 2, "repeats": 1},
}


def main(argv=None):
    """Stand-alone entry point (``make bench-udp-smoke``).

    Runs both workloads — tiny sizes with ``--smoke`` — and prints the
    pipelining multiple; never writes ``BENCH_throughput.json`` (that is
    ``run_bench.py``'s job).
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized iteration counts")
    args = parser.parse_args(argv)
    results = {}
    for name, workload in WORKLOADS.items():
        kwargs = SMOKE_OVERRIDES.get(name, {}) if args.smoke else {}
        result = workload(**kwargs)
        if result is None:
            print("  %-26s skipped (API absent)" % name)
            continue
        results[name] = result
        print("  %-26s %10.0f trans/sec  (%.1f us/trans)"
              % (name, result["trans_per_sec"], result["us_per_trans"]))
    serial = results.get("udp_echo_round_trip")
    pipelined = results.get("udp_pipelined_16_inflight")
    if serial and pipelined and serial["trans_per_sec"]:
        print("  %-26s %9.2fx"
              % ("vs_udp_serial_x",
                 pipelined["trans_per_sec"] / serial["trans_per_sec"]))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
