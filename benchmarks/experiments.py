"""The experiment harness: regenerates every figure/claim of the paper.

The paper (a design paper) has two figures and a set of comparative
claims rather than numeric tables; this harness runs each experiment from
DESIGN.md §3 and prints the rows recorded in EXPERIMENTS.md.

Usage:
    python benchmarks/experiments.py            # run everything
    python benchmarks/experiments.py fig1 bank  # run a subset

Experiments: fig1 fig2 algorithms revoke matrix boot servers bank rpc
"""

import sys
import time

from repro.core.capability import Capability
from repro.core.ports import Port
from repro.core.registry import ObjectTable
from repro.core.rights import ALL_RIGHTS, Rights
from repro.core.schemes import CommutativeScheme, all_scheme_names, scheme_by_name
from repro.crypto.publickey import generate_keypair
from repro.crypto.randomsrc import RandomSource
from repro.errors import InsufficientFunds, InvalidCapability
from repro.ipc.client import ServiceClient
from repro.ipc.locate import Locator, install_locate_responder
from repro.ipc.rpc import trans
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.intruder import Intruder
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.softprot.boot import BootProtocol
from repro.softprot.cache import ClientCapabilityCache
from repro.softprot.matrix import CapabilitySealer, KeyMatrix


def timeit(fn, repeats=2000):
    """Median-of-runs microsecond timing for one callable."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        elapsed = (time.perf_counter() - start) / repeats
        best = min(best, elapsed)
    return best * 1e6  # microseconds


def banner(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


class EchoServer(ObjectServer):
    service_name = "echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        if ctx.request.capability is not None:
            ctx.lookup(Rights(0x01))
        return ctx.ok(data=ctx.request.data)


# ---------------------------------------------------------------------------
# FIG1 — clients, servers, intruders, F-boxes
# ---------------------------------------------------------------------------

def run_fig1():
    banner("FIG1  Fig. 1: intruder vs F-box (N = 200 transactions)")
    net = SimNetwork()
    server = EchoServer(Nic(net), rng=RandomSource(seed=1)).start()
    client_nic = Nic(net)
    intruder = Intruder(net, rng=RandomSource(seed=2))
    intruder.start_capture()
    intruder.attempt_get(server.put_port)

    rng = RandomSource(seed=3)
    completed = 0
    for i in range(200):
        reply = trans(client_nic, server.put_port,
                      Message(command=USER_BASE, data=b"txn %d" % i), rng=rng,
                      expect_signature=server.signature_image)
        completed += reply.data == b"txn %d" % i

    forged_accepted = 0
    def race(frame):
        if not frame.message.is_reply and frame.message.command == USER_BASE:
            intruder.forge_reply(frame, data=b"FORGED")
    net.add_tap(race)
    for i in range(100):
        reply = trans(client_nic, server.put_port,
                      Message(command=USER_BASE, data=b"auth %d" % i), rng=rng,
                      expect_signature=server.signature_image)
        forged_accepted += reply.data == b"FORGED"
    net.remove_tap(race)

    print("%-52s %10s" % ("metric", "value"))
    print("%-52s %10d" % ("legitimate transactions completed", completed))
    print("%-52s %10d" % ("frames intercepted by intruder GET(P)",
                          intruder.intercepted_count(server.put_port)))
    print("%-52s %10d" % ("forged replies accepted (signatures on)",
                          forged_accepted))
    print("%-52s %10d" % ("frames sniffed by wiretap (passive)",
                          len(intruder.captured)))
    print("paper's claim: intruder cannot impersonate or forge -> 0 and 0")


# ---------------------------------------------------------------------------
# FIG2 — the capability layout
# ---------------------------------------------------------------------------

def run_fig2():
    banner("FIG2  Fig. 2: capability layout (48+24+8+48 bits)")
    cap = Capability(port=Port(0xAABBCCDDEEFF), object=0x123456,
                     rights=Rights(0x5A), check=b"\x99" * 6)
    raw = cap.pack()
    print("%-52s %10s" % ("field widths (port/object/rights/check)",
                          "48/24/8/48"))
    print("%-52s %10d" % ("packed size (bits)", len(raw) * 8))
    print("%-52s %10s" % ("round-trips through codec",
                          Capability.unpack(raw) == cap))

    rng = RandomSource(seed=4)
    table = ObjectTable(scheme_by_name("xor-oneway"), Port(1), rng=rng)
    target = table.create("guess me")
    hits = 0
    trials = 100_000
    for _ in range(trials):
        try:
            table.lookup(target.with_check(rng.bytes(6)))
            hits += 1
        except InvalidCapability:
            pass
    print("%-52s %7d/%d" % ("random check-field guesses accepted", hits, trials))
    print("paper's claim: 48-bit sparseness makes guessing infeasible")


# ---------------------------------------------------------------------------
# ALG0-3 — the four protection algorithms
# ---------------------------------------------------------------------------

def run_algorithms():
    banner("ALG0-3  §2.3: the four rights-protection algorithms")
    rng = RandomSource(seed=5)
    rows = []
    for name in all_scheme_names():
        scheme = scheme_by_name(name)
        secret = scheme.new_secret(rng)
        rights_field, check = scheme.mint(secret, ALL_RIGHTS)

        mint_us = timeit(lambda: scheme.mint(secret, ALL_RIGHTS), 500)
        verify_us = timeit(lambda: scheme.verify(secret, rights_field, check), 500)

        # tamper fuzzing: flip every rights bit pattern
        rejected = 0
        for flip in range(1, 256):
            try:
                scheme.verify(secret, Rights(int(rights_field) ^ flip), check)
            except InvalidCapability:
                rejected += 1
        restrict = ("client (0 msg)" if scheme.client_restrictable
                    else ("server (2 msg)" if scheme.supports_restriction
                          else "unsupported"))
        rows.append((name, mint_us, verify_us, "%d/255" % rejected, restrict))

    print("%-12s %11s %11s %14s %16s"
          % ("scheme", "mint (us)", "verify (us)", "tampers rej.", "restrict via"))
    for row in rows:
        print("%-12s %11.1f %11.1f %14s %16s" % row)
    print("paper's claims: ALG1/2/3 reject all tampering (simple cannot");
    print("  distinguish rights); only ALG3 restricts without the server.")

    scheme = CommutativeScheme()
    secret = scheme.new_secret(rng)
    rights_field, check = scheme.mint(secret, Rights(0x17))
    plain = timeit(lambda: scheme.verify(secret, rights_field, check), 50)
    brute = timeit(lambda: scheme.recover_rights(secret, check), 5)
    print("ALG3 rights-field speedup: plaintext verify %.0f us vs"
          " 2^8 brute force %.0f us (%.0fx)" % (plain, brute, brute / plain))


# ---------------------------------------------------------------------------
# REVOKE — revocation by refreshing the random number
# ---------------------------------------------------------------------------

def run_revoke():
    banner("REVOKE  §2.3: revocation cost vs outstanding capabilities")
    print("%-24s %14s %12s" % ("outstanding copies", "refresh (us)", "killed"))
    for outstanding in (1, 100, 10_000):
        table = ObjectTable(scheme_by_name("xor-oneway"), Port(1),
                            rng=RandomSource(seed=6))
        owner = table.create("asset")
        copies = [table.restrict(owner, Rights(0x01))
                  for _ in range(outstanding)]
        state = {"cap": owner}

        def refresh():
            state["cap"] = table.refresh(state["cap"])

        cost = timeit(refresh, 200)
        killed = 0
        for cap in copies[:200]:
            try:
                table.lookup(cap)
            except InvalidCapability:
                killed += 1
        print("%-24d %14.1f %9d/%d" % (outstanding, cost,
                                       killed, min(outstanding, 200)))
    print("paper's claim: no central record, yet instant total revocation;")
    print("  measured: cost flat in the number of outstanding copies.")


# ---------------------------------------------------------------------------
# MATRIX — §2.4 software protection
# ---------------------------------------------------------------------------

def run_matrix():
    banner("MATRIX  §2.4: key matrix, replay defence, capability caches")
    matrix = KeyMatrix(rng=RandomSource(seed=7))
    client = CapabilitySealer(matrix.view(1),
                              client_cache=ClientCapabilityCache())
    server = CapabilitySealer(matrix.view(2))
    cap = Capability(port=Port(42), object=7, rights=Rights(0x0F),
                     check=b"\x3c" * 6)
    sealed = client.seal(cap, 2)

    replays = 0
    for src in range(3, 203):
        try:
            if server.unseal(sealed, src) == cap:
                replays += 1
        except InvalidCapability:
            pass
    print("%-52s %7d/200" % ("replays from wrong source that validated", replays))

    cold = timeit(lambda: CapabilitySealer(matrix.view(1)).seal(cap, 2), 200)
    warm = timeit(lambda: client.seal(cap, 2), 2000)
    print("%-52s %10.1f" % ("seal, cold (cipher) us", cold))
    print("%-52s %10.1f" % ("seal, warm (cache hit) us", warm))
    print("%-52s %9.0fx" % ("cache speedup", cold / warm))
    print("paper's claims: wrong-source replay never decrypts to sense;")
    print("  caches avoid running the cipher per message.")


# ---------------------------------------------------------------------------
# BOOT — the public-key bootstrap
# ---------------------------------------------------------------------------

def run_boot():
    banner("BOOT  §2.4: public-key bootstrap, replay immunity")
    rng = RandomSource(seed=8)
    keys = generate_keypair(bits=512, rng=rng)

    start = time.perf_counter()
    offer, forward = BootProtocol.client_offer(keys.public, rng)
    reply, _, reverse_s = BootProtocol.server_accept(keys, offer, rng)
    reverse = BootProtocol.client_confirm(keys.public, forward, reply)
    handshake_ms = (time.perf_counter() - start) * 1e3
    print("%-52s %10.2f" % ("full 3-step handshake (ms)", handshake_ms))
    print("%-52s %10s" % ("both sides agree on fresh keys",
                          reverse == reverse_s))

    replay_rejected = 0
    for _ in range(20):
        offer2, fresh = BootProtocol.client_offer(keys.public, rng)
        try:
            BootProtocol.client_confirm(keys.public, fresh, reply)
        except Exception:
            replay_rejected += 1
    print("%-52s %8d/20" % ("old-boot replies rejected after 'reboot'",
                            replay_rejected))

    impostor = generate_keypair(bits=512, rng=RandomSource(seed=9))
    offer3, fresh3 = BootProtocol.client_offer(keys.public, rng)
    forged_reply, _, _ = BootProtocol.server_accept(
        impostor, impostor.public.encrypt(fresh3, rng=rng), rng)
    try:
        BootProtocol.client_confirm(keys.public, fresh3, forged_reply)
        impostor_ok = True
    except Exception:
        impostor_ok = False
    print("%-52s %10s" % ("impostor (no private key) accepted", impostor_ok))
    print("paper's claim: fresh keys per reboot defeat playback; the")
    print("  signature proves the reply came from the key's owner.")


# ---------------------------------------------------------------------------
# SERVERS — the §3 suite
# ---------------------------------------------------------------------------

def run_servers():
    banner("SRV  §3: the server suite, one workload row each")
    from repro.disk.virtualdisk import VirtualDisk
    from repro.kernel.machine import Machine
    from repro.servers.block import BlockClient, BlockServer
    from repro.servers.directory import DirectoryClient, DirectoryServer, resolve_path
    from repro.servers.flatfile import FlatFileClient, FlatFileServer
    from repro.servers.multiversion import MultiversionClient, MultiversionFileServer

    net = SimNetwork()
    machine = Machine(net, rng=RandomSource(seed=10), memory_capacity=64 << 20)
    ws = Machine(net, rng=RandomSource(seed=11), with_memory_server=False)

    rows = []

    memory = ws.memory_client(remote_port=machine.memory_port)
    seg = memory.create_segment(1 << 16)
    rows.append(("memory: WRITE 4 KiB segment",
                 timeit(lambda: memory.write(seg, 0, b"m" * 4096), 300)))

    blocks = BlockServer(machine.nic, disk=VirtualDisk(n_blocks=1 << 14),
                         rng=RandomSource(seed=12)).start()
    bclient = BlockClient(ws.nic, blocks.put_port, rng=RandomSource(seed=13))
    bcap, _ = bclient.alloc()
    rows.append(("block: WRITE 512 B block",
                 timeit(lambda: bclient.write(bcap, b"b" * 512), 300)))

    files_mem = FlatFileServer(machine.nic, rng=RandomSource(seed=14)).start()
    fmem = FlatFileClient(ws.nic, files_mem.put_port, rng=RandomSource(seed=15))
    fcap = fmem.create()
    rows.append(("flat file (memory): WRITE 8 KiB",
                 timeit(lambda: fmem.write(fcap, 0, b"f" * 8192), 300)))

    server_nic2 = Nic(net)
    files_blk = FlatFileServer(
        server_nic2,
        block_client=BlockClient(server_nic2, blocks.put_port,
                                 rng=RandomSource(seed=16)),
        rng=RandomSource(seed=17),
    ).start()
    fblk = FlatFileClient(ws.nic, files_blk.put_port, rng=RandomSource(seed=18))
    fcap2 = fblk.create()
    rows.append(("flat file (block-backed): WRITE 8 KiB",
                 timeit(lambda: fblk.write(fcap2, 0, b"f" * 8192), 50)))

    dirs = DirectoryServer(machine.nic, rng=RandomSource(seed=19)).start()
    dclient = DirectoryClient(ws.nic, dirs.put_port, rng=RandomSource(seed=20))
    root = dirs.create_root()
    current = root
    for i in range(8):
        current = dclient.create_directory(current, "d%d" % i)
    leaf = dirs.table.create("leaf")
    dclient.enter(current, "leaf", leaf)
    path = "/".join("d%d" % i for i in range(8)) + "/leaf"
    rng2 = RandomSource(seed=21)
    rows.append(("directory: resolve 9-component path",
                 timeit(lambda: resolve_path(ws.nic, root, path, rng2), 100)))

    mv = MultiversionFileServer(machine.nic,
                                disk=VirtualDisk(n_blocks=1 << 14),
                                rng=RandomSource(seed=22)).start()
    mvc = MultiversionClient(ws.nic, mv.put_port, rng=RandomSource(seed=23))
    doc = mvc.create_file()
    v, _ = mvc.new_version(doc)
    mvc.write(v, 0, b"p" * (32 * 512))
    mvc.commit(v)
    rows.append(("multiversion: branch 32-page file (COW)",
                 timeit(lambda: mvc.new_version(doc), 200)))

    print("%-46s %14s" % ("operation (all over RPC)", "latency (us)"))
    for label, us in rows:
        print("%-46s %14.1f" % (label, us))
    print("shape: block-backed files pay ~block-count extra RPCs vs the")
    print("  in-memory backend -- the price of §3.2 modularity.")


# ---------------------------------------------------------------------------
# BANK — §3.6 economy
# ---------------------------------------------------------------------------

def run_bank():
    banner("BANK  §3.6: transfers, conservation, quota by pricing")
    from repro.servers.bank import BankClient, BankServer, R_DEPOSIT, R_INSPECT, R_WITHDRAW
    from repro.servers.charging import ChargingFlatFileServer
    from repro.servers.flatfile import FILE_CREATE, FILE_WRITE, FlatFileClient

    net = SimNetwork()
    bank_nic, storage_nic, ws_nic = Nic(net), Nic(net), Nic(net)
    bank = BankServer(bank_nic, exchange_rates={("USD", "FRF"): (7, 1)},
                      rng=RandomSource(seed=24)).start()
    bclient = BankClient(ws_nic, bank.put_port, rng=RandomSource(seed=25))
    central = bank.create_account({"USD": 10_000}, mint_right=True)
    alice = bclient.open_account()
    bclient.transfer(central, alice, "USD", 20)

    xfer_us = timeit(lambda: (bclient.transfer(central, alice, "USD", 1),
                              bclient.transfer(alice, central, "USD", 1)), 200)
    print("%-52s %10.1f" % ("transfer round (2 transfers) us", xfer_us))
    print("%-52s %10d" % ("USD in circulation after 400 transfers",
                          bank.total_in_circulation("USD")))
    print("%-52s %10d" % ("USD ever minted", bank.minted["USD"]))

    revenue = bank.create_account()
    charging = ChargingFlatFileServer(
        storage_nic,
        bank_client=BankClient(storage_nic, bank.put_port,
                               rng=RandomSource(seed=26)),
        revenue_cap=revenue, price=1, charge_unit=512,
        rng=RandomSource(seed=27),
    ).start()
    fclient = FlatFileClient(ws_nic, charging.put_port, rng=RandomSource(seed=28))
    pay = bclient.restrict(alice, R_WITHDRAW | R_DEPOSIT | R_INSPECT)
    cap = fclient.call(FILE_CREATE, data=b"", extra_caps=(pay,)).capability
    written = 0
    quota_hit = False
    for _ in range(100):
        try:
            fclient.call(FILE_WRITE, capability=cap, offset=written,
                         data=b"x" * 512, extra_caps=(pay,))
            written += 512
        except InsufficientFunds:
            quota_hit = True
            break
    print("%-52s %10d" % ("bytes bought before quota (20 USD, 1 USD/512B)",
                          written))
    print("%-52s %10s" % ("quota enforced purely by money running out",
                          quota_hit))
    balance_before = bclient.balance(alice).get("USD", 0)
    fclient.destroy(cap)
    print("%-52s %10d" % ("refund on destroy (USD back in wallet)",
                          bclient.balance(alice).get("USD", 0) - balance_before))
    print("paper's claims: money is conserved; dollars ARE the disk quota;")
    print("  returning disk blocks returns the money.")


# ---------------------------------------------------------------------------
# RPC — §2.1 communication model
# ---------------------------------------------------------------------------

def run_rpc():
    banner("RPC  §2.1/§2.2: transaction latency and LOCATE economics")
    net = SimNetwork()
    server_nic = Nic(net)
    install_locate_responder(server_nic)
    server = EchoServer(server_nic, rng=RandomSource(seed=29)).start()
    client_nic = Nic(net)
    rng = RandomSource(seed=30)

    for label, size in (("64 B", 64), ("1 KiB", 1024), ("8 KiB", 8192)):
        payload = b"p" * size
        us = timeit(lambda: trans(client_nic, server.put_port,
                                  Message(command=USER_BASE, data=payload),
                                  rng=rng), 300)
        print("%-52s %10.1f" % ("trans round-trip, %s payload (us)" % label, us))

    locator = Locator(client_nic, rng=RandomSource(seed=31))
    locator.locate(server.put_port)
    net.reset_stats()
    for _ in range(1000):
        locator.locate(server.put_port)
    print("%-52s %10d" % ("wire frames for 1000 cached locates", net.frames_sent))
    cold = timeit(lambda: Locator(client_nic,
                                  rng=RandomSource(seed=32)).locate(server.put_port),
                  200)
    warm = timeit(lambda: locator.locate(server.put_port), 2000)
    print("%-52s %10.1f" % ("locate, cold (broadcast + HERE) us", cold))
    print("%-52s %10.1f" % ("locate, cache hit us", warm))


EXPERIMENTS = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "algorithms": run_algorithms,
    "revoke": run_revoke,
    "matrix": run_matrix,
    "boot": run_boot,
    "servers": run_servers,
    "bank": run_bank,
    "rpc": run_rpc,
}


def main(argv):
    chosen = argv or list(EXPERIMENTS)
    unknown = [name for name in chosen if name not in EXPERIMENTS]
    if unknown:
        print("unknown experiment(s): %s" % ", ".join(unknown))
        print("available: %s" % " ".join(EXPERIMENTS))
        return 1
    for name in chosen:
        EXPERIMENTS[name]()
    print()
    print("all experiments done")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
