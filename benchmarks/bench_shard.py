"""Sharded-data-plane benchmarks: contended lookups and overload floods.

Two workloads, both aimed at the server data plane rather than the wire:

``contended_lookup_8t``
    Eight threads hammer one server's :class:`ObjectTable` with repeat
    capability validations — the §2–§3 hot path every request funnels
    through.  On the monolithic tree every lookup serializes on one
    table lock and re-runs the one-way function; on the sharded tree
    each thread's objects live in their own lock stripes and repeat
    validations hit the per-entry verified memo (§2.4 applied server
    side).  The workload uses only APIs present in every revision
    (``ObjectTable``, ``create``, ``lookup``), so
    ``run_bench.py --baseline-src`` runs the identical code against an
    older checkout for an honest before/after.

``flood_drop_vs_backpressure``
    The first overload experiment against the PR 2 queue stats: a
    client floods a server's ingress port far beyond its queue bound
    and the event loop's ``depth``/``dropped_overflow`` counters make
    the loss visible, then the same flood runs against an unbounded
    queue (backpressure-by-memory).  Both arms measure pipelined
    throughput before and after the flood — a healthy server sheds the
    overload and returns to its pre-flood rate.

Run stand-alone (``make bench-shard-smoke``) this module *asserts* the
overload contract: the bounded arm must report nonzero
``dropped_overflow`` with the queue capped at ``max_depth``, the
unbounded arm must accept everything, and post-flood throughput must
recover.
"""

import threading
import time

from repro.core.ports import Port
from repro.core.registry import ObjectTable
from repro.core.schemes import scheme_by_name
from repro.crypto.randomsrc import RandomSource
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic


class EchoServer(ObjectServer):
    service_name = "shard bench echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


# ----------------------------------------------------------------------
# contended capability validation
# ----------------------------------------------------------------------


def contended_lookup(threads=8, objects=64, per_thread=25000, repeats=3):
    """N threads validating capabilities against one object table.

    Each thread owns a disjoint slice of the objects (the natural shape
    of a server whose concurrent requests name different objects), so
    on the sharded tree the threads touch disjoint lock stripes; on the
    monolithic tree they all serialize on the single table lock.
    """
    table = ObjectTable(
        scheme_by_name("xor-oneway"), Port(1), rng=RandomSource(seed=11)
    )
    caps = [table.create(i) for i in range(objects)]
    for cap in caps:
        table.lookup(cap)  # warm: prove every capability once

    def run_once():
        barrier = threading.Barrier(threads + 1)

        def worker(tid):
            mine = caps[tid::threads]
            span = len(mine)
            lookup = table.lookup
            barrier.wait()
            for j in range(per_thread):
                lookup(mine[j % span])

        workers = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads)
        ]
        for t in workers:
            t.start()
        barrier.wait()
        start = time.perf_counter()
        for t in workers:
            t.join()
        return time.perf_counter() - start

    elapsed = min(run_once() for _ in range(repeats))
    total = threads * per_thread

    # Single-thread reference over the same capability cycle, for
    # attribution (how much is striping vs the per-op fast path).
    single_n = min(total, 4 * per_thread)
    lookup = table.lookup
    start = time.perf_counter()
    for j in range(single_n):
        lookup(caps[j % objects])
    single_elapsed = time.perf_counter() - start

    return {
        "threads": threads,
        "objects": objects,
        "shards": getattr(table, "shard_count", 1),
        "lookups": total,
        "seconds": round(elapsed, 6),
        "lookups_per_sec": round(total / elapsed, 1),
        "us_per_lookup": round(elapsed / total * 1e6, 3),
        "single_thread_lookups_per_sec": round(single_n / single_elapsed, 1),
    }


# ----------------------------------------------------------------------
# synthetic flood vs the PR 2 queue stats
# ----------------------------------------------------------------------


def _pipelined_rate(client, put_port, requests, rng, batches, trans_many,
                    repeats=3):
    """Best-of-``repeats`` pipelined throughput (the minimum-time
    estimator the other benchmarks use: noise only ever adds time)."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(batches):
            trans_many(client, put_port, requests, rng)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return len(requests) * batches / best


def _flood_arm(max_queue_depth, flood, inflight, batches, warmup):
    """One flood run; returns None on trees without the event loop."""
    try:
        from repro.ipc.rpc import trans_many
    except ImportError:
        return None
    try:
        net = SimNetwork(
            synchronous=False, auto_drain=False, max_queue_depth=max_queue_depth
        )
    except TypeError:
        return None
    server = EchoServer(Nic(net), rng=RandomSource(seed=1)).start()
    server.count_requests = False
    client = Nic(net)
    rng = RandomSource(seed=9)
    requests = [Message(command=USER_BASE, data=b"payload")] * inflight
    for _ in range(warmup):
        trans_many(client, server.put_port, requests, rng)
    pre = _pipelined_rate(
        client, server.put_port, requests, rng, batches, trans_many
    )
    net.reset_stats()
    # The flood: port-addressed requests blasted at the server's ingress
    # queue with no pump in between — an attacker (or a stampede) that
    # sends far faster than the server drains.
    flood_message = Message(command=USER_BASE, data=b"x" * 32)
    wire = server.put_port
    accepted = 0
    for _ in range(flood):
        if client.put(flood_message.copy(dest=wire)):
            accepted += 1
    stats = net.loop.stats()
    peak_depth = stats["max_depth_seen"]
    dropped = stats["dropped_overflow"]
    net.pump()  # the server sheds/serves the backlog
    post = _pipelined_rate(
        client, server.put_port, requests, rng, batches, trans_many
    )
    return {
        "max_queue_depth": max_queue_depth,
        "offered": flood,
        "accepted": accepted,
        "dropped_overflow": dropped,
        "peak_depth": peak_depth,
        "pre_flood_trans_per_sec": round(pre, 1),
        "post_flood_trans_per_sec": round(post, 1),
        "post_flood_ratio": round(post / pre, 3) if pre else 0.0,
    }


def flood_drop_vs_backpressure(flood=20000, max_depth=256, inflight=16,
                               batches=40, warmup=8):
    """Overload a server's ingress queue under both queue policies.

    * ``drop``: ``max_queue_depth`` bounds the queue; the tail of the
      flood is dropped and *counted* (``dropped_overflow``), memory
      stays bounded at ``max_depth``.
    * ``backpressure``: the unbounded queue absorbs the entire flood —
      nothing is lost, but ``peak_depth`` shows the memory the server
      traded for it.

    Both arms report pre- and post-flood pipelined throughput; the
    ratio is the recovery measure (a server that survives overload
    should return to its pre-flood rate once the queue drains).
    """
    drop = _flood_arm(max_depth, flood, inflight, batches, warmup)
    if drop is None:
        return None  # pre-event-loop source tree (a --baseline-src subrun)
    backpressure = _flood_arm(0, flood, inflight, batches, warmup)
    return {
        "offered": flood,
        "max_depth": max_depth,
        "dropped_overflow": drop["dropped_overflow"],
        "post_flood_ratio": drop["post_flood_ratio"],
        "drop": drop,
        "backpressure": backpressure,
    }


#: Registry merged into run_bench.py's workload table.
WORKLOADS = {
    "contended_lookup_8t": contended_lookup,
    "flood_drop_vs_backpressure": flood_drop_vs_backpressure,
}

#: CI-sized overrides, same shape as bench_throughput.SMOKE_OVERRIDES.
SMOKE_OVERRIDES = {
    "contended_lookup_8t": {"per_thread": 2500, "repeats": 2},
    "flood_drop_vs_backpressure": {"flood": 2500, "batches": 10, "warmup": 4},
}


def main(argv=None):
    """Stand-alone entry point (``make bench-shard-smoke``).

    Runs both workloads, prints the headline numbers, and *asserts* the
    overload contract: the bounded arm drops and counts, the unbounded
    arm absorbs, and both recover their pre-flood throughput.  Never
    writes ``BENCH_throughput.json`` (that is ``run_bench.py``'s job).
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized iteration counts")
    args = parser.parse_args(argv)
    results = {}
    for name, workload in WORKLOADS.items():
        kwargs = SMOKE_OVERRIDES.get(name, {}) if args.smoke else {}
        result = workload(**kwargs)
        if result is None:
            print("  %-28s skipped (API absent)" % name)
            continue
        results[name] = result
    contended = results.get("contended_lookup_8t")
    if contended:
        print("  %-28s %12.0f lookups/sec  (%d threads, %d shards)"
              % ("contended_lookup_8t", contended["lookups_per_sec"],
                 contended["threads"], contended["shards"]))
    failures = []
    flood = results.get("flood_drop_vs_backpressure")
    if flood:
        drop, backpressure = flood["drop"], flood["backpressure"]
        print("  %-28s dropped %d/%d at depth %d, recovery %.2fx"
              % ("flood: drop policy", drop["dropped_overflow"],
                 drop["offered"], drop["max_queue_depth"],
                 drop["post_flood_ratio"]))
        print("  %-28s absorbed %d, peak depth %d, recovery %.2fx"
              % ("flood: backpressure", backpressure["accepted"],
                 backpressure["peak_depth"],
                 backpressure["post_flood_ratio"]))
        if drop["dropped_overflow"] <= 0:
            failures.append("bounded queue dropped nothing under flood")
        if drop["peak_depth"] > drop["max_queue_depth"]:
            failures.append(
                "queue depth %d exceeded its %d bound"
                % (drop["peak_depth"], drop["max_queue_depth"])
            )
        if backpressure["dropped_overflow"] != 0:
            failures.append("unbounded queue dropped frames")
        # The recovery bar is loose in smoke mode (tiny batches are
        # noisy on a loaded CI box); the full run holds a tighter one.
        floor = 0.5 if args.smoke else 0.8
        for arm_name, arm in (("drop", drop), ("backpressure", backpressure)):
            if arm["post_flood_ratio"] < floor:
                failures.append(
                    "%s arm recovered only %.2fx of pre-flood throughput"
                    % (arm_name, arm["post_flood_ratio"])
                )
    for failure in failures:
        print("FAIL: %s" % failure)
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
