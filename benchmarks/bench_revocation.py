"""REVOKE: §2.3 revocation — constant-time regardless of outstanding copies.

"Although no central record is kept of who has which capabilities, it is
easy to revoke existing capabilities" — the whole point is that refresh
cost does NOT depend on how many copies exist, because no copies are
tracked.  The benchmark sweeps the number of outstanding capabilities and
shows a flat cost (plus 100% kill rate).
"""

import pytest

from repro.core.ports import Port
from repro.core.registry import ObjectTable
from repro.core.rights import Rights
from repro.core.schemes import scheme_by_name
from repro.crypto.randomsrc import RandomSource
from repro.errors import InvalidCapability


@pytest.mark.parametrize("outstanding", [1, 100, 10_000])
class TestRevocationCost:
    def test_refresh_flat_cost(self, benchmark, outstanding):
        table = ObjectTable(
            scheme_by_name("xor-oneway"), Port(1), rng=RandomSource(seed=1)
        )
        owner = table.create("asset")
        copies = [table.restrict(owner, Rights(0x01)) for _ in range(outstanding)]

        # benchmark rounds each need a valid owner capability; refresh
        # returns one, so thread it through.
        state = {"cap": owner}

        def refresh():
            state["cap"] = table.refresh(state["cap"])
            return state["cap"]

        fresh = benchmark(refresh)
        # Every old copy is dead, no matter how many there were.
        for dead in copies[:50]:
            with pytest.raises(InvalidCapability):
                table.lookup(dead)
        table.lookup(fresh)


class TestRevocationCompleteness:
    def test_kill_rate_is_total(self, benchmark):
        table = ObjectTable(
            scheme_by_name("xor-oneway"), Port(1), rng=RandomSource(seed=2)
        )

        def campaign():
            owner = table.create("asset")
            copies = [
                table.restrict(owner, Rights(bits)) for bits in range(1, 64)
            ]
            table.refresh(owner)
            killed = 0
            for cap in copies:
                try:
                    table.lookup(cap)
                except InvalidCapability:
                    killed += 1
            table.destroy(table.mint_for(owner.object))
            return killed

        assert benchmark(campaign) == 63
