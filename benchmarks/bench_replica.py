"""Replicated-service benchmarks: one logical port, N OS processes.

Three workloads (stable keys in ``BENCH_throughput.json``):

``replica_udp_aggregate_4``
    Aggregate echo throughput of a 4-process :class:`ReplicaPool` over
    loopback UDP — four client threads, each pinned to one replica —
    against the same four threads hammering a 1-process pool.
    ``scaling_x`` is the aggregate ratio.  On a single-CPU CI box the
    ratio stays near 1 (every process shares one core and the syscall
    path is already amortized); on real hardware it approaches N.  The
    point of the workload is the *shape* of the number, as with the PR 3
    fork benchmarks.

``replica_kill_failover``
    The acceptance scenario: a 4-process pool under a multi-threaded
    client retry storm; one replica is SIGKILLed mid-storm.  Asserts —
    hard, in both full and smoke runs — that every transaction
    completes (clients re-locate and fail over), that no replica ever
    double-executes a transaction (per-replica ReplyCache dedup), and
    that each client forgot exactly the dead member from its location
    cache, keeping the survivors.

``replica_sim_flood``
    The PR 5 overload experiment run against the replica pool: a
    port-addressed flood into a bounded ingress queue (the simulated
    network round-robins the logical port across all replicas), with
    drop-and-count at the bound and a post-flood recovery measurement.
"""

import json
import threading
import time

from repro.crypto.randomsrc import RandomSource
from repro.errors import RPCTimeout
from repro.ipc import stdops
from repro.ipc.client import ServiceClient
from repro.ipc.locate import Locator
from repro.ipc.replica import (
    ReplicaObjectServer,
    ReplicaPool,
    ReplicatedObjectServer,
)
from repro.ipc.rpc import RetryPolicy, trans, trans_many
from repro.ipc.server import command
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.net.sockets import SocketNode

#: Generous per-transaction budget: failover burns candidate timeout
#: slices before succeeding, and CI boxes stall; a real loss still
#: fails loudly.
_TIMEOUT = 8.0


class EchoReplicaServer(ReplicaObjectServer):
    """Replica data plane plus the echo op the throughput arms drive."""

    service_name = "replica bench echo"

    @command(stdops.USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


class RecordReplicaServer(ReplicaObjectServer):
    """Records every transaction id it executes, for dedup audits.

    ``USER_BASE`` records the request payload (a client-unique
    transaction id) and its execution count on *this* replica;
    ``USER_BASE + 1`` returns the whole record as JSON.  A retried
    transaction absorbed by the ReplyCache replays the reply without
    re-recording — so any count above 1 is a real double-execution.
    """

    service_name = "replica bench recorder"
    RECORD = stdops.USER_BASE
    REPORT = stdops.USER_BASE + 1

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._record = {}
        self._record_lock = threading.Lock()

    @command(RECORD)
    def _user_record(self, ctx):
        txn = ctx.request.data.decode("utf-8")
        with self._record_lock:
            self._record[txn] = self._record.get(txn, 0) + 1
        return ctx.ok()

    @command(REPORT)
    def _user_report(self, ctx):
        with self._record_lock:
            body = json.dumps(self._record, sort_keys=True)
        return ctx.ok(data=body.encode("utf-8"))


def _pinned_echo_threads(addresses, put_port, expect_signature, n, payload,
                         threads_per_member=1):
    """Drive serial echo round trips from one thread per (replica,
    lane) pair, each thread unicast-pinned to its replica.  Returns
    (aggregate wall seconds, total transactions)."""
    errors = []
    workers = []
    start = threading.Barrier(
        len(addresses) * threads_per_member + 1
    )

    def body(address, seed):
        node = SocketNode()
        try:
            rng = RandomSource(seed)
            request = Message(command=stdops.USER_BASE, data=payload)
            trans(node, put_port, request, rng, timeout=_TIMEOUT,
                  expect_signature=expect_signature, dst_machine=address)
            start.wait()
            for _ in range(n):
                trans(node, put_port, request, rng, timeout=_TIMEOUT,
                      expect_signature=expect_signature, dst_machine=address)
        except Exception as exc:  # pragma: no cover - surfaced in caller
            errors.append(exc)
        finally:
            node.close()

    for lane in range(threads_per_member):
        for i, address in enumerate(addresses):
            worker = threading.Thread(
                target=body, args=(address, 1000 + 31 * lane + i)
            )
            worker.start()
            workers.append(worker)
    start.wait()
    begin = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - begin
    if errors:
        raise errors[0]
    return elapsed, n * len(workers)


def replica_udp_aggregate(replicas=4, n=400, payload=b"payload"):
    """Aggregate N-process pool throughput vs a 1-process pool."""
    pool = ReplicaPool(
        replicas=replicas, objects=1, server_factory=EchoReplicaServer,
        seed=b"bench-aggregate",
    )
    try:
        pooled_s, pooled_n = _pinned_echo_threads(
            pool.addresses, pool.put_port, pool.signature.public, n, payload
        )
    finally:
        pool.stop()
    single = ReplicaPool(
        replicas=1, objects=1, server_factory=EchoReplicaServer,
        seed=b"bench-aggregate-single",
    )
    try:
        # Same client parallelism (N threads), one server process.
        single_s, single_n = _pinned_echo_threads(
            single.addresses * replicas, single.put_port,
            single.signature.public, n, payload,
        )
    finally:
        single.stop()
    pooled_rate = pooled_n / pooled_s
    single_rate = single_n / single_s
    return {
        "replicas": replicas,
        "transactions": pooled_n,
        "pool_trans_per_sec": round(pooled_rate, 1),
        "single_process_trans_per_sec": round(single_rate, 1),
        "scaling_x": round(pooled_rate / single_rate, 3) if single_rate else 0.0,
    }


def replica_kill_failover(replicas=4, client_threads=4, per_thread=24,
                          kill_index=1, payload_prefix="txn"):
    """Kill one of N mid-storm; assert completion, dedup, invalidation."""
    if per_thread < 2 * replicas + 2:
        # The post-kill phase must cover at least one full round-robin
        # rotation per client, so every client provably encounters the
        # dead member and fails over.
        per_thread = 2 * replicas + 2
    pool = ReplicaPool(
        replicas=replicas, objects=1, server_factory=RecordReplicaServer,
        seed=b"bench-failover",
    )
    total = client_threads * per_thread
    pre_kill = per_thread // 2
    completed = []
    completed_lock = threading.Lock()
    failures = []
    locators = []
    # The kill lands between the two storm phases: every client has
    # completed half its transactions, the rest happen against a pool
    # with one freshly SIGKILLed member.
    phase_done = threading.Barrier(client_threads + 1)
    resume = threading.Event()
    try:
        def storm(thread_index):
            node = SocketNode()
            try:
                node.connect(pool.arbiter.address)
                locator = Locator(node, rng=RandomSource(500 + thread_index))
                locators.append(locator)
                client = ServiceClient(
                    node,
                    pool.put_port,
                    rng=RandomSource(600 + thread_index),
                    expect_signature=pool.signature.public,
                    locator=locator,
                    timeout=_TIMEOUT,
                    retry=RetryPolicy(attempts=3, rto=0.05, cap=0.5,
                                      seed=thread_index),
                )
                for i in range(per_thread):
                    if i == pre_kill:
                        phase_done.wait()
                        resume.wait()
                    txn = "%s-%d-%d" % (payload_prefix, thread_index, i)
                    client.call(RecordReplicaServer.RECORD,
                                data=txn.encode("utf-8"))
                    with completed_lock:
                        completed.append(txn)
            except Exception as exc:
                failures.append((thread_index, exc))
                try:
                    phase_done.abort()
                except Exception:
                    pass
                resume.set()
            finally:
                node.close()

        workers = [
            threading.Thread(target=storm, args=(t,))
            for t in range(client_threads)
        ]
        for worker in workers:
            worker.start()
        phase_done.wait()  # every client finished its pre-kill half
        pool.kill(kill_index)
        resume.set()
        for worker in workers:
            worker.join()

        assert not failures, "storm transactions failed: %r" % failures[:3]
        assert len(completed) == total, (
            "only %d/%d transactions completed" % (len(completed), total)
        )

        # Per-replica dedup audit: ask every surviving replica for its
        # execution record; any transaction executed twice on one
        # replica is a correctness failure.
        audit_node = SocketNode()
        try:
            multiplicities = []
            recorded = set()
            for index, address in enumerate(pool.addresses):
                if index == kill_index:
                    continue
                reply = trans(
                    audit_node, pool.put_port,
                    Message(command=RecordReplicaServer.REPORT),
                    RandomSource(900 + index), timeout=_TIMEOUT,
                    expect_signature=pool.signature.public,
                    dst_machine=address,
                )
                record = json.loads(reply.data.decode("utf-8"))
                recorded.update(record)
                multiplicities.extend(record.values())
            max_multiplicity = max(multiplicities) if multiplicities else 0
            assert max_multiplicity <= 1, (
                "a replica double-executed a transaction (max multiplicity %d)"
                % max_multiplicity
            )
        finally:
            audit_node.close()

        # Location-cache audit: every client discovered the crash by
        # timeout and forgot exactly the dead member.
        dead = pool.addresses[kill_index]
        survivors_cached = []
        for locator in locators:
            cached = locator.cache.get(pool.put_port)
            assert cached is not None and dead not in cached, (
                "a client still maps the port to the killed replica"
            )
            survivors_cached.append(len(cached))
        assert all(count == replicas - 1 for count in survivors_cached), (
            "failover dropped a surviving member: %r" % survivors_cached
        )
    finally:
        pool.stop()
    return {
        "replicas": replicas,
        "transactions": total,
        "completed": len(completed),
        "executions_seen": len(recorded),
        "max_multiplicity_per_replica": max_multiplicity,
        "double_executions": sum(1 for m in multiplicities if m > 1),
        "survivors_cached": survivors_cached,
    }


def replica_sim_flood(replicas=4, max_queue_depth=256, flood=20000,
                      inflight=16, batches=40, warmup=8):
    """Bounded-ingress overload of the replicated pool (PR 5 rerun).

    The simulated network round-robins port-addressed frames among the
    listeners sharing the logical port, so the flood — and the recovery
    traffic — spreads across all replicas while the single bounded
    queue drops-and-counts the excess.
    """
    net = SimNetwork(
        synchronous=False, auto_drain=False, max_queue_depth=max_queue_depth
    )
    pool = ReplicatedObjectServer(
        net, replicas=replicas, rng=RandomSource(5),
        server_cls=EchoReplicaServer,
    ).start()
    for server in pool.servers:
        server.count_requests = False
    client = Nic(net)
    rng = RandomSource(seed=9)
    requests = [Message(command=stdops.USER_BASE, data=b"payload")] * inflight

    def pipelined_rate():
        begin = time.perf_counter()
        for _ in range(batches):
            trans_many(client, pool.put_port, requests, rng)
        return inflight * batches / (time.perf_counter() - begin)

    for _ in range(warmup):
        trans_many(client, pool.put_port, requests, rng)
    pre = pipelined_rate()
    net.reset_stats()
    flood_message = Message(command=stdops.USER_BASE, data=b"x" * 32)
    wire = pool.put_port
    accepted = 0
    for _ in range(flood):
        if client.put(flood_message.copy(dest=wire)):
            accepted += 1
    stats = net.loop.stats()
    net.pump()  # the pool sheds and serves the backlog
    post = pipelined_rate()
    served = sum(1 for s in pool.servers)
    pool.stop()
    dropped = stats["dropped_overflow"]
    assert dropped > 0, "the flood never hit the queue bound"
    assert stats["max_depth_seen"] <= max_queue_depth
    return {
        "replicas": served,
        "max_queue_depth": max_queue_depth,
        "offered": flood,
        "accepted": accepted,
        "dropped_overflow": dropped,
        "peak_depth": stats["max_depth_seen"],
        "pre_flood_trans_per_sec": round(pre, 1),
        "post_flood_trans_per_sec": round(post, 1),
        "post_flood_ratio": round(post / pre, 3) if pre else 0.0,
    }


#: Registry merged into run_bench.py's workload table.
WORKLOADS = {
    "replica_udp_aggregate_4": replica_udp_aggregate,
    "replica_kill_failover": replica_kill_failover,
    "replica_sim_flood": replica_sim_flood,
}

#: CI-sized overrides, same shape as bench_throughput.SMOKE_OVERRIDES.
SMOKE_OVERRIDES = {
    "replica_udp_aggregate_4": {"n": 60},
    "replica_kill_failover": {"per_thread": 10},
    "replica_sim_flood": {"flood": 4000, "batches": 8, "warmup": 2},
}


def main(argv=None):
    """Stand-alone entry point (``make bench-replica-smoke``).

    Runs all three workloads — the failover arm's assertions are the CI
    bar: completion of every transaction, zero per-replica
    double-executions, and member-wise invalidation.  Never writes
    ``BENCH_throughput.json`` (that is ``run_bench.py``'s job).
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized iteration counts")
    args = parser.parse_args(argv)
    for name, workload in WORKLOADS.items():
        kwargs = SMOKE_OVERRIDES.get(name, {}) if args.smoke else {}
        result = workload(**kwargs)
        print("  %-26s %s" % (name, json.dumps(result, sort_keys=True)))
    print("  replica-kill failover: all transactions completed, "
          "zero per-replica double-executions")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
