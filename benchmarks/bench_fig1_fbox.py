"""FIG1: ports, F-boxes, and the intruder — costs and outcomes.

Regenerates Fig. 1 as measurements: the F-box transformation is the only
per-message crypto the F-box design needs (one truncated hash on each of
two fields), GET/PUT matching is a dictionary lookup, and an intruder
campaign scores zero interceptions while the legitimate client scores
100% completions.
"""

import pytest

from repro.core.ports import Port, PrivatePort
from repro.crypto.randomsrc import RandomSource
from repro.ipc.rpc import trans
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.fbox import FBox
from repro.net.intruder import Intruder
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic


class Echo(ObjectServer):
    service_name = "echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


class TestFBoxCost:
    def test_one_way_port(self, benchmark):
        fbox = FBox()
        out = benchmark(fbox.one_way, Port(0x123456789ABC))
        assert out != Port(0x123456789ABC)

    def test_egress_transform(self, benchmark):
        fbox = FBox()
        message = Message(
            dest=Port(1), reply=Port(2), signature=Port(3), data=b"x" * 64
        )
        out = benchmark(fbox.transform_egress, message)
        assert out.dest == Port(1)

    def test_put_port_derivation(self, benchmark, rng):
        private = PrivatePort.generate(rng)
        port = benchmark(lambda: private.public)
        assert port.value != private.secret


class TestFig1Outcomes:
    def test_client_completion_with_intruder(self, benchmark):
        """100 transactions with an active impersonator: all succeed, the
        intruder sees none."""
        net = SimNetwork()
        server = Echo(Nic(net), rng=RandomSource(seed=1)).start()
        client_nic = Nic(net)
        intruder = Intruder(net, rng=RandomSource(seed=2))
        intruder.attempt_get(server.put_port)
        rng = RandomSource(seed=3)

        def campaign():
            completed = 0
            for _ in range(100):
                reply = trans(
                    client_nic,
                    server.put_port,
                    Message(command=USER_BASE, data=b"ping"),
                    rng=rng,
                )
                completed += reply.data == b"ping"
            return completed, intruder.intercepted_count(server.put_port)

        completed, intercepted = benchmark(campaign)
        assert completed == 100
        assert intercepted == 0
