"""Durability benchmarks: what the write-ahead log costs and buys.

PR 8 gives object tables a life across reboots — every create/refresh/
destroy is appended to a per-stripe log on a virtual disk, snapshots
truncate the logs, and ``ObjectServer.reboot()`` replays the disk into
a new incarnation.  These arms measure that layer.

Workloads (stable keys in ``BENCH_throughput.json``)
----------------------------------------------------
``recovery_time_vs_size``
    Kill a durable table at several sizes and measure attach + replay
    wall time; the figure of merit is recovered entries per second and
    how it scales with table size (snapshot + log-tail mixture).
``recovery_wal_overhead``
    The steady-state tax: dedup echo transactions against an identical
    server with and without a durable store (every reply logs a commit
    record before egress).  The smoke bar: durable throughput stays
    >= 85% of plain (<= 15% overhead).
``recovery_kill_reboot``
    The acceptance scenario on the DES virtual-clock wire with seeded
    frame loss *and* seeded disk faults: a durable directory server
    loses power mid-snapshot, is respawned on the same disk, and the
    client fleet's retried non-idempotent writes land effectively once
    — zero double-executions, deterministic by double run.
"""

import time

from repro.crypto.randomsrc import RandomSource
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic

PAPER_RTT_MS = 2.8


class EchoServer(ObjectServer):
    service_name = "recovery bench echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


def _durability_api():
    """The disk/WAL API, or None on source trees that predate it."""
    try:
        from repro.disk.virtualdisk import VirtualDisk
        from repro.disk.wal import DurableStore
    except ImportError:
        return None
    return VirtualDisk, DurableStore


# ----------------------------------------------------------------------
# recovery time vs table size
# ----------------------------------------------------------------------


def _recovery_point(size, seed):
    from repro.core.ports import Port
    from repro.core.registry import ObjectTable
    from repro.core.schemes import scheme_by_name
    from repro.disk.virtualdisk import VirtualDisk
    from repro.disk.wal import DefaultCodec, DurableStore

    port = Port(0x0BADC0FFEE00)
    scheme = scheme_by_name("xor-oneway")
    disk = VirtualDisk(max(1024, size * 2))
    store = DurableStore(disk, codec=DefaultCodec())
    table = ObjectTable(scheme, port, rng=RandomSource(seed=seed),
                        wal=store, shards=store.shards)
    caps = [table.create("object-%06d" % i) for i in range(size)]
    # Half the state lives in snapshots, half in log tails — the
    # realistic mixture a crash interrupts.
    if size >= 2:
        store.snapshot(table)
        for cap in caps[: size // 8]:
            table.refresh(cap)

    start = time.perf_counter()
    cold = DurableStore(disk, codec=DefaultCodec())
    rebuilt = ObjectTable(scheme, port, rng=RandomSource(seed=seed + 1),
                          wal=cold, shards=cold.shards)
    report = cold.recover(rebuilt, rng=RandomSource(seed=seed + 2))
    elapsed = time.perf_counter() - start
    assert report.entries_restored == size
    return {
        "entries": size,
        "records_replayed": report.records_replayed,
        "seconds": round(elapsed, 6),
        "entries_per_sec": round(size / elapsed, 1) if elapsed else None,
        "used_blocks": cold.stats()["used_blocks"],
    }


def recovery_time_vs_size(sizes=(256, 1024, 4096), seed=41):
    """Attach + replay wall time across table sizes."""
    if _durability_api() is None:
        return None
    return {"seed": seed,
            "points": [_recovery_point(size, seed) for size in sizes]}


# ----------------------------------------------------------------------
# steady-state WAL overhead on the echo workload
# ----------------------------------------------------------------------


def _echo_world(store):
    """One echo server world; returns (timed-epoch fn, server)."""
    from repro.ipc.rpc import trans

    net = SimNetwork()
    server = EchoServer(Nic(net), rng=RandomSource(seed=1), dedup=True,
                        store=store).start()
    server.count_requests = False
    client = Nic(net)
    rng = RandomSource(seed=2)
    request = Message(command=USER_BASE, data=b"payload")

    def epoch(n):
        start = time.perf_counter()
        for _ in range(n):
            trans(client, server.put_port, request, rng)
        return time.perf_counter() - start

    return epoch, server


def _echo_pair(n, warmup, repeats, store):
    """Interleaved plain/durable epochs: a transient load spike on the
    host hits both arms instead of biasing whichever ran second."""
    plain_epoch, _ = _echo_world(None)
    durable_epoch, durable_server = _echo_world(store)
    plain_epoch(warmup)
    durable_epoch(warmup)
    plain_best = durable_best = None
    for _ in range(repeats):
        elapsed = plain_epoch(n)
        plain_best = elapsed if plain_best is None else min(plain_best, elapsed)
        elapsed = durable_epoch(n)
        durable_best = (elapsed if durable_best is None
                        else min(durable_best, elapsed))
        # Periodic checkpoint (untimed): truncates the commit log so the
        # disk footprint stays bounded, as a real server would.
        durable_server.checkpoint()

    def shaped(best, disk_writes):
        return {
            "seconds": round(best, 6),
            "trans_per_sec": round(n / best, 1),
            "us_per_trans": round(best / n * 1e6, 3),
            "disk_writes": disk_writes,
        }

    return shaped(plain_best, 0), shaped(durable_best, store.disk.writes)


def _mutate_run(n, repeats, store_factory):
    """DIR_ENTER/REMOVE churn — every request writes durable state."""
    from repro.servers.directory import DirectoryClient, DirectoryServer

    net = SimNetwork()
    store = store_factory() if store_factory is not None else None
    server = DirectoryServer(Nic(net), rng=RandomSource(seed=1), dedup=True,
                             store=store).start()
    server.count_requests = False
    root = server.create_root()
    client = DirectoryClient(Nic(net), server.put_port,
                             rng=RandomSource(seed=2),
                             expect_signature=server.signature_image)
    sub = client.create_directory(root, "churn")
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        # Interleaved so the directory stays small: an update record
        # logs the whole payload, and this arm measures the per-op log
        # cost, not the payload encoding of an ever-growing directory.
        for i in range(n):
            client.enter(root, "n%d" % i, sub)
            client.remove(root, "n%d" % i)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
        if store is not None:
            server.checkpoint()
    ops = 2 * n
    return {
        "seconds": round(best, 6),
        "trans_per_sec": round(ops / best, 1),
        "us_per_trans": round(best / ops * 1e6, 3),
        "disk_writes": store.disk.writes if store is not None else 0,
    }


def recovery_wal_overhead(n=3000, warmup=300, repeats=5):
    """Dedup echo with a durable store vs without: the WAL tax.

    Echo is idempotent, so the durable server skips commit logging for
    it (safe to re-execute after a reboot) — the bar guards exactly
    that fast path.  The ``mutate`` sub-result shows the honest price
    of durability where it matters: every ENTER/REMOVE logs the new
    directory payload plus a commit record before the reply leaves.
    """
    api = _durability_api()
    if api is None:
        return None
    VirtualDisk, DurableStore = api
    from repro.disk.wal import DefaultCodec
    from repro.servers.directory import DirectoryCodec

    plain, durable = _echo_pair(
        n, warmup, repeats,
        DurableStore(VirtualDisk(16384), codec=DefaultCodec()),
    )
    ratio = durable["trans_per_sec"] / plain["trans_per_sec"]

    m = max(200, n // 4)
    mut_plain = _mutate_run(m, max(2, repeats - 2), None)
    mut_durable = _mutate_run(
        m, max(2, repeats - 2),
        lambda: DurableStore(VirtualDisk(16384), codec=DirectoryCodec()),
    )
    mut_ratio = mut_durable["trans_per_sec"] / mut_plain["trans_per_sec"]
    return {
        "transactions": n,
        "plain": plain,
        "durable": durable,
        "durable_vs_plain": round(ratio, 4),
        "overhead_pct": round((1.0 - ratio) * 100.0, 2),
        "disk_writes_per_trans": round(
            durable["disk_writes"] / (warmup + repeats * n), 3),
        "mutate": {
            "plain": mut_plain,
            "durable": mut_durable,
            "durable_vs_plain": round(mut_ratio, 4),
            "overhead_pct": round((1.0 - mut_ratio) * 100.0, 2),
        },
    }


# ----------------------------------------------------------------------
# kill and reboot under DES + seeded faults
# ----------------------------------------------------------------------


def _kill_reboot_run(n_pre, n_post, seed):
    from repro.disk.diskfaults import DiskFaultPlan
    from repro.disk.virtualdisk import VirtualDisk
    from repro.disk.wal import DurableStore
    from repro.errors import PowerFailure
    from repro.ipc.rpc import RetryPolicy
    from repro.net.faults import FaultPlan
    from repro.net.sched import LatencyModel, VirtualClock
    from repro.servers.directory import (
        DirectoryClient, DirectoryCodec, DirectoryServer,
    )

    plan = FaultPlan(seed=seed, drop=0.05)
    net = SimNetwork(clock=VirtualClock(),
                     latency=LatencyModel(rtt_ms=PAPER_RTT_MS),
                     faults=plan)
    disk = VirtualDisk(8192)
    server = DirectoryServer(
        Nic(net), rng=RandomSource(seed=1), dedup=True,
        store=DurableStore(disk, codec=DirectoryCodec()),
    ).start()
    server.count_requests = False
    root = server.create_root()
    client = DirectoryClient(
        Nic(net), server.put_port, rng=RandomSource(seed=2),
        expect_signature=server.signature_image,
        timeout=5.0, retry=RetryPolicy(attempts=10, rto=0.01, seed=seed),
    )
    for i in range(n_pre):
        client.create_directory(root, "pre-%04d" % i)

    # Power fails mid-snapshot: some stripes checkpointed, some not,
    # a half-written snapshot chain left on the disk.
    disk.faults = DiskFaultPlan(power_fail_after=7)
    power_failed = False
    try:
        server.checkpoint()
    except PowerFailure:
        power_failed = True
    server.stop()
    disk.faults.revive()
    disk.faults = None

    # Respawn on the same disk with the same service identity.
    respawn = DirectoryServer(
        Nic(net), get_port=server.get_port, rng=RandomSource(seed=100 + seed),
        dedup=True, store=DurableStore(disk, codec=DirectoryCodec()),
    )
    report = respawn.reboot()
    respawn.start()
    respawn.count_requests = False
    client.expect_signature = respawn.signature_image

    # Old capabilities from clean stripes keep working; the retried,
    # non-idempotent writes must land exactly once each.
    for i in range(n_post):
        client.create_directory(root, "post-%04d" % i)
    listing = client.list(root)
    double_executions = len(listing) - len(set(listing))
    return {
        "seed": seed,
        "pre_crash_creates": n_pre,
        "post_crash_creates": n_post,
        "power_failed_mid_snapshot": power_failed,
        "entries_recovered": report.entries_restored,
        "suspect_stripes": list(report.suspect_stripes),
        "commits_recovered": len(report.commits),
        "blocks_reclaimed": report.blocks_reclaimed,
        "final_entries": len(listing),
        "double_executions": double_executions,
        "virtual_seconds": round(net.clock.now, 9),
        "faults": plan.stats(),
    }


def recovery_kill_reboot(n_pre=60, n_post=60, seed=43):
    """Kill-and-reboot on the DES wire; deterministic by double run."""
    if _durability_api() is None:
        return None
    try:
        result = _kill_reboot_run(n_pre, n_post, seed)
    except ImportError:
        return None
    again = _kill_reboot_run(n_pre, n_post, seed)
    result["deterministic"] = again == result
    result["recovered"] = (
        result["power_failed_mid_snapshot"]
        and result["entries_recovered"] == n_pre + 1
        and result["final_entries"] == n_pre + n_post
        and result["double_executions"] == 0
    )
    return result


#: Registry merged into run_bench.py's workload table.
WORKLOADS = {
    "recovery_time_vs_size": recovery_time_vs_size,
    "recovery_wal_overhead": recovery_wal_overhead,
    "recovery_kill_reboot": recovery_kill_reboot,
}

#: CI-sized overrides, same shape as bench_throughput.SMOKE_OVERRIDES.
SMOKE_OVERRIDES = {
    "recovery_time_vs_size": {"sizes": (128, 512)},
    "recovery_wal_overhead": {"n": 800, "warmup": 100, "repeats": 3},
    "recovery_kill_reboot": {"n_pre": 25, "n_post": 25},
}


def main(argv=None):
    """Stand-alone entry point (``make bench-recovery-smoke``).

    Runs all three arms and *asserts* the durability acceptance bars:
    WAL overhead on the echo workload stays <= 15%, the kill-and-reboot
    scenario recovers every entry with zero double-executions, and the
    scenario is deterministic by double run.  Never writes
    ``BENCH_throughput.json`` (that is ``run_bench.py``'s job).
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized iteration counts")
    args = parser.parse_args(argv)
    results = {}
    for name, workload in WORKLOADS.items():
        kwargs = SMOKE_OVERRIDES.get(name, {}) if args.smoke else {}
        result = workload(**kwargs)
        if result is None:
            print("  %-28s skipped (API absent)" % name)
            continue
        results[name] = result
    if not results:
        print("durability API absent on this tree; nothing to check")
        return 0

    failures = []
    sizes = results.get("recovery_time_vs_size")
    if sizes:
        for point in sizes["points"]:
            print("  recover %6d entries        %10.1f entries/sec"
                  % (point["entries"], point["entries_per_sec"]))

    overhead = results.get("recovery_wal_overhead")
    if overhead:
        print("  %-28s %.1f%% overhead (%.0f -> %.0f trans/sec, "
              "%.2f writes/trans)"
              % ("recovery_wal_overhead", overhead["overhead_pct"],
                 overhead["plain"]["trans_per_sec"],
                 overhead["durable"]["trans_per_sec"],
                 overhead["disk_writes_per_trans"]))
        mutate = overhead.get("mutate")
        if mutate:
            print("  %-28s %.1f%% overhead on mutations (%.0f -> %.0f "
                  "trans/sec)"
                  % ("", mutate["overhead_pct"],
                     mutate["plain"]["trans_per_sec"],
                     mutate["durable"]["trans_per_sec"]))
        if overhead["durable_vs_plain"] < 0.85:
            failures.append(
                "WAL overhead is %.1f%% (> 15%% bar)"
                % overhead["overhead_pct"])

    reboot = results.get("recovery_kill_reboot")
    if reboot:
        print("  %-28s %d recovered, %d final, %d double-exec  (%s, %s)"
              % ("recovery_kill_reboot", reboot["entries_recovered"],
                 reboot["final_entries"], reboot["double_executions"],
                 "recovered" if reboot["recovered"] else "FAILED",
                 "deterministic" if reboot["deterministic"]
                 else "NON-DETERMINISTIC"))
        if not reboot["recovered"]:
            failures.append("kill-and-reboot failed: %r" % (reboot,))
        if not reboot["deterministic"]:
            failures.append("kill-and-reboot double run diverged")

    for failure in failures:
        print("FAIL: %s" % failure)
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
