"""Shared benchmark fixtures: deterministic RNG and scheme instances."""

import pytest

from repro.core.schemes import scheme_by_name
from repro.crypto.randomsrc import RandomSource


@pytest.fixture
def rng():
    return RandomSource(seed=0xBE7C)


@pytest.fixture(params=["simple", "encrypted", "xor-oneway", "commutative"])
def scheme(request):
    return scheme_by_name(request.param)
