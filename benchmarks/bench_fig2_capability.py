"""FIG2: the capability layout — codec cost and sparseness.

Regenerates the Fig. 2 artefact: the 128-bit wire layout round-trips, a
forged check field never validates, and the codec is cheap enough to be
a non-cost (capabilities are copied around constantly in Amoeba).
"""

import pytest

from repro.core.capability import Capability
from repro.core.ports import Port
from repro.core.registry import ObjectTable
from repro.core.rights import Rights
from repro.core.schemes import scheme_by_name
from repro.crypto.randomsrc import RandomSource
from repro.errors import InvalidCapability


def make_cap():
    return Capability(
        port=Port(0x123456789ABC),
        object=12345,
        rights=Rights(0xA5),
        check=b"\x5a" * 6,
    )


class TestFig2Codec:
    def test_pack(self, benchmark):
        cap = make_cap()
        raw = benchmark(cap.pack)
        assert len(raw) == 16  # Fig. 2: exactly 128 bits

    def test_unpack(self, benchmark):
        raw = make_cap().pack()
        cap = benchmark(Capability.unpack, raw)
        assert cap == make_cap()

    def test_pack_extended(self, benchmark):
        cap = Capability(
            port=Port(1), object=1, rights=Rights(0xFF), check=b"\x11" * 64
        )
        raw = benchmark(cap.pack)
        assert len(raw) == 12 + 64


class TestFig2Sparseness:
    """The protection rests on 48-bit sparseness: guessing must not work."""

    def test_guessing_never_validates(self, benchmark, rng):
        scheme = scheme_by_name("xor-oneway")
        table = ObjectTable(scheme, Port(1), rng=rng)
        cap = table.create("target")

        guesses = [rng.bytes(6) for _ in range(1000)]

        def attack():
            hits = 0
            for guess in guesses:
                try:
                    table.lookup(cap.with_check(guess))
                    hits += 1
                except InvalidCapability:
                    pass
            return hits

        hits = benchmark(attack)
        assert hits == 0
