"""Virtual-clock discrete-event benchmarks: latency amortization, measured.

The wall-clock workloads in :mod:`bench_throughput` measure the CPU cost
of the stack at zero wire latency, where pipelining is bounded by the
host (~1.5x full stack — see docs/PERFORMANCE.md).  These workloads run
the identical protocol code on the DES network
(``SimNetwork(clock=VirtualClock(), latency=LatencyModel(rtt_ms=2.8))``)
and measure *virtual* time: what the transactions would cost on a
paper-era 2.8 ms-RTT wire.  There the economics §4 describes finally
appear — a serial client pays one RTT per transaction while 16-in-flight
pipelining pays one RTT per *batch* — and they appear deterministically:
the clock only advances on event delivery, so the same seed produces the
same numbers on any host, at any load.

Workloads (stable keys in ``BENCH_throughput.json``)
----------------------------------------------------
``des_echo_round_trip``
    Blocking ``trans`` round trips against the full :class:`EchoServer`
    stack under a 2.8 ms virtual RTT — the serial baseline, exactly one
    RTT of virtual time per transaction.
``des_pipelined_16_inflight``
    The same traffic with 16 transactions in flight via ``trans_many``;
    ``vs_des_serial_x`` (derived in ``run_bench.py``) is the latency-
    amortization multiple, >= 8x by the acceptance bar (measured: 16x —
    one RTT buys the whole batch).

Both report ``virtual_seconds``/``virtual_ms_per_trans`` rather than
wall time; ``deterministic`` records that a second identically-seeded
run reproduced the numbers bit for bit.
"""

from repro.crypto.randomsrc import RandomSource
from repro.ipc.rpc import trans, trans_many
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.nic import Nic

#: The paper-era round trip: §4's measured locate+RPC figures are in the
#: low milliseconds on 1986 hardware and a 10 Mbit/s segment.
PAPER_RTT_MS = 2.8


class EchoServer(ObjectServer):
    service_name = "des bench echo"

    @command(USER_BASE)
    def _echo(self, ctx):
        return ctx.ok(data=ctx.request.data)


def _des_network(rtt_ms, jitter_ms, seed):
    """A DES network, or None on source trees that predate the mode."""
    try:
        from repro.net.sched import LatencyModel, VirtualClock
    except ImportError:
        return None
    try:
        return SimNetwork(
            clock=VirtualClock(),
            latency=LatencyModel(rtt_ms=rtt_ms, jitter_ms=jitter_ms, seed=seed),
        )
    except TypeError:
        return None


def _run_serial(n, rtt_ms, jitter_ms, seed, payload):
    """One seeded serial run; returns virtual seconds, or None pre-DES."""
    net = _des_network(rtt_ms, jitter_ms, seed)
    if net is None:
        return None
    server = EchoServer(Nic(net), rng=RandomSource(seed=1)).start()
    server.count_requests = False
    client = Nic(net)
    rng = RandomSource(seed=2)
    request = Message(command=USER_BASE, data=payload)
    start = net.clock.now
    for _ in range(n):
        trans(client, server.put_port, request, rng)
    return net.clock.now - start


def _run_pipelined(inflight, batches, rtt_ms, jitter_ms, seed, payload):
    net = _des_network(rtt_ms, jitter_ms, seed)
    if net is None:
        return None
    server = EchoServer(Nic(net), rng=RandomSource(seed=1)).start()
    server.count_requests = False
    client = Nic(net)
    rng = RandomSource(seed=2)
    requests = [Message(command=USER_BASE, data=payload)] * inflight
    start = net.clock.now
    for _ in range(batches):
        trans_many(client, server.put_port, requests, rng)
    return net.clock.now - start


def des_echo_round_trip(n=400, rtt_ms=PAPER_RTT_MS, jitter_ms=0.0, seed=42,
                        payload=b"payload"):
    """Serial blocking transactions under a virtual 2.8 ms RTT."""
    virtual = _run_serial(n, rtt_ms, jitter_ms, seed, payload)
    if virtual is None:
        return None  # pre-DES source tree (a --baseline-src subrun)
    again = _run_serial(n, rtt_ms, jitter_ms, seed, payload)
    return {
        "transactions": n,
        "rtt_ms": rtt_ms,
        "jitter_ms": jitter_ms,
        "seed": seed,
        "virtual_seconds": round(virtual, 9),
        "virtual_ms_per_trans": round(virtual / n * 1e3, 6),
        "trans_per_virtual_sec": round(n / virtual, 1),
        "deterministic": again == virtual,
    }


def des_pipelined_inflight(inflight=16, batches=50, rtt_ms=PAPER_RTT_MS,
                           jitter_ms=0.0, seed=42, payload=b"payload"):
    """16-in-flight ``trans_many`` batches under the same virtual RTT."""
    virtual = _run_pipelined(inflight, batches, rtt_ms, jitter_ms, seed, payload)
    if virtual is None:
        return None
    again = _run_pipelined(inflight, batches, rtt_ms, jitter_ms, seed, payload)
    total = inflight * batches
    return {
        "inflight": inflight,
        "transactions": total,
        "rtt_ms": rtt_ms,
        "jitter_ms": jitter_ms,
        "seed": seed,
        "virtual_seconds": round(virtual, 9),
        "virtual_ms_per_trans": round(virtual / total * 1e3, 6),
        "trans_per_virtual_sec": round(total / virtual, 1),
        "deterministic": again == virtual,
    }


#: Registry merged into run_bench.py's workload table.
WORKLOADS = {
    "des_echo_round_trip": des_echo_round_trip,
    "des_pipelined_16_inflight": des_pipelined_inflight,
}

#: CI-sized overrides, same shape as bench_throughput.SMOKE_OVERRIDES.
#: DES numbers are virtual (host speed does not move them), so the smoke
#: sizes exist only to bound CI wall time, not to fight noise.
SMOKE_OVERRIDES = {
    "des_echo_round_trip": {"n": 64},
    "des_pipelined_16_inflight": {"batches": 8},
}


def main(argv=None):
    """Stand-alone entry point (``make bench-des-smoke``).

    Runs both workloads at a fixed seed, prints the virtual-time numbers
    and the amortization multiple, and *asserts* the DES acceptance bar:
    deterministic replay, and pipelined >= 8x serial at the paper RTT.
    Never writes ``BENCH_throughput.json`` (that is ``run_bench.py``'s
    job).
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized iteration counts")
    args = parser.parse_args(argv)
    results = {}
    for name, workload in WORKLOADS.items():
        kwargs = SMOKE_OVERRIDES.get(name, {}) if args.smoke else {}
        result = workload(**kwargs)
        if result is None:
            print("  %-26s skipped (API absent)" % name)
            continue
        results[name] = result
        print("  %-26s %10.3f virtual ms/trans  (%s)"
              % (name, result["virtual_ms_per_trans"],
                 "deterministic" if result["deterministic"] else
                 "NON-DETERMINISTIC"))
    serial = results.get("des_echo_round_trip")
    pipelined = results.get("des_pipelined_16_inflight")
    if not (serial and pipelined):
        print("DES mode absent on this tree; nothing to check")
        return 0
    ratio = (serial["virtual_ms_per_trans"]
             / pipelined["virtual_ms_per_trans"])
    print("  %-26s %9.2fx" % ("vs_des_serial_x", ratio))
    failures = []
    if not serial["deterministic"] or not pipelined["deterministic"]:
        failures.append("identically-seeded reruns diverged")
    if ratio < 8.0:
        failures.append("amortization multiple %.2fx below the 8x bar" % ratio)
    for failure in failures:
        print("FAIL: %s" % failure)
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
