"""ALG0-ALG3: the four rights-protection algorithms, compared.

Regenerates the §2.3 comparison the paper makes in prose:

* all four validate genuine capabilities and reject tampering;
* mint/verify costs order roughly simple < xor-oneway < encrypted <<
  commutative (modular exponentiation);
* the commutative scheme pays its cost back by restricting with ZERO
  server messages (bench_rpc.py measures the round-trip it saves);
* the plaintext RIGHTS field exists to avoid a 2**N brute force
  ("its presence merely speeds up the checking" — quantified here).
"""

import pytest

from repro.core.rights import ALL_RIGHTS, Rights
from repro.core.schemes import CommutativeScheme, scheme_by_name
from repro.crypto.randomsrc import RandomSource


@pytest.fixture
def minted(scheme, rng):
    secret = scheme.new_secret(rng)
    rights_field, check = scheme.mint(secret, ALL_RIGHTS)
    return scheme, secret, rights_field, check


class TestMint:
    def test_mint(self, benchmark, scheme, rng):
        secret = scheme.new_secret(rng)
        rights_field, check = benchmark(scheme.mint, secret, ALL_RIGHTS)
        assert scheme.verify(secret, rights_field, check) == ALL_RIGHTS


class TestVerify:
    def test_verify(self, benchmark, minted):
        scheme, secret, rights_field, check = minted
        rights = benchmark(scheme.verify, secret, rights_field, check)
        assert rights == ALL_RIGHTS

    def test_verify_restricted(self, benchmark, minted):
        # Restricted capabilities are the common case on a busy server;
        # for the commutative scheme this is the expensive path (one
        # modular exponentiation per deleted right).
        scheme, secret, rights_field, check = minted
        if not scheme.supports_restriction:
            pytest.skip("scheme cannot restrict")
        weak_rights, weak_check = scheme.restrict(
            secret, rights_field, check, Rights(0x01)
        )
        rights = benchmark(scheme.verify, secret, weak_rights, weak_check)
        assert rights == Rights(0x01)


class TestRestrict:
    def test_restrict_server_side(self, benchmark, minted):
        scheme, secret, rights_field, check = minted
        if not scheme.supports_restriction:
            pytest.skip("scheme cannot restrict")
        weak_rights, weak_check = benchmark(
            scheme.restrict, secret, rights_field, check, Rights(0x03)
        )
        assert scheme.verify(secret, weak_rights, weak_check) == Rights(0x03)


class TestClientRestrict:
    def test_client_restrict_commutative(self, benchmark, rng):
        """The paper's third algorithm: no server involved at all."""
        from repro.core.capability import Capability
        from repro.core.ports import Port

        scheme = CommutativeScheme()
        secret = scheme.new_secret(rng)
        rights_field, check = scheme.mint(secret, ALL_RIGHTS)
        cap = Capability(port=Port(1), object=1, rights=rights_field, check=check)
        weaker = benchmark(scheme.client_restrict, cap, Rights(0x0F))
        assert scheme.verify(secret, weaker.rights, weaker.check) == Rights(0x0F)


class TestRightsFieldSpeedup:
    """'In theory at least, the RIGHTS field is not even needed, since the
    server could try all 2**N combinations ... Its presence merely speeds
    up the checking.'  Quantify the speedup."""

    def test_verify_with_plaintext_rights(self, benchmark, rng):
        scheme = CommutativeScheme()
        secret = scheme.new_secret(rng)
        rights_field, check = scheme.mint(secret, Rights(0b00010111))
        rights = benchmark(scheme.verify, secret, rights_field, check)
        assert rights == Rights(0b00010111)

    def test_recover_rights_by_brute_force(self, benchmark, rng):
        scheme = CommutativeScheme()
        secret = scheme.new_secret(rng)
        _, check = scheme.mint(secret, Rights(0b00010111))
        rights = benchmark(scheme.recover_rights, secret, check)
        assert rights == Rights(0b00010111)


class TestTamperRejection:
    def test_reject_tampered_rights(self, benchmark, minted):
        from repro.errors import InvalidCapability

        scheme, secret, rights_field, check = minted
        if scheme.name == "simple":
            pytest.skip("the simple scheme does not protect rights")
        tampered = Rights(int(rights_field) ^ 0x10)

        def attempt():
            try:
                scheme.verify(secret, tampered, check)
                return False
            except InvalidCapability:
                return True

        assert benchmark(attempt)
