"""MATRIX: §2.4 software protection — cipher costs and cache payoff.

"To avoid having to run the encryption/decryption algorithm frequently,
all machines can maintain a hashed cache" — these benchmarks quantify
exactly that: sealing with a cold cache pays the block cipher, a warm
cache pays a dictionary lookup.
"""

import pytest

from repro.core.capability import Capability
from repro.core.ports import Port
from repro.core.rights import Rights
from repro.crypto.randomsrc import RandomSource
from repro.softprot.boot import BootProtocol
from repro.softprot.cache import ClientCapabilityCache, ServerCapabilityCache
from repro.softprot.matrix import CapabilitySealer, KeyMatrix


def make_cap():
    return Capability(
        port=Port(0xABCDEF012345), object=42, rights=Rights(0x0F),
        check=b"\x3c" * 6,
    )


@pytest.fixture
def matrix():
    return KeyMatrix(rng=RandomSource(seed=1))


class TestSealCost:
    def test_seal_cold(self, benchmark, matrix):
        sealer = CapabilitySealer(matrix.view(1))
        cap = make_cap()
        sealed = benchmark(sealer.seal, cap, 2)
        assert len(sealed) == 16

    def test_seal_warm_cache(self, benchmark, matrix):
        sealer = CapabilitySealer(
            matrix.view(1), client_cache=ClientCapabilityCache()
        )
        cap = make_cap()
        sealer.seal(cap, 2)  # populate
        sealed = benchmark(sealer.seal, cap, 2)
        assert len(sealed) == 16

    def test_unseal_cold(self, benchmark, matrix):
        client = CapabilitySealer(matrix.view(1))
        server = CapabilitySealer(matrix.view(2))
        sealed = client.seal(make_cap(), 2)
        cap = benchmark(server.unseal, sealed, 1)
        assert cap == make_cap()

    def test_unseal_warm_cache(self, benchmark, matrix):
        client = CapabilitySealer(matrix.view(1))
        server = CapabilitySealer(
            matrix.view(2), server_cache=ServerCapabilityCache()
        )
        sealed = client.seal(make_cap(), 2)
        server.unseal(sealed, 1)  # populate
        cap = benchmark(server.unseal, sealed, 1)
        assert cap == make_cap()

    def test_cache_payoff_ratio(self, matrix):
        """The cache must pay for itself: warm hits should do zero cipher
        operations per call."""
        sealer = CapabilitySealer(
            matrix.view(1), client_cache=ClientCapabilityCache()
        )
        cap = make_cap()
        sealer.seal(cap, 2)
        ops_before = sealer.cipher_ops
        for _ in range(1000):
            sealer.seal(cap, 2)
        assert sealer.cipher_ops == ops_before


class TestReplayOutcome:
    def test_replay_rejection_rate(self, benchmark, matrix):
        """A stolen sealed capability replayed from 100 different source
        machines: 0 must decrypt to the real capability."""
        from repro.errors import InvalidCapability

        client = CapabilitySealer(matrix.view(1))
        server = CapabilitySealer(matrix.view(2))
        cap = make_cap()
        sealed = client.seal(cap, 2)

        def replay_campaign():
            successes = 0
            for fake_src in range(3, 103):
                try:
                    recovered = server.unseal(sealed, fake_src)
                    if recovered == cap:
                        successes += 1
                except InvalidCapability:
                    pass
            return successes

        assert benchmark(replay_campaign) == 0


class TestBootCost:
    @pytest.fixture(scope="class")
    def server_keys(self):
        from repro.crypto.publickey import generate_keypair

        return generate_keypair(bits=512, rng=RandomSource(seed=77))

    def test_full_handshake(self, benchmark, server_keys):
        rng = RandomSource(seed=2)

        def handshake():
            offer, forward = BootProtocol.client_offer(server_keys.public, rng)
            reply, _, reverse_s = BootProtocol.server_accept(
                server_keys, offer, rng
            )
            reverse = BootProtocol.client_confirm(
                server_keys.public, forward, reply
            )
            return reverse == reverse_s

        assert benchmark(handshake)
