"""SRV-*: the §3 server suite under load.

One benchmark per server: memory segments, raw blocks, flat files (both
backends), directory lookups at depth, multiversion branch/commit, and
bank transfers.  Shapes to observe: the block-backed file server pays an
extra RPC per touched block (the price of §3.2 modularity), branching a
version is O(pages) bookkeeping with zero I/O, and directory resolution
is linear in path depth.
"""

import pytest

from repro.crypto.randomsrc import RandomSource
from repro.disk.virtualdisk import VirtualDisk
from repro.kernel.machine import Machine
from repro.net.network import SimNetwork
from repro.net.nic import Nic
from repro.servers.bank import BankClient, BankServer
from repro.servers.block import BlockClient, BlockServer
from repro.servers.directory import DirectoryClient, DirectoryServer, resolve_path
from repro.servers.flatfile import FlatFileClient, FlatFileServer
from repro.servers.multiversion import MultiversionClient, MultiversionFileServer


@pytest.fixture
def net():
    return SimNetwork()


class TestMemoryServer:
    @pytest.fixture
    def memory(self, net):
        server = Machine(net, rng=RandomSource(seed=1), memory_capacity=64 << 20)
        client = Machine(net, rng=RandomSource(seed=2), with_memory_server=False)
        return client.memory_client(remote_port=server.memory_port)

    def test_memory_create_segment(self, benchmark, memory):
        cap = benchmark(memory.create_segment, 4096)
        assert cap is not None

    def test_memory_write_4k(self, benchmark, memory):
        seg = memory.create_segment(1 << 16)
        payload = b"m" * 4096
        benchmark(memory.write, seg, 0, payload)

    def test_memory_read_4k(self, benchmark, memory):
        seg = memory.create_segment(1 << 16)
        memory.write(seg, 0, b"m" * 4096)
        data = benchmark(memory.read, seg, 0, 4096)
        assert len(data) == 4096

    def test_memory_make_process(self, benchmark, memory):
        segs = [memory.create_segment(1024) for _ in range(3)]
        cap = benchmark(memory.make_process, "bench", segs)
        assert cap is not None


class TestBlockServer:
    @pytest.fixture
    def blocks(self, net):
        server = BlockServer(
            Nic(net), disk=VirtualDisk(n_blocks=1 << 16),
            rng=RandomSource(seed=3),
        ).start()
        return BlockClient(Nic(net), server.put_port, rng=RandomSource(seed=4))

    def test_block_alloc(self, benchmark, blocks):
        cap, size = benchmark(blocks.alloc)
        assert size == 512

    def test_block_write(self, benchmark, blocks):
        cap, _ = blocks.alloc()
        benchmark(blocks.write, cap, b"d" * 512)

    def test_block_read(self, benchmark, blocks):
        cap, _ = blocks.alloc(initial=b"d" * 512)
        data = benchmark(blocks.read, cap)
        assert len(data) == 512


class TestFlatFile:
    @pytest.fixture(params=["memory", "block"])
    def files(self, request, net):
        server_nic = Nic(net)
        block_client = None
        if request.param == "block":
            block_server = BlockServer(
                Nic(net), disk=VirtualDisk(n_blocks=1 << 16),
                rng=RandomSource(seed=5),
            ).start()
            block_client = BlockClient(
                server_nic, block_server.put_port, rng=RandomSource(seed=6)
            )
        server = FlatFileServer(
            server_nic, block_client=block_client, rng=RandomSource(seed=7)
        ).start()
        return FlatFileClient(Nic(net), server.put_port, rng=RandomSource(seed=8))

    def test_file_create(self, benchmark, files):
        cap = benchmark(files.create, b"initial")
        assert cap is not None

    def test_file_write_8k(self, benchmark, files):
        cap = files.create()
        payload = b"w" * 8192
        benchmark(files.write, cap, 0, payload)

    def test_file_read_8k(self, benchmark, files):
        cap = files.create()
        files.write(cap, 0, b"r" * 8192)
        data = benchmark(files.read, cap, 0, 8192)
        assert len(data) == 8192


class TestDirectory:
    @pytest.fixture
    def dirs(self, net):
        server = DirectoryServer(Nic(net), rng=RandomSource(seed=9)).start()
        client_nic = Nic(net)
        client = DirectoryClient(client_nic, server.put_port,
                                 rng=RandomSource(seed=10))
        return server, client, client_nic

    def test_dir_lookup_flat(self, benchmark, dirs):
        server, client, _ = dirs
        root = server.create_root()
        for i in range(100):
            client.enter(root, "entry%03d" % i, server.table.create(i))
        cap = benchmark(client.lookup, root, "entry050")
        assert cap is not None

    @pytest.mark.parametrize("depth", [1, 4, 16])
    def test_path_resolution_by_depth(self, benchmark, dirs, depth):
        server, client, client_nic = dirs
        root = server.create_root()
        current = root
        parts = []
        for i in range(depth):
            name = "d%d" % i
            current = client.create_directory(current, name)
            parts.append(name)
        leaf = server.table.create("leaf")
        client.enter(current, "leaf", leaf)
        path = "/".join(parts + ["leaf"])
        rng = RandomSource(seed=11)
        found = benchmark(resolve_path, client_nic, root, path, rng)
        assert found == leaf


class TestMultiversion:
    @pytest.fixture
    def mv(self, net):
        server = MultiversionFileServer(
            Nic(net), disk=VirtualDisk(n_blocks=1 << 16, block_size=512),
            rng=RandomSource(seed=12),
        ).start()
        return MultiversionClient(Nic(net), server.put_port,
                                  rng=RandomSource(seed=13))

    def test_mv_branch_of_64_page_file(self, benchmark, mv):
        """Branching is COW: cost is page-table bookkeeping, no data I/O."""
        f = mv.create_file()
        v, _ = mv.new_version(f)
        mv.write(v, 0, b"p" * (64 * 512))
        mv.commit(v)
        version_cap, base = benchmark(mv.new_version, f)
        assert base >= 1

    def test_mv_commit(self, benchmark, mv):
        f = mv.create_file()
        state = {}

        def branch_write():
            v, _ = mv.new_version(f)
            mv.write(v, 0, b"x" * 512)
            state["v"] = v

        def commit():
            return mv.commit(state["v"])

        benchmark.pedantic(commit, setup=branch_write, rounds=30)

    def test_mv_cow_write_one_page(self, benchmark, mv):
        f = mv.create_file()
        v, _ = mv.new_version(f)
        mv.write(v, 0, b"p" * (16 * 512))
        mv.commit(v)
        v2, _ = mv.new_version(f)
        # Repeated writes to the same page: first copies, rest rewrite.
        benchmark(mv.write, v2, 0, b"q" * 512)


class TestBank:
    @pytest.fixture
    def bank(self, net):
        server = BankServer(Nic(net), rng=RandomSource(seed=14)).start()
        client = BankClient(Nic(net), server.put_port, rng=RandomSource(seed=15))
        a = server.create_account({"USD": 10**9})
        b = server.create_account({"USD": 10**9})
        return client, a, b

    def test_bank_transfer(self, benchmark, bank):
        client, a, b = bank
        benchmark(client.transfer, a, b, "USD", 1)

    def test_bank_balance(self, benchmark, bank):
        client, a, _ = bank
        balances = benchmark(client.balance, a)
        assert "USD" in balances
