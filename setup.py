"""Setuptools shim.

The offline environment lacks the ``wheel`` package that PEP 660 editable
installs require, so ``pip install -e .`` falls back to this file via
``python setup.py develop``.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
