"""The public-key bootstrap protocol (§2.4).

"A public server, such as a file server, makes its put-port and a public
encryption key known to the whole world.  When a new machine joins the
network ... it sends a broadcast message announcing its presence."  The
three-step exchange that follows gives both sides fresh conventional keys
and proves to the client that it is talking to the true owner of the
published public key:

1. client C picks a conventional key K and sends it to the server
   encrypted with the server's public key;
2. the server decrypts K and replies with (K, K') — K' being the key for
   reverse traffic — sealed under K itself *and* under the server's
   private key (a signature, "the inverse of F's public key");
3. C decrypts with K, verifies the signature with the public key, and
   checks that its own K is inside.  "If the decrypted message contains
   K, C can be sure that the other conventional key was indeed generated
   by the owner of F's public key."

"The use of different conventional keys after each reboot makes it
impossible for an intruder to fool anyone by playing back old messages" —
the REPLAY experiment in the benchmarks demonstrates exactly that.
"""

from dataclasses import dataclass

from repro.core.ports import Port
from repro.crypto.feistel import WideBlockCipher
from repro.crypto.publickey import PublicKey
from repro.crypto.randomsrc import RandomSource
from repro.errors import SecurityError
from repro.softprot.matrix import KEY_BYTES


@dataclass(frozen=True)
class Announcement:
    """What a public server broadcasts at boot: name, put-port, public key."""

    name: str
    put_port: Port
    public_key: PublicKey

    def pack(self):
        key_n = self.public_key.n
        n_bytes = key_n.to_bytes((key_n.bit_length() + 7) // 8, "big")
        name_bytes = self.name.encode("utf-8")
        return (
            bytes([len(name_bytes)])
            + name_bytes
            + self.put_port.to_bytes()
            + self.public_key.e.to_bytes(4, "big")
            + len(n_bytes).to_bytes(2, "big")
            + n_bytes
        )

    @classmethod
    def unpack(cls, data):
        if len(data) < 1:
            raise SecurityError("truncated announcement")
        name_len = data[0]
        pos = 1 + name_len
        name = data[1:pos].decode("utf-8")
        port = Port.from_bytes(data[pos:pos + 6])
        pos += 6
        e = int.from_bytes(data[pos:pos + 4], "big")
        pos += 4
        n_len = int.from_bytes(data[pos:pos + 2], "big")
        pos += 2
        n = int.from_bytes(data[pos:pos + n_len], "big")
        return cls(name=name, put_port=port, public_key=PublicKey(n=n, e=e))


class BootProtocol:
    """The three protocol steps as pure functions over bytes.

    Transport-agnostic: the kernel (or a test) moves the byte strings;
    these functions only construct and check them.
    """

    @staticmethod
    def client_offer(server_public_key, rng=None):
        """Step 1: choose K and seal it with the server's public key.

        Returns ``(offer_bytes, K)``; the client keeps K private.
        """
        rng = rng or RandomSource()
        forward_key = rng.bytes(KEY_BYTES)
        offer = server_public_key.encrypt(forward_key, rng=rng)
        return offer, forward_key

    @staticmethod
    def server_accept(server_keypair, offer, rng=None):
        """Step 2: recover K, choose K', reply sealed under K and signed.

        Returns ``(reply_bytes, K, K')``.  The server now knows both
        conventional keys for this client machine.
        """
        rng = rng or RandomSource()
        forward_key = server_keypair.decrypt(offer)
        if len(forward_key) != KEY_BYTES:
            raise SecurityError(
                "offer decrypted to %d bytes, expected a %d-byte key"
                % (len(forward_key), KEY_BYTES)
            )
        reverse_key = rng.bytes(KEY_BYTES)
        payload = forward_key + reverse_key
        signature = server_keypair.sign(payload)
        plaintext = payload + signature
        reply = WideBlockCipher(forward_key).encrypt(plaintext)
        return reply, forward_key, reverse_key

    @staticmethod
    def client_confirm(server_public_key, forward_key, reply):
        """Step 3: decrypt with K, verify the signature, check K echoes.

        Returns K' on success; raises :class:`SecurityError` if the reply
        was forged, replayed from an earlier boot, or corrupted.
        """
        plaintext = WideBlockCipher(forward_key).decrypt(reply)
        if len(plaintext) < 2 * KEY_BYTES:
            raise SecurityError("bootstrap reply too short")
        payload = plaintext[: 2 * KEY_BYTES]
        signature = plaintext[2 * KEY_BYTES:]
        if payload[:KEY_BYTES] != forward_key:
            raise SecurityError(
                "bootstrap reply does not echo our key: replay or forgery"
            )
        if not server_public_key.verify(payload, signature):
            raise SecurityError(
                "bootstrap reply not signed by the announced public key"
            )
        return payload[KEY_BYTES: 2 * KEY_BYTES]


def establish_matrix_keys(client_view, server_view, server_keypair, rng=None):
    """Run the whole handshake and install the keys in both matrix views.

    A convenience for tests and experiments: ``client_view`` and
    ``server_view`` are :class:`~repro.softprot.matrix.MachineKeyView`
    objects backed by each side's matrix knowledge.
    """
    rng = rng or RandomSource()
    offer, forward = BootProtocol.client_offer(server_keypair.public, rng)
    reply, forward_s, reverse_s = BootProtocol.server_accept(
        server_keypair, offer, rng
    )
    reverse = BootProtocol.client_confirm(server_keypair.public, forward, reply)
    client, server = client_view.machine, server_view.machine
    client_view._matrix.set_key(client, server, forward)
    client_view._matrix.set_key(server, client, reverse)
    server_view._matrix.set_key(client, server, forward_s)
    server_view._matrix.set_key(server, client, reverse_s)
    return forward, reverse
