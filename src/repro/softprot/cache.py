"""Hashed capability caches (§2.4).

"To avoid having to run the encryption/decryption algorithm frequently,
all machines can maintain a hashed cache of capabilities that they have
been using frequently.  Clients will hash their caches on the unencrypted
capabilities in the form of triples: (unencrypted capability, destination,
encrypted capability), whereas servers will hash theirs in the form of
triples: (encrypted capability, source, unencrypted capability)."

Both caches below are those triples, stored in bounded LRU maps with
hit/miss counters the MATRIX experiment reports.
"""

import threading
from collections import OrderedDict


class LruCache:
    """A bounded least-recently-used map with hit/miss accounting.

    Thread-safe: a server's request path reads and writes its cache from
    worker threads while revocation (``ObjectTable.on_revocation`` →
    :meth:`evict_where`) fires from whichever thread refreshed, destroyed,
    or swept the object — OrderedDict relinking is not atomic, so every
    operation takes the internal lock.  The critical sections are a few
    dict operations; the cache exists to skip block-cipher calls, which
    cost orders of magnitude more than an uncontended lock.
    """

    def __init__(self, max_entries=1024):
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self.max_entries = max_entries
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        """Return the cached value or ``None``, updating recency."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def evict_where(self, predicate):
        """Remove every entry for which ``predicate(key, value)`` is true;
        returns the number evicted.  O(entries) — the price of a rare
        event (revocation), never of the per-message hot path."""
        with self._lock:
            doomed = [k for k, v in self._entries.items() if predicate(k, v)]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __repr__(self):
        return "LruCache(%d/%d entries, %.0f%% hits)" % (
            len(self._entries),
            self.max_entries,
            100 * self.hit_rate,
        )


class ClientCapabilityCache(LruCache):
    """Client triples: (unencrypted capability, destination) -> sealed bytes."""

    def lookup(self, capability, destination):
        return self.get((capability, destination))

    def remember(self, capability, destination, sealed):
        self.put((capability, destination), sealed)

    def forget_object(self, port, number):
        """Drop the triples of every capability for one (port, object) —
        the client learned it was refreshed or destroyed, so the sealed
        forms it cached are for dead secrets.  Returns the count."""
        return self.evict_where(
            lambda key, _value: key[0].port == port and key[0].object == number
        )


class ServerCapabilityCache(LruCache):
    """Server triples: (sealed bytes, source) -> unencrypted capability."""

    def lookup(self, sealed, source):
        return self.get((sealed, source))

    def remember(self, sealed, source, capability):
        self.put((sealed, source), capability)

    def forget_object(self, port, number):
        """Drop every triple whose *unsealed* capability names one
        (port, object) — fired by the object table on refresh/destroy so
        a replayed sealed blob of a revoked capability must go back
        through real decryption and table validation.  Returns the
        count."""
        return self.evict_where(
            lambda _key, cap: cap.port == port and cap.object == number
        )
