"""Hashed capability caches (§2.4).

"To avoid having to run the encryption/decryption algorithm frequently,
all machines can maintain a hashed cache of capabilities that they have
been using frequently.  Clients will hash their caches on the unencrypted
capabilities in the form of triples: (unencrypted capability, destination,
encrypted capability), whereas servers will hash theirs in the form of
triples: (encrypted capability, source, unencrypted capability)."

Both caches below are those triples, stored in bounded LRU maps with
hit/miss counters the MATRIX experiment reports.
"""

from collections import OrderedDict


class LruCache:
    """A bounded least-recently-used map with hit/miss accounting."""

    def __init__(self, max_entries=1024):
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self.max_entries = max_entries
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        """Return the cached value or ``None``, updating recency."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value):
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self):
        self._entries.clear()

    def __repr__(self):
        return "LruCache(%d/%d entries, %.0f%% hits)" % (
            len(self._entries),
            self.max_entries,
            100 * self.hit_rate,
        )


class ClientCapabilityCache(LruCache):
    """Client triples: (unencrypted capability, destination) -> sealed bytes."""

    def lookup(self, capability, destination):
        return self.get((capability, destination))

    def remember(self, capability, destination, sealed):
        self.put((capability, destination), sealed)


class ServerCapabilityCache(LruCache):
    """Server triples: (sealed bytes, source) -> unencrypted capability."""

    def lookup(self, sealed, source):
        return self.get((sealed, source))

    def remember(self, sealed, source, capability):
        self.put((sealed, source), capability)
