"""Hashed capability caches (§2.4).

"To avoid having to run the encryption/decryption algorithm frequently,
all machines can maintain a hashed cache of capabilities that they have
been using frequently.  Clients will hash their caches on the unencrypted
capabilities in the form of triples: (unencrypted capability, destination,
encrypted capability), whereas servers will hash theirs in the form of
triples: (encrypted capability, source, unencrypted capability)."

Both caches below are those triples, stored in bounded LRU maps with
hit/miss counters the MATRIX experiment reports.

Sharding
--------
A busy server's request path hits its caches from many worker threads
while revocation sweeps fire from whichever thread refreshed, destroyed,
or aged the object.  :class:`ShardedLruCache` partitions the entries
across power-of-two lock-striped :class:`LruCache` stripes so the hot
path and a revocation sweep only collide when they touch the same
stripe.  The two capability caches choose their partitioning key for
revocation locality:

* :class:`ClientCapabilityCache` keys its triples on the *unencrypted*
  capability, so the owning stripe is computable from (port, object
  number) — ``forget_object`` sweeps exactly one stripe.
* :class:`ServerCapabilityCache` keys on opaque ciphertext (the sealed
  blob), so placement must hash the blob; a per-object stripe-membership
  hint recorded at ``remember`` time lets ``forget_object`` sweep only
  the stripes that ever held triples for that object.
"""

import threading
from collections import OrderedDict


class LruCache:
    """A bounded least-recently-used map with hit/miss accounting.

    Thread-safe: a server's request path reads and writes its cache from
    worker threads while revocation (``ObjectTable.on_revocation`` →
    :meth:`evict_where`) fires from whichever thread refreshed, destroyed,
    or swept the object — OrderedDict relinking is not atomic, so every
    operation takes the internal lock.  The critical sections are a few
    dict operations; the cache exists to skip block-cipher calls, which
    cost orders of magnitude more than an uncontended lock.

    Statistics are kept as a single ``(hits, misses)`` tuple replaced
    wholesale under the lock, so a reader — :attr:`hit_rate`, a stats
    aggregator, a benchmark thread — always sees a *consistent* pair
    with one lock-free reference load, never a torn (new hits, old
    misses) mix.
    """

    def __init__(self, max_entries=1024):
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self.max_entries = max_entries
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self._counts = (0, 0)

    def get(self, key):
        """Return the cached value or ``None``, updating recency."""
        with self._lock:
            hits, misses = self._counts
            try:
                value = self._entries[key]
            except KeyError:
                self._counts = (hits, misses + 1)
                return None
            self._entries.move_to_end(key)
            self._counts = (hits + 1, misses)
            return value

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    @property
    def hits(self):
        return self._counts[0]

    @property
    def misses(self):
        return self._counts[1]

    def stats(self):
        """One consistent ``(hits, misses)`` snapshot, lock-free."""
        return self._counts

    @property
    def hit_rate(self):
        hits, misses = self._counts
        total = hits + misses
        return hits / total if total else 0.0

    def evict_where(self, predicate):
        """Remove every entry for which ``predicate(key, value)`` is true;
        returns the number evicted.  O(entries) — the price of a rare
        event (revocation), never of the per-message hot path."""
        with self._lock:
            doomed = [k for k, v in self._entries.items() if predicate(k, v)]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __repr__(self):
        return "LruCache(%d/%d entries, %.0f%% hits)" % (
            len(self._entries),
            self.max_entries,
            100 * self.hit_rate,
        )


class ShardedLruCache:
    """An LRU map partitioned across lock-striped :class:`LruCache` stripes.

    ``shards`` must be a power of two; each stripe holds an equal slice
    of ``max_entries`` (recency is therefore per-stripe, which is the
    standard sharded-LRU approximation: a key can only be displaced by
    traffic landing on its own stripe).  Placement hashes the key by
    default; subclasses override :meth:`shard_key` to partition by a
    semantic component (the capability caches partition by the object a
    triple names, so revocation sweeps stay stripe-local).

    Statistics aggregate across stripes from each stripe's consistent
    snapshot tuple — :attr:`hits`/:attr:`misses`/:attr:`hit_rate` are
    sums of coherent pairs, never torn per-stripe reads.
    """

    def __init__(self, max_entries=1024, shards=8):
        if shards < 1 or shards & (shards - 1):
            raise ValueError("shards must be a power of two >= 1")
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self.max_entries = max_entries
        # Exact split: stripe capacities sum to max_entries (the first
        # ``max_entries % shards`` stripes take the remainder) — except
        # that every stripe needs at least one slot, so a cache smaller
        # than its stripe count rounds its total up to ``shards``.
        base, extra = divmod(max_entries, shards)
        self._shards = [
            LruCache(max(1, base + (1 if i < extra else 0)))
            for i in range(shards)
        ]
        self._mask = shards - 1

    # -- placement ------------------------------------------------------

    def shard_key(self, key):
        """The value whose hash places ``key``; subclasses override."""
        return key

    def shard_index(self, key):
        return hash(self.shard_key(key)) & self._mask

    @property
    def shard_count(self):
        return len(self._shards)

    # -- the map surface ------------------------------------------------

    def get(self, key):
        return self._shards[self.shard_index(key)].get(key)

    def put(self, key, value):
        self._shards[self.shard_index(key)].put(key, value)

    def __len__(self):
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key):
        return key in self._shards[self.shard_index(key)]

    def clear(self):
        for shard in self._shards:
            shard.clear()

    # -- statistics -----------------------------------------------------

    def stats(self):
        """Aggregated ``(hits, misses)`` from per-stripe snapshots."""
        hits = 0
        misses = 0
        for shard in self._shards:
            h, m = shard.stats()
            hits += h
            misses += m
        return hits, misses

    @property
    def hits(self):
        return self.stats()[0]

    @property
    def misses(self):
        return self.stats()[1]

    @property
    def hit_rate(self):
        hits, misses = self.stats()
        total = hits + misses
        return hits / total if total else 0.0

    # -- eviction -------------------------------------------------------

    def evict_where(self, predicate, shard_indices=None):
        """Remove entries for which ``predicate(key, value)`` is true,
        stripe by stripe (never holding more than one stripe lock at a
        time); ``shard_indices`` restricts the sweep to the listed
        stripes.  Returns the number evicted."""
        if shard_indices is None:
            shards = self._shards
        else:
            shards = [self._shards[i] for i in shard_indices]
        return sum(shard.evict_where(predicate) for shard in shards)

    def __repr__(self):
        return "%s(%d/%d entries, %d shards, %.0f%% hits)" % (
            type(self).__name__,
            len(self),
            self.max_entries,
            len(self._shards),
            100 * self.hit_rate,
        )


class ClientCapabilityCache(ShardedLruCache):
    """Client triples: (unencrypted capability, destination) -> sealed bytes.

    Partitioned by the capability's (port, object number): every triple
    for one object lives in one stripe, so :meth:`forget_object` — the
    revocation path — locks and sweeps exactly that stripe while the
    other stripes keep serving the request path.
    """

    def __init__(self, max_entries=1024, shards=8):
        super().__init__(max_entries, shards)
        #: Revocation observability: sweeps requested / triples dropped.
        #: The replica fan-out tests read these to prove every replica's
        #: cache actually processed the revocation, not just the one the
        #: client happened to talk to.
        self.forget_calls = 0
        self.forgotten = 0

    def shard_key(self, key):
        capability = key[0]
        return (capability.port, capability.object)

    def _object_shard(self, port, number):
        return hash((port, number)) & self._mask

    def lookup(self, capability, destination):
        return self.get((capability, destination))

    def remember(self, capability, destination, sealed):
        self.put((capability, destination), sealed)

    def forget_object(self, port, number):
        """Drop the triples of every capability for one (port, object) —
        the client learned it was refreshed or destroyed, so the sealed
        forms it cached are for dead secrets.  Sweeps only the owning
        stripe.  Returns the count."""
        evicted = self.evict_where(
            lambda key, _value: key[0].port == port and key[0].object == number,
            shard_indices=(self._object_shard(port, number),),
        )
        self.forget_calls += 1
        self.forgotten += evicted
        return evicted


class ServerCapabilityCache(ShardedLruCache):
    """Server triples: (sealed bytes, source) -> unencrypted capability.

    A lookup's key is ciphertext — the object it names is only known
    *after* decryption — so placement hashes the sealed blob.  To keep
    revocation stripe-local anyway, :meth:`remember` (which runs on the
    miss path, right after a block-cipher call that dwarfs it) records
    which stripes hold triples for each (port, object); a
    :meth:`forget_object` then sweeps only those stripes.  Hints are
    conservative — LRU displacement leaves a stale stripe bit behind,
    costing at worst one empty-handed stripe sweep — and bounded: if the
    hint table outgrows ``4 * max_entries`` distinct objects it is
    dropped and sweeps fall back to visiting every stripe (still one
    stripe lock at a time, never a global one).
    """

    def __init__(self, max_entries=1024, shards=8):
        super().__init__(max_entries, shards)
        self._hints = {}
        self._hints_lock = threading.Lock()
        self._hints_complete = True
        self._hint_limit = 4 * max_entries
        #: Revocation observability, mirroring ClientCapabilityCache.
        self.forget_calls = 0
        self.forgotten = 0

    def lookup(self, sealed, source):
        return self.get((sealed, source))

    def clear(self):
        # Hints first: a remember() racing the clear may then leave a
        # ghost hint for an entry the stripe wipe removes (one harmless
        # empty sweep later), never an entry with no hint (which no
        # future sweep would find).  A full clear also un-degrades the
        # hint table — the population it gave up on is gone.
        with self._hints_lock:
            self._hints.clear()
            self._hints_complete = True
        super().clear()

    def remember(self, sealed, source, capability):
        key = (sealed, source)
        index = self.shard_index(key)
        if self._hints_complete:
            hint_key = (capability.port, capability.object)
            with self._hints_lock:
                if self._hints_complete:  # re-check under the lock
                    hints = self._hints
                    hints[hint_key] = hints.get(hint_key, 0) | (1 << index)
                    if len(hints) > self._hint_limit:
                        # Too many distinct objects to track: degrade to
                        # sweep-every-stripe rather than grow unboundedly.
                        hints.clear()
                        self._hints_complete = False
                    # The put happens *inside* the hint lock (lock order:
                    # hints, then stripe — forget_object takes them in
                    # the same order, so no deadlock): a forget_object
                    # can then never slip between the hint record and
                    # the insert, which would leave a triple no future
                    # sweep could find.  The cost lands on the miss path
                    # only, right after a block-cipher call that dwarfs
                    # it.
                    self.put(key, capability)
                    return
        self.put(key, capability)

    def forget_object(self, port, number):
        """Drop every triple whose *unsealed* capability names one
        (port, object) — fired by the object table on refresh/destroy so
        a replayed sealed blob of a revoked capability must go back
        through real decryption and table validation.  Sweeps only the
        stripes the hint index names (all of them once the hint table
        has been dropped for size).  Returns the count."""
        with self._hints_lock:
            complete = self._hints_complete
            mask = self._hints.pop((port, number), 0) if complete else 0
        self.forget_calls += 1
        if complete:
            if not mask:
                return 0
            shard_indices = [
                i for i in range(len(self._shards)) if mask >> i & 1
            ]
        else:
            shard_indices = None
        evicted = self.evict_where(
            lambda _key, cap: cap.port == port and cap.object == number,
            shard_indices=shard_indices,
        )
        self.forgotten += evicted
        return evicted
