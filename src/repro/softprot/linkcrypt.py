"""Link-level encryption, the last §2.4 alternative.

"Yet another possibility for protecting capabilities in the absence of
F-boxes is to use conventional link-level encryption on all the data
communication lines."

A :class:`LinkCryptNode` wraps a station: every outgoing message is packed
and encrypted under the per-line key for (this machine, destination
machine) and shipped inside an opaque carrier frame, so a wiretap sees
ciphertext only (the carrier's destination port is the receiving
machine's *link port* — the analogue of "which wire the bits are on",
which a line tapper can of course see).  The receiving node decrypts and
re-injects the inner message into its own station's normal admission
path.
"""

from repro.core.ports import PrivatePort
from repro.crypto.feistel import wide_cipher_for_key
from repro.crypto.randomsrc import RandomSource
from repro.errors import SecurityError
from repro.net.message import Message
from repro.net.network import Frame

#: Command code of carrier frames on an encrypted line.
LINK_ENCAP = 30


class LinkCryptNode:
    """A station whose point-to-point lines are conventionally encrypted.

    Parameters
    ----------
    nic:
        The underlying station; inner messages are delivered through its
        normal queues and handlers after decryption.
    rng:
        Used to choose this node's link port.
    """

    def __init__(self, nic, rng=None):
        self.nic = nic
        self.rng = rng or RandomSource()
        self._line_keys = {}
        #: The secret this node's link endpoint listens on.
        self.link_port = PrivatePort.generate(self.rng)
        nic.serve(self.link_port, self._receive_carrier)
        #: Public address other ends of a line need: (machine, put-port).
        self.endpoint = (nic.address, self.link_port.public)

    def add_line(self, peer_machine, peer_link_port, key):
        """Configure one encrypted line to a peer machine.

        The line's cipher is resolved here, once: its per-round key
        states are absorbed at line setup, so per-frame encryption and
        decryption only copy hash states instead of rebuilding the key
        schedule (the cipher is stateless and shared via the per-key
        cache, so two nodes on the same key use one instance).
        """
        self._line_keys[peer_machine] = (
            peer_link_port,
            wide_cipher_for_key(bytes(key)),
        )

    def put(self, message, dst_machine):
        """Send a message down the encrypted line to ``dst_machine``.

        Unlike the F-box path there is no port-routed broadcast: lines
        are point to point, so the destination machine must be known.
        """
        try:
            peer_port, cipher = self._line_keys[dst_machine]
        except KeyError:
            raise SecurityError(
                "no encrypted line configured to machine %r" % (dst_machine,)
            ) from None
        # The usual egress transformation still applies (reply/signature
        # secrets never leave the machine); the line key then hides the
        # entire message from wiretaps.
        on_wire = self.nic.fbox.transform_egress(message)
        ciphertext = cipher.encrypt(on_wire.pack())
        carrier = Message(dest=peer_port, command=LINK_ENCAP, data=ciphertext)
        return self.nic.put(carrier, dst_machine=dst_machine)

    def _receive_carrier(self, frame):
        entry = self._line_keys.get(frame.src)
        if entry is None:
            return  # a carrier from a machine we share no line with
        _, cipher = entry
        try:
            inner = Message.unpack(cipher.decrypt(frame.message.data))
        except Exception:
            return  # wrong key or corrupted line traffic: drop, like hardware
        # Re-inject through the normal admission path so listeners,
        # handlers, and RPC behave exactly as on a plaintext segment.
        self.nic.accept(Frame(src=frame.src, dst_machine=None, message=inner))

    def __repr__(self):
        return "LinkCryptNode(machine=%r, lines=%d)" % (
            self.nic.address,
            len(self._line_keys),
        )
