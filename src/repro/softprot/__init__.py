"""Protection without F-boxes (§2.4).

When the network interface cannot be trusted to one-way ports, Amoeba
falls back to conventional cryptography keyed by the one thing an
intruder cannot forge: the source machine address.  This package builds
the full §2.4 stack:

* :mod:`~repro.softprot.matrix` — the conceptual key matrix M and the
  capability sealer that encrypts capabilities per (source, destination);
* :mod:`~repro.softprot.cache` — the hashed capability caches that avoid
  re-running the cipher on every message;
* :mod:`~repro.softprot.boot` — the public-key bootstrap that a freshly
  booted machine uses to establish matrix keys and authenticate servers;
* :mod:`~repro.softprot.linkcrypt` — the link-level-encryption
  alternative the section closes with.
"""

from repro.softprot.boot import Announcement, BootProtocol
from repro.softprot.cache import (
    ClientCapabilityCache,
    LruCache,
    ServerCapabilityCache,
    ShardedLruCache,
)
from repro.softprot.linkcrypt import LinkCryptNode
from repro.softprot.matrix import CapabilitySealer, KeyMatrix, MachineKeyView

__all__ = [
    "Announcement",
    "BootProtocol",
    "CapabilitySealer",
    "ClientCapabilityCache",
    "KeyMatrix",
    "LinkCryptNode",
    "LruCache",
    "MachineKeyView",
    "ServerCapabilityCache",
    "ShardedLruCache",
]
