"""The conceptual key matrix and capability sealing (§2.4).

"Imagine a (possibly symmetric) conceptual matrix, M, of conventional
(e.g., DES) encryption keys, with the rows being labeled by source machine
and the columns by destination machine. ... Each machine is assumed to
know the contents of its row and column of the matrix, and nothing else."

A capability in a message from machine C to machine S is encrypted under
M[C][S].  An intruder I who captures the message and plays it back will be
seen by S as source I (unforgeable), so S decrypts with M[I][S] — the
wrong key — and the capability decrypts to nonsense, which the server's
ordinary check-field validation then rejects.  No key management happens
per message; the matrix entries come from trusted setup or from the
bootstrap protocol in :mod:`~repro.softprot.boot`.
"""

from repro.core.capability import CAPABILITY_BYTES, Capability
from repro.crypto.feistel import (
    CAPABILITY_BLOCK_BITS,
    feistel_for_key,
    wide_cipher_for_key,
)
from repro.crypto.randomsrc import RandomSource
from repro.errors import InvalidCapability, SecurityError

#: Conventional key length in the matrix, in bytes.
KEY_BYTES = 16


class KeyMatrix:
    """The full conceptual matrix — a modelling object for trusted setup.

    No machine in a real deployment holds this; machines hold a
    :class:`MachineKeyView` (their row and column).  Keys are created
    lazily and directionally: M[src][dst] and M[dst][src] differ.
    """

    def __init__(self, rng=None):
        self._rng = rng or RandomSource()
        self._keys = {}

    def key(self, src, dst):
        """The conventional key for traffic from ``src`` to ``dst``."""
        pair = (src, dst)
        existing = self._keys.get(pair)
        if existing is None:
            existing = self._rng.bytes(KEY_BYTES)
            self._keys[pair] = existing
        return existing

    def set_key(self, src, dst, key):
        """Install a key agreed out of band (the bootstrap protocol)."""
        if len(key) != KEY_BYTES:
            raise ValueError("matrix keys are %d bytes" % KEY_BYTES)
        self._keys[(src, dst)] = bytes(key)

    def view(self, machine):
        """The row-and-column slice machine ``machine`` is allowed to know."""
        return MachineKeyView(self, machine)

    def __len__(self):
        return len(self._keys)


class MachineKeyView:
    """One machine's knowledge of the matrix: its row and its column.

    The view refuses to reveal keys between two *other* machines — the
    property that makes a captured-and-replayed message undecryptable by
    anyone but the original (source, destination) pair.
    """

    def __init__(self, matrix, machine):
        self._matrix = matrix
        self.machine = machine

    def key_to(self, dst):
        """M[self][dst]: encrypts capabilities this machine sends to dst."""
        return self._matrix.key(self.machine, dst)

    def key_from(self, src):
        """M[src][self]: decrypts capabilities arriving from src."""
        return self._matrix.key(src, self.machine)

    def key(self, src, dst):
        """Row/column lookup with the knowledge restriction enforced."""
        if src != self.machine and dst != self.machine:
            raise SecurityError(
                "machine %r may not know the key for %r -> %r"
                % (self.machine, src, dst)
            )
        return self._matrix.key(src, dst)


def _encrypt_capability(key, packed):
    """Encrypt one packed capability: 128-bit Feistel for the canonical
    16-byte layout, the wide-block cipher for extended layouts.

    Ciphers come from the per-key cache, so a matrix key's schedule (16
    hashed round keys for the Feistel case) is built on the first frame
    of a (source, destination) pair and reused for every later seal and
    unseal under that key."""
    if len(packed) == CAPABILITY_BYTES:
        return feistel_for_key(
            key, block_bits=CAPABILITY_BLOCK_BITS
        ).encrypt_bytes(packed)
    return wide_cipher_for_key(key).encrypt(packed)


def _decrypt_capability(key, sealed):
    if len(sealed) == CAPABILITY_BYTES:
        return feistel_for_key(
            key, block_bits=CAPABILITY_BLOCK_BITS
        ).decrypt_bytes(sealed)
    return wide_cipher_for_key(key).decrypt(sealed)


class CapabilitySealer:
    """Encrypts/decrypts the capabilities of messages under matrix keys.

    One sealer per machine, built around that machine's
    :class:`MachineKeyView` and (optionally) the §2.4 capability caches.
    The *data* part of messages is deliberately left alone — "the data
    need not be encrypted, although that is also possible if needed".
    """

    def __init__(self, view, client_cache=None, server_cache=None):
        self.view = view
        self.client_cache = client_cache
        self.server_cache = server_cache
        #: Number of block-cipher invocations (cache effectiveness metric).
        self.cipher_ops = 0

    # ------------------------------------------------------------------
    # single capabilities
    # ------------------------------------------------------------------

    def seal(self, capability, dst):
        """Encrypt one capability for transmission to machine ``dst``."""
        if self.client_cache is not None:
            cached = self.client_cache.lookup(capability, dst)
            if cached is not None:
                return cached
        key = self.view.key_to(dst)
        sealed = _encrypt_capability(key, capability.pack())
        self.cipher_ops += 1
        if self.client_cache is not None:
            self.client_cache.remember(capability, dst, sealed)
        return sealed

    def unseal(self, sealed, src):
        """Decrypt one capability received from machine ``src``.

        A blob sealed by any other (source, destination) pair decrypts to
        garbage; structural garbage raises :class:`InvalidCapability`
        here, and semantic garbage (a well-formed but wrong capability)
        is rejected later by the server's check-field validation — the
        two layers the paper's argument rests on.
        """
        if self.server_cache is not None:
            cached = self.server_cache.lookup(sealed, src)
            if cached is not None:
                return cached
        key = self.view.key_from(src)
        packed = _decrypt_capability(key, sealed)
        self.cipher_ops += 1
        try:
            capability = Capability.unpack(packed)
        except Exception:
            raise InvalidCapability(
                "capability from machine %r did not decrypt to a valid layout"
                % (src,)
            ) from None
        if self.server_cache is not None:
            self.server_cache.remember(sealed, src, capability)
        return capability

    # ------------------------------------------------------------------
    # revocation hygiene
    # ------------------------------------------------------------------

    def invalidate_object(self, port, number):
        """Purge both caches of every triple for one (port, object).

        Called when the object's secret dies (``ObjectTable.refresh``
        bumps the generation; ``destroy``/aging remove it).  Without
        this, a cached (sealed, source) triple keeps translating the
        *revoked* capability's sealed form back to a structurally valid
        plaintext long after the secret it was minted under is gone —
        the cache must not outlive the revocation it exists to
        accelerate.  Servers get this wired automatically
        (``ObjectTable.on_revocation``); clients call it from the spots
        that learn about revocation (e.g. ``ServiceClient.refresh``).
        Returns the number of entries dropped.
        """
        dropped = 0
        if self.client_cache is not None:
            dropped += self.client_cache.forget_object(port, number)
        if self.server_cache is not None:
            dropped += self.server_cache.forget_object(port, number)
        return dropped

    # ------------------------------------------------------------------
    # whole messages
    # ------------------------------------------------------------------

    def seal_message(self, message, dst):
        """Move a message's plaintext capabilities into the sealed area."""
        caps = []
        if message.capability is not None:
            caps.append(message.capability)
        caps.extend(message.extra_caps)
        if not caps:
            return message
        has_header_cap = message.capability is not None
        blob = bytes([(1 if has_header_cap else 0)]) + bytes([len(caps)])
        for cap in caps:
            sealed = self.seal(cap, dst)
            blob += len(sealed).to_bytes(2, "big") + sealed
        return message.copy(capability=None, extra_caps=(), sealed_caps=blob)

    def unseal_message(self, message, src):
        """Restore a sealed message's capabilities to plaintext fields."""
        blob = message.sealed_caps
        if not blob:
            return message
        if len(blob) < 2:
            raise InvalidCapability("sealed capability area truncated")
        has_header_cap = bool(blob[0])
        count = blob[1]
        pos = 2
        caps = []
        for _ in range(count):
            if pos + 2 > len(blob):
                raise InvalidCapability("sealed capability area truncated")
            length = int.from_bytes(blob[pos:pos + 2], "big")
            pos += 2
            if pos + length > len(blob):
                raise InvalidCapability("sealed capability area truncated")
            caps.append(self.unseal(blob[pos:pos + length], src))
            pos += length
        header_cap = caps.pop(0) if has_header_cap and caps else None
        return message.copy(
            capability=header_cap, extra_caps=tuple(caps), sealed_caps=b""
        )

    def __repr__(self):
        return "CapabilitySealer(machine=%r, cipher_ops=%d)" % (
            self.view.machine,
            self.cipher_ops,
        )
