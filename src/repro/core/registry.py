"""The server-side object table: secrets, payloads, and revocation.

Every Amoeba server keeps a private table mapping 24-bit object numbers to
(random number, object data).  The table plus a protection scheme is all a
server needs to mint, validate, restrict, and revoke capabilities — no
central capability manager exists anywhere in the system (§2.3).

Revocation works exactly as the paper describes: "ask the server to change
the random number stored in its internal table and return a new
capability"; every outstanding capability for the object dies instantly.

Sharding
--------
The table is partitioned into a power-of-two number of lock-striped
shards, keyed by object number (``shard = number & (shards - 1)``).  The
paper's design is embarrassingly parallel — each request names exactly
one object and touches exactly one row — so every per-object operation
(:meth:`lookup`, :meth:`refresh`, :meth:`destroy`, :meth:`restrict`,
:meth:`mint_for`) acquires exactly one stripe, and :meth:`create` draws
from per-shard allocation counters (object numbers congruent to the
shard index mod the shard count), so no operation ever takes a global
lock.  Cross-shard operations (:meth:`age`, :meth:`numbers`) sweep
stripe by stripe instead of stopping the world.

Each entry additionally memoizes its verified (rights, check) pairs —
the server-side half of §2.4's "hashed cache of capabilities that they
have been using frequently": a repeat lookup of an already-validated
capability costs one stripe acquisition and two dict probes instead of a
one-way-function evaluation.  The memo can never outlive the secret it
was computed from: :meth:`refresh` clears it under the same stripe that
replaces the secret, and :meth:`destroy`/:meth:`age` drop the entry
(memo and all) outright.
"""

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.core.capability import OBJECT_BITS, Capability
from repro.core.rights import ALL_RIGHTS, NO_RIGHTS, Rights
from repro.crypto.randomsrc import RandomSource
from repro.errors import NoSuchObject, PermissionDenied

#: Default stripe count: enough that 8–16 worker threads rarely collide
#: on a stripe, small enough that a full sweep is still cheap.
DEFAULT_SHARDS = 16

#: Bound on each entry's verified-pair memo.  An object realistically
#: circulates as its owner capability plus a handful of restricted
#: forms; the bound only matters against an adversary minting garbage,
#: and garbage never verifies, so it never enters the memo at all.
VERIFIED_MEMO_MAX = 16


@dataclass
class ObjectEntry:
    """One row of a server's object table."""

    number: int
    secret: object
    data: object
    #: Monotonic count of secret refreshes — a revocation generation.
    generation: int = 0
    #: Bookkeeping useful to servers (e.g. touch for garbage collection).
    touches: int = field(default=0)
    #: Sweeps left before the object is garbage (None = never collected).
    #: Every successful lookup (STD_TOUCH included) resets it.
    lifetime: object = None
    #: Verified (rights, check) -> effective Rights memo for the *current*
    #: secret (§2.4 server-side capability cache).  Mutated only under the
    #: owning shard's stripe; cleared whenever the secret is replaced.
    verified: dict = field(default_factory=dict, repr=False)


class _Shard:
    """One stripe: a lock, its entries, and its slice of the number space.

    Shard ``k`` of ``n`` owns every object number congruent to ``k``
    (mod ``n``); ``fresh_number``/``step`` walk that residue class so
    allocation needs no coordination with other shards.
    """

    __slots__ = ("index", "lock", "entries", "free_numbers", "fresh_number", "step")

    def __init__(self, index, step):
        self.index = index
        # RLock: refresh/destroy validate (lookup) and mutate under one
        # acquisition, exactly as the monolithic table did globally.
        self.lock = threading.RLock()
        self.entries = {}
        self.free_numbers = []
        self.fresh_number = index
        self.step = step

    def allocate_fresh(self, max_objects):
        """Next never-used number in this stripe's residue class, or None
        when the stripe's slice of ``max_objects`` is exhausted.  Caller
        holds the stripe."""
        number = self.fresh_number
        if number >= max_objects:
            return None
        self.fresh_number = number + self.step
        return number


class ObjectTable:
    """Lock-striped, thread-safe object table bound to one scheme and port.

    Parameters
    ----------
    scheme:
        The :class:`~repro.core.schemes.ProtectionScheme` protecting this
        server's capabilities.
    port:
        The server's public put-port, stamped into every minted capability.
    rng:
        Randomness source for object secrets (seedable for tests).
    max_objects:
        Capacity bound across all shards (the 24-bit space by default).
    shards:
        Power-of-two stripe count.  1 reproduces the monolithic table.
    """

    def __init__(
        self,
        scheme,
        port,
        rng=None,
        max_objects=1 << OBJECT_BITS,
        default_lifetime=None,
        shards=DEFAULT_SHARDS,
        wal=None,
    ):
        if max_objects < 1 or max_objects > (1 << OBJECT_BITS):
            raise ValueError("max_objects must be in [1, 2**24]")
        if default_lifetime is not None and default_lifetime < 1:
            raise ValueError("default_lifetime must be >= 1 sweeps")
        if shards < 1 or shards & (shards - 1):
            raise ValueError("shards must be a power of two >= 1")
        if wal is not None and wal.shards != shards:
            raise ValueError(
                "durable store has %d stripes but the table has %d shards"
                % (wal.shards, shards)
            )
        self.scheme = scheme
        self.port = port
        self._rng = rng or RandomSource()
        self._max_objects = max_objects
        #: Sweeps a fresh/touched object survives; None disables aging.
        #: This is Amoeba's touch-based garbage collection: servers that
        #: keep no record of capability holders cannot refcount, so
        #: objects not touched for N sweeps are presumed garbage.
        self.default_lifetime = default_lifetime
        #: Optional write-ahead log (:class:`~repro.disk.wal.DurableStore`
        #: duck type): every mutation that survives this table's process —
        #: create, refresh, destroy, aging expiry — is appended to the
        #: owning stripe's log *under the stripe lock the mutation already
        #: holds*, so durability adds no cross-shard serialization.
        self._wal = wal
        self._shards = [_Shard(i, shards) for i in range(shards)]
        self._mask = shards - 1
        # Round-robin cursor for fresh allocation (itertools.count is a
        # single C call, atomic under concurrent create()s) and a queue
        # of shard-index hints, one per freed number, so create() reuses
        # recycled numbers first — preserving the monolithic table's
        # allocate-from-the-free-list-before-minting behavior — without
        # any cross-shard lock.
        self._fresh_cursor = itertools.count()
        self._recycle_hints = deque()
        # Callbacks fired after a secret dies (refresh/destroy/age) with
        # (port, object number, generation, shard index) — e.g. a sealer
        # purging its §2.4 capability caches so a revoked capability's
        # sealed form cannot be served from cache.  Fired outside every
        # stripe lock; the shard index identifies the stripe that owned
        # the object, so sharded caches can target their sweep.
        self._revocation_listeners = []

    # ------------------------------------------------------------------
    # shard topology
    # ------------------------------------------------------------------

    @property
    def shard_count(self):
        return len(self._shards)

    def shard_of(self, number):
        """The stripe index owning ``number`` (``number & (shards-1)``)."""
        return number & self._mask

    def shard_sizes(self):
        """Per-shard entry counts (a racy snapshot; for experiments)."""
        return [len(shard.entries) for shard in self._shards]

    def __len__(self):
        return sum(len(shard.entries) for shard in self._shards)

    def __contains__(self, number):
        return number in self._shards[number & self._mask].entries

    def numbers(self):
        """Snapshot of the allocated object numbers.

        Stripe-by-stripe: each shard is locked just long enough to copy
        its key view; no instant exists at which the whole table is
        locked."""
        collected = []
        for shard in self._shards:
            with shard.lock:
                collected.extend(shard.entries)
        return sorted(collected)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def _allocate(self):
        """Reserve an object number; returns ``(shard, number)``.

        Recycled numbers win over fresh ones (each freed number leaves a
        shard-index hint in ``_recycle_hints``); fresh allocation round-
        robins across stripes so concurrent creators land on different
        locks.  Only when every stripe's slice is exhausted — and a last
        free-list scan finds nothing a racing destroy gave back — is the
        table full.
        """
        hints = self._recycle_hints
        while True:
            try:
                index = hints.popleft()
            except IndexError:
                break
            shard = self._shards[index]
            with shard.lock:
                if shard.free_numbers:
                    return shard, shard.free_numbers.pop()
            # Stale hint (a racing create claimed the number); keep going.
        shards = self._shards
        count = len(shards)
        start = next(self._fresh_cursor)
        for i in range(count):
            shard = shards[(start + i) & self._mask]
            with shard.lock:
                number = shard.allocate_fresh(self._max_objects)
                if number is not None:
                    return shard, number
        for shard in shards:
            with shard.lock:
                if shard.free_numbers:
                    return shard, shard.free_numbers.pop()
        raise NoSuchObject(
            "object table full (%d objects)" % self._max_objects
        )

    def create(self, data, rights=ALL_RIGHTS):
        """Create an object and mint its first capability.

        The returned capability is the object's *owner* capability; the
        paper's servers always mint with all rights and let callers derive
        weaker ones.  No global lock: the number is reserved under one
        stripe, the secret is drawn outside any lock, and the row is
        installed under the same stripe.
        """
        shard, number = self._allocate()
        secret = self.scheme.new_secret(self._rng)
        entry = ObjectEntry(
            number=number,
            secret=secret,
            data=data,
            lifetime=self.default_lifetime,
        )
        with shard.lock:
            shard.entries[number] = entry
            if self._wal is not None:
                self._wal.log_create(shard.index, entry)
        rights_field, check = self.scheme.mint(secret, Rights(rights))
        return Capability(
            port=self.port, object=number, rights=rights_field, check=check
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def _entry(self, number):
        """The live row for ``number`` (no validation — server internals
        like the bank's conservation sum reach for rows they already
        know exist).  One shard dict probe, no lock: CPython dict reads
        are atomic against the stripe-locked writers."""
        try:
            return self._shards[number & self._mask].entries[number]
        except KeyError:
            raise NoSuchObject("no object %d on this server" % number) from None

    def lookup(self, capability, required=NO_RIGHTS):
        """Validate a capability and return ``(entry, effective_rights)``.

        Raises :class:`NoSuchObject` for unknown object numbers,
        :class:`InvalidCapability` for tampered fields, and
        :class:`PermissionDenied` when the (validated) rights lack any bit
        of ``required``.  This is the single enforcement point every server
        operation funnels through.

        Locking: exactly one stripe — the one owning the object number —
        is ever acquired.  A (rights, check) pair already proven against
        the *live* secret hits the entry's verified memo and returns
        under a single acquisition with no crypto at all.  On a miss the
        scheme's verify (the expensive one-way function) deliberately
        runs *outside* the stripe, and the liveness bookkeeping runs back
        *under* it — ``touches`` is a read-modify-write and ``lifetime``
        races with :meth:`age`, so mutating them unlocked lost touches
        and could resurrect an entry a concurrent :meth:`destroy`/sweep
        had already removed.  If the entry changed while verify ran (a
        racing refresh or destroy-and-recreate), the stale verdict is
        discarded and the capability is re-validated against the live
        secret.
        """
        number = capability.object
        shard = self._shards[number & self._mask]
        if type(required) is not Rights:
            required = Rights(required)
        memo_key = (capability.rights, capability.check)
        with shard.lock:
            entry = shard.entries.get(number)
            if entry is None:
                raise NoSuchObject(
                    "no object %d on this server" % number
                )
            effective = entry.verified.get(memo_key)
            if effective is not None:
                if not effective.has_all(required):
                    raise PermissionDenied(
                        "capability grants %s but operation requires %s"
                        % (bin(int(effective)), bin(int(required)))
                    )
                entry.touches += 1
                entry.lifetime = self.default_lifetime
                return entry, effective
            secret = entry.secret
        while True:
            effective = self.scheme.verify(
                secret, capability.rights, capability.check
            )
            if not effective.has_all(required):
                raise PermissionDenied(
                    "capability grants %s but operation requires %s"
                    % (bin(int(effective)), bin(int(required)))
                )
            with shard.lock:
                live = shard.entries.get(number)
                if live is None:
                    raise NoSuchObject(
                        "no object %d on this server" % number
                    )
                if live is entry and live.secret is secret:
                    live.touches += 1
                    live.lifetime = self.default_lifetime  # use proves liveness
                    memo = live.verified
                    if len(memo) >= VERIFIED_MEMO_MAX:
                        # Drop the oldest proven pair; it re-verifies on
                        # its next use.
                        memo.pop(next(iter(memo)))
                    memo[memo_key] = effective
                    return live, effective
                entry, secret = live, live.secret  # raced; re-validate

    def data(self, capability, required=NO_RIGHTS):
        """Shorthand for ``lookup(...)[0].data``."""
        entry, _ = self.lookup(capability, required)
        return entry.data

    def restrict(self, capability, keep_mask):
        """Server-side sub-capability fabrication (schemes 1–3).

        The §2.3 round-trip: "send the capability back to the server along
        with a bit mask and a request to fabricate a new capability with
        fewer rights."
        """
        number = capability.object
        shard = self._shards[number & self._mask]
        with shard.lock:
            entry = shard.entries.get(number)
            if entry is None:
                raise NoSuchObject("no object %d on this server" % number)
            secret = entry.secret
        rights_field, check = self.scheme.restrict(
            secret, capability.rights, capability.check, Rights(keep_mask)
        )
        return Capability(
            port=self.port,
            object=number,
            rights=rights_field,
            check=check,
        )

    # ------------------------------------------------------------------
    # revocation
    # ------------------------------------------------------------------

    def on_revocation(self, callback):
        """Register ``callback(port, number, generation, shard)`` to fire
        after a secret dies — :meth:`refresh` (generation bumped),
        :meth:`destroy` (object gone), or an :meth:`age` expiry.  This is
        the hook that keeps the §2.4 capability caches honest: an
        :class:`ObjectServer` with a sealer wires it to
        :meth:`~repro.softprot.matrix.CapabilitySealer.invalidate_object`,
        so a revoked capability's cached (sealed, source) triple cannot
        outlive the secret it was minted under.  ``shard`` is the stripe
        index that owned the object (``shard_of(number)``), so sharded
        caches can target the owning partition instead of sweeping.
        Callbacks run outside every stripe lock."""
        self._revocation_listeners.append(callback)

    def _notify_revocation(self, number, generation, shard_index):
        for callback in self._revocation_listeners:
            callback(self.port, number, generation, shard_index)

    def refresh(self, capability, required=ALL_RIGHTS):
        """Revoke every outstanding capability for an object.

        Replaces the stored random number and returns a fresh owner
        capability.  Per the paper this "must be protected with a bit in
        the RIGHTS field"; callers pass the server's chosen mask as
        ``required`` (default: demand the full owner capability).

        The stripe is held across validate-and-replace (re-entrantly
        through :meth:`lookup`), and the verified memo is cleared under
        that same hold — no window exists in which the old secret's
        proven pairs could bless a capability of the new generation.
        """
        number = capability.object
        shard = self._shards[number & self._mask]
        with shard.lock:
            entry, _ = self.lookup(capability, required)
            entry.secret = self.scheme.new_secret(self._rng)
            entry.generation += 1
            entry.verified.clear()
            secret = entry.secret
            generation = entry.generation
            if self._wal is not None:
                self._wal.log_refresh(shard.index, number, secret, generation)
        self._notify_revocation(number, generation, shard.index)
        rights_field, check = self.scheme.mint(secret, ALL_RIGHTS)
        return Capability(
            port=self.port,
            object=number,
            rights=rights_field,
            check=check,
        )

    def destroy(self, capability, required=ALL_RIGHTS):
        """Validate and remove an object, recycling its number."""
        number = capability.object
        shard = self._shards[number & self._mask]
        with shard.lock:
            entry, _ = self.lookup(capability, required)
            del shard.entries[entry.number]
            shard.free_numbers.append(entry.number)
            generation = entry.generation
            if self._wal is not None:
                self._wal.log_destroy(shard.index, entry.number)
        self._recycle_hints.append(shard.index)
        self._notify_revocation(entry.number, generation, shard.index)
        return entry.data

    def apply_refresh(self, number, secret, generation):
        """Install a revocation decided by a *peer replica*.

        The replica control plane is at-least-once: a fan-out
        CTL_APPLY_REFRESH may arrive twice (retransmission) or late
        (after a newer local refresh).  The generation guard makes both
        safe — a secret is installed only if it is strictly newer than
        the live row's, so duplicates and stale deliveries are no-ops.
        Returns True when the secret was installed; an absent object is
        also a no-op (a racing destroy won), returning False.

        Like :meth:`refresh`, the verified memo is cleared under the same
        stripe hold that swaps the secret, and the revocation listeners
        (the §2.4 cache purge) fire after the stripe is released.
        """
        shard = self._shards[number & self._mask]
        with shard.lock:
            entry = shard.entries.get(number)
            if entry is None or generation <= entry.generation:
                return False
            entry.secret = secret
            entry.generation = generation
            entry.verified.clear()
            if self._wal is not None:
                self._wal.log_refresh(shard.index, number, secret, generation)
        self._notify_revocation(number, generation, shard.index)
        return True

    def apply_destroy(self, number):
        """Remove an object destroyed by a peer replica (idempotent).

        No capability validation: the peer already validated the owner
        capability before fanning out, and the control message itself is
        signature-authenticated at the server layer.  A duplicate or a
        destroy for an object this replica never had is a no-op.
        Returns True when a row was removed.
        """
        shard = self._shards[number & self._mask]
        with shard.lock:
            entry = shard.entries.pop(number, None)
            if entry is None:
                return False
            shard.free_numbers.append(number)
            generation = entry.generation
            if self._wal is not None:
                self._wal.log_destroy(shard.index, number)
        self._recycle_hints.append(shard.index)
        self._notify_revocation(number, generation, shard.index)
        return True

    def age(self, on_expire=None):
        """One garbage-collection sweep (Amoeba's touch-based GC).

        Decrements every aging object's lifetime; objects that reach zero
        are removed (``on_expire(entry)`` is called first, so a server
        can release disk blocks etc.).  Returns the expired entries.

        Because no record exists of who holds capabilities, liveness can
        only be proven by *use*: any successful lookup — including the
        no-op STD_TOUCH — resets the lifetime.  Directory-style servers
        run a background client that touches everything still reachable
        by name, then call age(); what remains unproven is garbage.

        The sweep is stripe-by-stripe: each shard's stripe is taken
        exactly once, and that single continuous hold covers both the
        decrement pass and the expiry pass — a concurrent refresh or
        touch (which needs the same stripe) therefore cannot interleave
        between an entry's decrement and its removal, so no stale
        snapshot can ever expire a row whose lifetime was just reset.
        Lookups on the other shards proceed while this stripe sweeps;
        ``on_expire`` and the revocation fan-out run after the stripe
        is released.
        """
        expired = []
        for shard in self._shards:
            with shard.lock:
                doomed = []
                for entry in shard.entries.values():
                    if entry.lifetime is None:
                        continue
                    entry.lifetime -= 1
                    if entry.lifetime <= 0:
                        doomed.append(entry)
                for entry in doomed:
                    del shard.entries[entry.number]
                    shard.free_numbers.append(entry.number)
                    if self._wal is not None:
                        self._wal.log_destroy(shard.index, entry.number)
                expired.extend(doomed)
        for entry in expired:
            shard_index = entry.number & self._mask
            self._recycle_hints.append(shard_index)
            if on_expire is not None:
                on_expire(entry)
            self._notify_revocation(entry.number, entry.generation, shard_index)
        return expired

    # ------------------------------------------------------------------
    # durability hooks (no-ops without a write-ahead log)
    # ------------------------------------------------------------------

    def stripe_locked(self, index, fn):
        """Run ``fn(entries)`` while holding stripe ``index``'s lock.

        This is the snapshot primitive: the durable store encodes a
        stripe's rows *and* captures the log's replay position under a
        single continuous hold, which is what proves every log record
        before the position redundant with the snapshot.
        """
        shard = self._shards[index]
        with shard.lock:
            return fn(shard.entries)

    def persist(self, number):
        """Re-log an object's data payload after a server mutated it.

        Servers holding durable state inside ``entry.data`` (the
        directory server's name map) call this after each mutation; the
        UPDATE record is appended under the owning stripe's lock, so it
        is ordered exactly against create/refresh/destroy and against
        snapshot position capture.  A no-op without a WAL.
        """
        if self._wal is None:
            return
        shard = self._shards[number & self._mask]
        with shard.lock:
            entry = shard.entries.get(number)
            if entry is None:
                raise NoSuchObject("no object %d on this server" % number)
            self._wal.log_update(shard.index, number, entry.data)

    def log_commit(self, number, src, reply_value, reply_raw):
        """Append a transaction-commit record to ``number``'s stripe log.

        Taken under the stripe lock for the same reason as
        :meth:`persist`: a commit must never slip between a snapshot's
        entry encoding and its position capture, or truncation would
        silently drop it.  A no-op without a WAL.
        """
        if self._wal is None:
            return
        shard = self._shards[number & self._mask]
        with shard.lock:
            self._wal.log_commit(shard.index, src, reply_value, reply_raw)

    def restore_entry(self, entry):
        """Install a recovered row, bypassing the WAL (recovery must not
        re-log what it replays).  Fresh-number allocation is advanced
        past the recovered number so post-reboot creates cannot collide
        with rows that were live before the crash."""
        number = entry.number
        shard = self._shards[number & self._mask]
        with shard.lock:
            shard.entries[number] = entry
            if shard.fresh_number <= number:
                shard.fresh_number = number + shard.step

    def snapshot_entries(self):
        """A consistent-per-stripe copy of every live row, as
        ``(number, secret, data, generation)`` tuples.  Replica pools use
        this to seed N forked processes from one populated table —
        capabilities minted against the template then validate on every
        replica.  Each stripe is locked exactly once; the snapshot is
        not atomic across stripes (neither is any client's view)."""
        rows = []
        for shard in self._shards:
            with shard.lock:
                rows.extend(
                    (e.number, e.secret, e.data, e.generation)
                    for e in shard.entries.values()
                )
        return rows

    def mint_for(self, number, rights=ALL_RIGHTS):
        """Mint a capability for an existing object *without* validation.

        Servers use this internally (e.g. the directory server re-minting
        a stored capability is wrong — it stores whole capabilities — but
        the memory server minting a process capability after MAKE PROCESS
        is exactly this).  Never expose this over the wire.
        """
        shard = self._shards[number & self._mask]
        with shard.lock:
            entry = shard.entries.get(number)
            if entry is None:
                raise NoSuchObject("no object %d on this server" % number)
            secret = entry.secret
        rights_field, check = self.scheme.mint(secret, Rights(rights))
        return Capability(
            port=self.port, object=number, rights=rights_field, check=check
        )
