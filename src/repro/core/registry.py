"""The server-side object table: secrets, payloads, and revocation.

Every Amoeba server keeps a private table mapping 24-bit object numbers to
(random number, object data).  The table plus a protection scheme is all a
server needs to mint, validate, restrict, and revoke capabilities — no
central capability manager exists anywhere in the system (§2.3).

Revocation works exactly as the paper describes: "ask the server to change
the random number stored in its internal table and return a new
capability"; every outstanding capability for the object dies instantly.
"""

import threading
from dataclasses import dataclass, field

from repro.core.capability import OBJECT_BITS, Capability
from repro.core.rights import ALL_RIGHTS, NO_RIGHTS, Rights
from repro.crypto.randomsrc import RandomSource
from repro.errors import NoSuchObject, PermissionDenied


@dataclass
class ObjectEntry:
    """One row of a server's object table."""

    number: int
    secret: object
    data: object
    #: Monotonic count of secret refreshes — a revocation generation.
    generation: int = 0
    #: Bookkeeping useful to servers (e.g. touch for garbage collection).
    touches: int = field(default=0)
    #: Sweeps left before the object is garbage (None = never collected).
    #: Every successful lookup (STD_TOUCH included) resets it.
    lifetime: object = None


class ObjectTable:
    """Thread-safe object table bound to one scheme and one server port.

    Parameters
    ----------
    scheme:
        The :class:`~repro.core.schemes.ProtectionScheme` protecting this
        server's capabilities.
    port:
        The server's public put-port, stamped into every minted capability.
    rng:
        Randomness source for object secrets (seedable for tests).
    """

    def __init__(
        self,
        scheme,
        port,
        rng=None,
        max_objects=1 << OBJECT_BITS,
        default_lifetime=None,
    ):
        if max_objects < 1 or max_objects > (1 << OBJECT_BITS):
            raise ValueError("max_objects must be in [1, 2**24]")
        if default_lifetime is not None and default_lifetime < 1:
            raise ValueError("default_lifetime must be >= 1 sweeps")
        self.scheme = scheme
        self.port = port
        self._rng = rng or RandomSource()
        self._max_objects = max_objects
        #: Sweeps a fresh/touched object survives; None disables aging.
        #: This is Amoeba's touch-based garbage collection: servers that
        #: keep no record of capability holders cannot refcount, so
        #: objects not touched for N sweeps are presumed garbage.
        self.default_lifetime = default_lifetime
        self._entries = {}
        self._free_numbers = []
        self._next_number = 0
        self._lock = threading.RLock()
        # Callbacks fired after a secret dies (refresh/destroy) with
        # (port, object number, generation) — e.g. a sealer purging its
        # §2.4 capability caches so a revoked capability's sealed form
        # cannot be served from cache.  Fired outside the lock.
        self._revocation_listeners = []

    def __len__(self):
        return len(self._entries)

    def __contains__(self, number):
        return number in self._entries

    def numbers(self):
        """Snapshot of the allocated object numbers."""
        with self._lock:
            return sorted(self._entries)

    def _allocate_number(self):
        if self._free_numbers:
            return self._free_numbers.pop()
        if self._next_number >= self._max_objects:
            raise NoSuchObject(
                "object table full (%d objects)" % self._max_objects
            )
        number = self._next_number
        self._next_number += 1
        return number

    def create(self, data, rights=ALL_RIGHTS):
        """Create an object and mint its first capability.

        The returned capability is the object's *owner* capability; the
        paper's servers always mint with all rights and let callers derive
        weaker ones.
        """
        with self._lock:
            number = self._allocate_number()
            secret = self.scheme.new_secret(self._rng)
            self._entries[number] = ObjectEntry(
                number=number,
                secret=secret,
                data=data,
                lifetime=self.default_lifetime,
            )
        rights_field, check = self.scheme.mint(secret, Rights(rights))
        return Capability(
            port=self.port, object=number, rights=rights_field, check=check
        )

    def _entry(self, number):
        try:
            return self._entries[number]
        except KeyError:
            raise NoSuchObject("no object %d on this server" % number) from None

    def lookup(self, capability, required=NO_RIGHTS):
        """Validate a capability and return ``(entry, effective_rights)``.

        Raises :class:`NoSuchObject` for unknown object numbers,
        :class:`InvalidCapability` for tampered fields, and
        :class:`PermissionDenied` when the (validated) rights lack any bit
        of ``required``.  This is the single enforcement point every server
        operation funnels through.

        Locking: the scheme's verify (the expensive crypto) deliberately
        runs *outside* the lock, but the liveness bookkeeping runs back
        *under* it — ``touches`` is a read-modify-write and ``lifetime``
        races with :meth:`age`, so mutating them unlocked lost touches
        and could resurrect an entry a concurrent :meth:`destroy`/sweep
        had already removed.  If the entry changed while verify ran (a
        racing refresh or destroy-and-recreate), the stale verdict is
        discarded and the capability is re-validated against the live
        secret.
        """
        with self._lock:
            entry = self._entry(capability.object)
            secret = entry.secret
        required = Rights(required)
        while True:
            effective = self.scheme.verify(
                secret, capability.rights, capability.check
            )
            if not effective.has_all(required):
                raise PermissionDenied(
                    "capability grants %s but operation requires %s"
                    % (bin(int(effective)), bin(int(required)))
                )
            with self._lock:
                live = self._entries.get(capability.object)
                if live is None:
                    raise NoSuchObject(
                        "no object %d on this server" % capability.object
                    )
                if live is entry and live.secret is secret:
                    live.touches += 1
                    live.lifetime = self.default_lifetime  # use proves liveness
                    return live, effective
                entry, secret = live, live.secret  # raced; re-validate

    def data(self, capability, required=NO_RIGHTS):
        """Shorthand for ``lookup(...)[0].data``."""
        entry, _ = self.lookup(capability, required)
        return entry.data

    def restrict(self, capability, keep_mask):
        """Server-side sub-capability fabrication (schemes 1–3).

        The §2.3 round-trip: "send the capability back to the server along
        with a bit mask and a request to fabricate a new capability with
        fewer rights."
        """
        with self._lock:
            entry = self._entry(capability.object)
            secret = entry.secret
        rights_field, check = self.scheme.restrict(
            secret, capability.rights, capability.check, Rights(keep_mask)
        )
        return Capability(
            port=self.port,
            object=capability.object,
            rights=rights_field,
            check=check,
        )

    def on_revocation(self, callback):
        """Register ``callback(port, number, generation)`` to fire after a
        secret dies — :meth:`refresh` (generation bumped) or
        :meth:`destroy` (object gone).  This is the hook that keeps the
        §2.4 capability caches honest: an :class:`ObjectServer` with a
        sealer wires it to
        :meth:`~repro.softprot.matrix.CapabilitySealer.invalidate_object`,
        so a revoked capability's cached (sealed, source) triple cannot
        outlive the secret it was minted under.  Callbacks run outside
        the table lock."""
        self._revocation_listeners.append(callback)

    def _notify_revocation(self, number, generation):
        for callback in self._revocation_listeners:
            callback(self.port, number, generation)

    def refresh(self, capability, required=ALL_RIGHTS):
        """Revoke every outstanding capability for an object.

        Replaces the stored random number and returns a fresh owner
        capability.  Per the paper this "must be protected with a bit in
        the RIGHTS field"; callers pass the server's chosen mask as
        ``required`` (default: demand the full owner capability).
        """
        with self._lock:
            entry, _ = self.lookup(capability, required)
            entry.secret = self.scheme.new_secret(self._rng)
            entry.generation += 1
            secret = entry.secret
            generation = entry.generation
        self._notify_revocation(capability.object, generation)
        rights_field, check = self.scheme.mint(secret, ALL_RIGHTS)
        return Capability(
            port=self.port,
            object=capability.object,
            rights=rights_field,
            check=check,
        )

    def destroy(self, capability, required=ALL_RIGHTS):
        """Validate and remove an object, recycling its number."""
        with self._lock:
            entry, _ = self.lookup(capability, required)
            del self._entries[entry.number]
            self._free_numbers.append(entry.number)
            generation = entry.generation
        self._notify_revocation(entry.number, generation)
        return entry.data

    def age(self, on_expire=None):
        """One garbage-collection sweep (Amoeba's touch-based GC).

        Decrements every aging object's lifetime; objects that reach zero
        are removed (``on_expire(entry)`` is called first, so a server
        can release disk blocks etc.).  Returns the expired entries.

        Because no record exists of who holds capabilities, liveness can
        only be proven by *use*: any successful lookup — including the
        no-op STD_TOUCH — resets the lifetime.  Directory-style servers
        run a background client that touches everything still reachable
        by name, then call age(); what remains unproven is garbage.
        """
        with self._lock:
            expired = []
            for entry in list(self._entries.values()):
                if entry.lifetime is None:
                    continue
                entry.lifetime -= 1
                if entry.lifetime <= 0:
                    expired.append(entry)
            for entry in expired:
                del self._entries[entry.number]
                self._free_numbers.append(entry.number)
        for entry in expired:
            if on_expire is not None:
                on_expire(entry)
            self._notify_revocation(entry.number, entry.generation)
        return expired

    def mint_for(self, number, rights=ALL_RIGHTS):
        """Mint a capability for an existing object *without* validation.

        Servers use this internally (e.g. the directory server re-minting
        a stored capability is wrong — it stores whole capabilities — but
        the memory server minting a process capability after MAKE PROCESS
        is exactly this).  Never expose this over the wire.
        """
        with self._lock:
            entry = self._entry(number)
            secret = entry.secret
        rights_field, check = self.scheme.mint(secret, Rights(rights))
        return Capability(
            port=self.port, object=number, rights=rights_field, check=check
        )
