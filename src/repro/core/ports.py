"""Ports: sparse 48-bit service addresses, and the get/put pair (§2.2).

Every port is "really a pair of ports, P and G, related by P = F(G)".  The
server keeps the *get-port* G secret and listens on it; clients address
messages to the *put-port* P, which is public.  Because F is one-way,
knowing P does not let an intruder listen for the server's traffic.

``Port`` is the public 48-bit value that appears in capabilities and wire
headers.  ``PrivatePort`` wraps a secret value (a get-port or a signature
secret S) and can derive its public image; its repr never prints the
secret, so logs cannot leak it.
"""

from dataclasses import dataclass

from repro.crypto.oneway import PORT_BITS, default_oneway
from repro.crypto.randomsrc import RandomSource
from repro.util.bits import mask

#: Bytes occupied by a port on the wire (Fig. 2: 48 bits).
PORT_BYTES = PORT_BITS // 8

#: Wire-decode intern table, ``6 wire bytes -> Port``; dropped wholesale
#: when full, like the F-box image cache (fresh reply ports are random,
#: so the table would otherwise grow one dead entry per transaction).
_INTERN_MAX = 1 << 16
_interned = {}


@dataclass(frozen=True, order=True)
class Port:
    """A public 48-bit port value (a put-port, or any wire port field)."""

    value: int

    def __post_init__(self):
        if not 0 <= self.value <= mask(PORT_BITS):
            raise ValueError(
                "port value %#x outside the %d-bit space" % (self.value, PORT_BITS)
            )

    def to_bytes(self):
        """Big-endian wire encoding, exactly :data:`PORT_BYTES` long.

        Cached on the instance: ports are immutable 48-bit values and hot
        paths (pack, F-box egress) re-encode the same dest/signature ports
        on every frame.
        """
        wire = self.__dict__.get("_wire")
        if wire is None:
            wire = self.value.to_bytes(PORT_BYTES, "big")
            object.__setattr__(self, "_wire", wire)
        return wire

    @classmethod
    def from_bytes(cls, data):
        if len(data) != PORT_BYTES:
            raise ValueError(
                "port needs exactly %d bytes, got %d" % (PORT_BYTES, len(data))
            )
        return cls.from_wire(bytes(data))

    @classmethod
    def from_wire(cls, data):
        """Decode exactly :data:`PORT_BYTES` trusted wire bytes, interned.

        The per-frame decode path: ``Message.unpack`` and
        ``Capability.unpack`` hand this exact-length slices of a validated
        frame, so the length check and ``__post_init__`` range check (any
        6 bytes are < 2**48) are both skipped.  Equal wire images yield
        the *same* ``Port`` object — identity comparisons against
        ``NULL_PORT`` and repeated service ports are pointer checks, and
        the interned instance arrives with its ``to_bytes`` image cached.
        """
        port = _interned.get(data)
        if port is None:
            port = cls.__new__(cls)
            object.__setattr__(port, "value", int.from_bytes(data, "big"))
            object.__setattr__(port, "_wire", data)
            if len(_interned) >= _INTERN_MAX:
                _interned.clear()
                _interned[_NULL_WIRE] = NULL_PORT
            _interned[data] = port
        return port

    @classmethod
    def _unchecked(cls, value):
        """Wrap a value known to be in range, skipping ``__post_init__``.

        For trusted producers only: the one-way function masks its output
        to PORT_BITS and the random source draws exactly PORT_BITS, so
        re-validating their results on the per-frame path buys nothing.
        """
        port = cls.__new__(cls)
        object.__setattr__(port, "value", value)
        return port

    @classmethod
    def random(cls, rng=None):
        """Draw a fresh random port — sparse in a 2**48 space.

        Validating constructor on purpose: ``rng`` may be caller-supplied,
        and a buggy one should fail here, not later inside pack().
        """
        rng = rng or RandomSource()
        return cls(rng.bits(PORT_BITS))

    @property
    def is_null(self):
        return self.value == 0

    # Ports key every hot dict on the wire path (admission sinks, the
    # routing index, F-image caches).  The dataclass-generated
    # __hash__/__eq__ build a (value,) tuple per call; these single-field
    # versions do not, and dataclass() leaves explicitly defined ones
    # alone.  Equal ports still hash equally, so the contract holds.
    def __hash__(self):
        return hash(self.value)

    def __eq__(self, other):
        if other.__class__ is Port:
            return self.value == other.value
        return NotImplemented

    def __repr__(self):
        return "Port(%012x)" % self.value


#: The all-zero port, used for unused header fields.
NULL_PORT = Port(0)

#: Seed the intern table so every decoded null field IS ``NULL_PORT`` —
#: the single hottest identity comparison on the wire path.
_NULL_WIRE = NULL_PORT.to_bytes()
_interned[_NULL_WIRE] = NULL_PORT


@dataclass(frozen=True)
class PrivatePort:
    """A secret port value: a server get-port G, or a signature secret S.

    The public image ``F(secret)`` is exposed via :attr:`public`; the
    secret itself stays inside the owning process and never appears on the
    wire (the F-box transforms it on egress).
    """

    secret: int

    def __post_init__(self):
        if not 0 <= self.secret <= mask(PORT_BITS):
            raise ValueError("secret outside the %d-bit port space" % PORT_BITS)

    @classmethod
    def generate(cls, rng=None):
        """Choose a fresh secret port (a well-kept 48-bit secret)."""
        rng = rng or RandomSource()
        return cls(rng.bits(PORT_BITS))

    @property
    def public(self):
        """The put-port P = F(G) that clients use to reach this service.

        Computed once and cached on the instance — F is deterministic and
        the secret is immutable, so the image can never change.
        """
        cached = self.__dict__.get("_public")
        if cached is None:
            cached = Port(default_oneway()(self.secret))
            object.__setattr__(self, "_public", cached)
        return cached

    def _as_secret_port(self):
        """The secret wrapped as a :class:`Port` (cached; see ``as_port``)."""
        cached = self.__dict__.get("_secret_port")
        if cached is None:
            cached = Port(self.secret)
            object.__setattr__(self, "_secret_port", cached)
        return cached

    def __repr__(self):
        # Never print the secret: knowledge of a port IS the credential.
        return "PrivatePort(public=%r)" % self.public


def as_port(value):
    """Coerce a ``Port``, ``PrivatePort``, or integer to a :class:`Port`.

    A ``PrivatePort`` coerces to its *secret* value — this is what a
    process hands to GET or places in a reply/signature header field; the
    F-box applies F on the way out, never the caller.
    """
    if isinstance(value, Port):
        return value
    if isinstance(value, PrivatePort):
        return value._as_secret_port()
    if isinstance(value, int):
        return Port(value)
    raise TypeError("cannot interpret %r as a port" % (value,))
