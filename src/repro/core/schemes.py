"""The four rights-protection algorithms of §2.3.

All four share one contract: the server stores a per-object *secret*; a
capability carries a RIGHTS field and a CHECK field; and ``verify`` either
returns the effective rights or raises
:class:`~repro.errors.InvalidCapability`.  They differ in how tampering is
detected and in where a capability with fewer rights can be fabricated:

``SimpleCheckScheme`` (the paper's "simplest" system)
    CHECK is the stored random number itself.  Easy, but all-or-nothing:
    a valid capability grants every operation.

``EncryptedRightsScheme`` (first algorithm)
    RIGHTS and a known constant are encrypted together under a per-object
    key; the ciphertext fills the combined RIGHTS+CHECK fields.  Decrypting
    to the known constant authenticates the rights.

``XorOneWayScheme`` (second algorithm)
    CHECK = F(random XOR rights); RIGHTS travels in plaintext.  Tampering
    with the plaintext rights makes the recomputed image disagree.

``CommutativeScheme`` (third algorithm)
    CHECK starts as the random number; deleting right k replaces CHECK with
    F_k(CHECK) where the F_k commute.  Uniquely, a *client* can produce a
    weaker sub-capability without a server round-trip.

Restriction with the first two algorithms "requires going back to the
server every time"; the registry and the standard-operations RPC layer
expose that round-trip, and the benchmarks count the messages.
"""

from abc import ABC, abstractmethod

from repro.core.capability import CHECK_BYTES, Capability
from repro.core.rights import ALL_RIGHTS, RIGHTS_WIDTH, Rights
from repro.crypto.commutative import CommutativeOneWayFamily
from repro.crypto.feistel import RIGHTS_CHECK_BLOCK_BITS, feistel_for_key
from repro.crypto.oneway import OneWayFunction
from repro.errors import BadRequest, InvalidCapability
from repro.util.bits import constant_time_eq, mask

#: Width of the canonical check field in bits.
CHECK_BITS = CHECK_BYTES * 8


class ProtectionScheme(ABC):
    """Mint, verify, and restrict the RIGHTS/CHECK fields of capabilities.

    A scheme never sees whole capabilities or the object table — only the
    per-object secret and the two protected fields — so the same scheme
    code serves every kind of server.
    """

    #: Short stable identifier, usable in configuration and benchmarks.
    name = "abstract"

    #: True when a client can fabricate a weaker capability locally.
    client_restrictable = False

    #: True when the scheme can produce capabilities with reduced rights
    #: at all (the simple scheme cannot).
    supports_restriction = True

    #: Length in bytes of the check fields this scheme emits.
    check_bytes = CHECK_BYTES

    @abstractmethod
    def new_secret(self, rng):
        """Draw the per-object secret stored in the server's table."""

    @abstractmethod
    def mint(self, secret, rights):
        """Build the protected fields for a fresh capability.

        Returns ``(rights_field, check_field)``; ``rights_field`` is what
        goes in the capability's RIGHTS slot, which for the encrypted
        scheme is ciphertext rather than the plaintext rights.
        """

    @abstractmethod
    def verify(self, secret, rights_field, check):
        """Validate the protected fields against the stored secret.

        Returns the effective :class:`Rights` or raises
        :class:`InvalidCapability`.  Must not leak timing about how close
        a forged check field was.
        """

    def restrict(self, secret, rights_field, check, keep_mask):
        """Server-side fabrication of a sub-capability (fewer rights).

        Default implementation: verify, intersect, re-mint.  Schemes that
        cannot express reduced rights override this to refuse.
        """
        effective = self.verify(secret, rights_field, check)
        return self.mint(secret, effective.restrict(keep_mask))

    def __repr__(self):
        return "%s(name=%r)" % (type(self).__name__, self.name)


class SimpleCheckScheme(ProtectionScheme):
    """§2.3's simplest system: CHECK is the object's random number.

    "If they agree, the capability is assumed to be genuine, and all
    operations on the file are allowed."  The RIGHTS field is therefore
    advisory only; :meth:`verify` grants :data:`ALL_RIGHTS` regardless.
    """

    name = "simple"
    supports_restriction = False

    def new_secret(self, rng):
        return rng.bits(CHECK_BITS)

    def mint(self, secret, rights):
        # The rights argument is accepted for interface uniformity but the
        # scheme cannot enforce anything less than everything.
        return ALL_RIGHTS, secret.to_bytes(CHECK_BYTES, "big")

    def verify(self, secret, rights_field, check):
        if not constant_time_eq(check, secret.to_bytes(CHECK_BYTES, "big")):
            raise InvalidCapability("check field does not match object secret")
        return ALL_RIGHTS

    def restrict(self, secret, rights_field, check, keep_mask):
        raise BadRequest(
            "the simple scheme cannot mint capabilities with fewer rights"
        )


class EncryptedRightsScheme(ProtectionScheme):
    """§2.3 first algorithm: encrypt RIGHTS + known constant per object.

    The per-object secret is an encryption key.  Minting encrypts the
    56-bit block ``rights || 0`` and spreads the ciphertext across the
    RIGHTS and CHECK fields; verification decrypts and demands the known
    constant.  A PRP "mixes the bits thoroughly", so flipping any
    ciphertext bit scrambles the constant (the paper notes a plain XOR
    would not do).
    """

    name = "encrypted"

    #: The known constant occupying the check half of the plaintext block.
    KNOWN_CONSTANT = 0

    _KEY_BYTES = 16

    def new_secret(self, rng):
        return rng.bytes(self._KEY_BYTES)

    def _cipher(self, secret):
        # Per-key cache: the key schedule for an object's secret is built
        # on the first mint/verify, not on every capability check.
        return feistel_for_key(secret, block_bits=RIGHTS_CHECK_BLOCK_BITS)

    def mint(self, secret, rights):
        rights = Rights(rights)
        block = (int(rights) << CHECK_BITS) | self.KNOWN_CONSTANT
        ct = self._cipher(secret).encrypt(block)
        rights_field = Rights(ct >> CHECK_BITS)
        check = (ct & mask(CHECK_BITS)).to_bytes(CHECK_BYTES, "big")
        return rights_field, check

    def verify(self, secret, rights_field, check):
        if len(check) != CHECK_BYTES:
            raise InvalidCapability("wrong check-field width for this scheme")
        ct = (int(rights_field) << CHECK_BITS) | int.from_bytes(check, "big")
        pt = self._cipher(secret).decrypt(ct)
        constant = pt & mask(CHECK_BITS)
        rights = pt >> CHECK_BITS
        # Compare via bytes so the check is constant-time like the others.
        expected = self.KNOWN_CONSTANT.to_bytes(CHECK_BYTES, "big")
        if not constant_time_eq(constant.to_bytes(CHECK_BYTES, "big"), expected):
            raise InvalidCapability("decryption did not yield the known constant")
        return Rights(rights)


class XorOneWayScheme(ProtectionScheme):
    """§2.3 second algorithm: CHECK = F(random XOR rights), plaintext rights.

    This is the scheme production Amoeba adopted.  The rights field is
    visible and tamper-evident: the server XORs the presented rights into
    its stored random number, one-ways the result, and compares.
    """

    name = "xor-oneway"

    def __init__(self, oneway=None):
        self._f = oneway or OneWayFunction(tag=b"amoeba/rights", width_bits=CHECK_BITS)

    def new_secret(self, rng):
        return rng.bits(CHECK_BITS)

    def _image(self, secret, rights):
        return self._f(secret ^ int(rights)).to_bytes(CHECK_BYTES, "big")

    def mint(self, secret, rights):
        rights = Rights(rights)
        return rights, self._image(secret, rights)

    def verify(self, secret, rights_field, check):
        if len(check) != CHECK_BYTES:
            raise InvalidCapability("wrong check-field width for this scheme")
        if not constant_time_eq(check, self._image(secret, rights_field)):
            raise InvalidCapability("rights or check field has been tampered with")
        return Rights(rights_field)


class CommutativeScheme(ProtectionScheme):
    """§2.3 third algorithm: commutative one-way functions per rights bit.

    CHECK starts as the object's random group element R with all rights
    set.  Whoever holds a capability — client or server — deletes right k
    by replacing CHECK with F_k(CHECK) and clearing bit k; commutativity
    makes the result independent of deletion order.  The server verifies
    by applying the functions for every *deleted* right to its stored R
    and comparing.

    Check fields are group elements (~64 bytes), so these capabilities
    use the extended encoding; see DESIGN.md.
    """

    name = "commutative"
    client_restrictable = True

    def __init__(self, family=None):
        self.family = family or CommutativeOneWayFamily()
        if self.family.n_functions < RIGHTS_WIDTH:
            raise ValueError(
                "family provides %d functions but the rights field has %d bits"
                % (self.family.n_functions, RIGHTS_WIDTH)
            )
        self.check_bytes = self.family.element_bytes

    def new_secret(self, rng):
        return self.family.random_element(rng)

    def _encode(self, element):
        return element.to_bytes(self.family.element_bytes, "big")

    def _decode(self, check):
        if len(check) != self.family.element_bytes:
            raise InvalidCapability("wrong check-field width for this scheme")
        value = int.from_bytes(check, "big")
        if value >= self.family.modulus:
            raise InvalidCapability("check field is not a group element")
        return value

    def mint(self, secret, rights):
        rights = Rights(rights)
        element = self.family.apply_many(rights.clear_bits(), secret)
        return rights, self._encode(element)

    def verify(self, secret, rights_field, check):
        presented = self._decode(check)
        expected = self.family.apply_many(Rights(rights_field).clear_bits(), secret)
        if not constant_time_eq(self._encode(presented), self._encode(expected)):
            raise InvalidCapability("rights or check field has been tampered with")
        return Rights(rights_field)

    def client_restrict(self, capability, keep_mask):
        """Fabricate a weaker capability *without the server* (the paper's
        headline property for this algorithm).

        Applies F_k for every right being dropped and clears those bits.
        Needs no secret: one-wayness means the original stronger check
        cannot be recovered from the result.
        """
        if not isinstance(capability, Capability):
            raise TypeError("client_restrict operates on whole capabilities")
        old_rights = capability.rights
        new_rights = old_rights.restrict(keep_mask)
        dropped = [k for k in old_rights.set_bits() if not new_rights.has(k)]
        element = self._decode(capability.check)
        for k in dropped:
            element = self.family.apply(k, element)
        return Capability(
            port=capability.port,
            object=capability.object,
            rights=new_rights,
            check=self._encode(element),
        )

    def recover_rights(self, secret, check):
        """Brute-force the rights field from CHECK alone.

        The paper observes that "in theory at least, the RIGHTS field is
        not even needed, since the server could try all 2**N combinations";
        this method implements that observation so the benchmarks can show
        why the plaintext field is kept (it is a 256x speedup).
        """
        presented = self._decode(check)
        for bits in range(1 << RIGHTS_WIDTH):
            rights = Rights(bits)
            expected = self.family.apply_many(rights.clear_bits(), secret)
            if expected == presented:
                return rights
        raise InvalidCapability("no rights combination validates this check field")


_SCHEMES = {
    cls.name: cls
    for cls in (
        SimpleCheckScheme,
        EncryptedRightsScheme,
        XorOneWayScheme,
        CommutativeScheme,
    )
}


def scheme_by_name(name, **kwargs):
    """Instantiate a protection scheme from its stable name.

    >>> scheme_by_name("xor-oneway").name
    'xor-oneway'
    """
    try:
        cls = _SCHEMES[name]
    except KeyError:
        raise ValueError(
            "unknown scheme %r (have: %s)" % (name, ", ".join(sorted(_SCHEMES)))
        ) from None
    return cls(**kwargs)


def all_scheme_names():
    """Names of every available scheme, in the paper's presentation order."""
    return ("simple", "encrypted", "xor-oneway", "commutative")
