"""The 8-bit RIGHTS field of a capability (Fig. 2).

Each bit grants one operation; which operation each bit means is a
per-server convention (the block server's bit 0 is "read the block", the
bank server's bit 0 is "inspect the account", and so on).  This module is
only the generic bit-mask algebra; servers define named constants.
"""

from repro.util.bits import mask

#: Width of the rights field in bits (Fig. 2).
RIGHTS_WIDTH = 8


class Rights(int):
    """An immutable 8-bit rights mask.

    ``Rights`` is an ``int`` subclass so it packs directly into wire
    formats and composes with ``&``/``|``, while offering the set-style
    queries the protection schemes need.
    """

    WIDTH = RIGHTS_WIDTH

    def __new__(cls, bits=mask(RIGHTS_WIDTH)):
        bits = int(bits)
        if bits < 0 or bits > mask(RIGHTS_WIDTH):
            raise ValueError(
                "rights %#x outside the %d-bit field" % (bits, RIGHTS_WIDTH)
            )
        return super().__new__(cls, bits)

    def has(self, bit_index):
        """True if the right at ``bit_index`` (0..7) is present."""
        if not 0 <= bit_index < RIGHTS_WIDTH:
            raise IndexError("rights bit %d outside [0, %d)" % (bit_index, RIGHTS_WIDTH))
        return bool((self >> bit_index) & 1)

    def has_all(self, required):
        """True if every bit of ``required`` is present in this mask."""
        required = int(required)
        return (self & required) == required

    def restrict(self, keep_mask):
        """Return the rights retained after intersecting with ``keep_mask``.

        This is the client-visible semantics of handing out a
        sub-capability: rights can only shrink, never grow.
        """
        return Rights(self & int(keep_mask))

    def without(self, drop_mask):
        """Return the rights with every bit of ``drop_mask`` removed."""
        return Rights(self & ~int(drop_mask) & mask(RIGHTS_WIDTH))

    def set_bits(self):
        """Indices of the rights that are present, ascending."""
        return tuple(i for i in range(RIGHTS_WIDTH) if (self >> i) & 1)

    def clear_bits(self):
        """Indices of the rights that have been deleted, ascending.

        Scheme 3 applies one commutative one-way function per *deleted*
        right, so this is the set the verifier iterates.
        """
        return tuple(i for i in range(RIGHTS_WIDTH) if not (self >> i) & 1)

    def __repr__(self):
        return "Rights(0b%s)" % format(int(self), "08b")


#: Every operation permitted — the state of a freshly minted owner capability.
ALL_RIGHTS = Rights(mask(RIGHTS_WIDTH))

#: No operations permitted.
NO_RIGHTS = Rights(0)
