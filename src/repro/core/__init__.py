"""The paper's primary contribution: sparse, user-space capabilities.

This package implements the Fig. 2 capability layout, the port machinery
of §2.2, the four rights-protection algorithms of §2.3, and the server-side
object table with random-number revocation.
"""

from repro.core.capability import Capability
from repro.core.ports import NULL_PORT, Port, PrivatePort
from repro.core.registry import ObjectEntry, ObjectTable
from repro.core.rights import ALL_RIGHTS, NO_RIGHTS, Rights
from repro.core.schemes import (
    CommutativeScheme,
    EncryptedRightsScheme,
    ProtectionScheme,
    SimpleCheckScheme,
    XorOneWayScheme,
    scheme_by_name,
)

__all__ = [
    "ALL_RIGHTS",
    "Capability",
    "CommutativeScheme",
    "EncryptedRightsScheme",
    "NO_RIGHTS",
    "NULL_PORT",
    "ObjectEntry",
    "ObjectTable",
    "Port",
    "PrivatePort",
    "ProtectionScheme",
    "Rights",
    "SimpleCheckScheme",
    "XorOneWayScheme",
    "scheme_by_name",
]
