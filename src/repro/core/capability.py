"""The capability object and its Fig. 2 wire layout.

A capability names and protects one object::

    Server Port    Object    Rights    Check Field
       48 bits    24 bits    8 bits      48 bits

The canonical encoding is exactly 128 bits.  Rights-protection scheme 3
(commutative one-way functions) needs check values the size of a group
element (~64 bytes), so an *extended* encoding also exists; DESIGN.md
records this deviation.  Both encodings are self-describing by length.
"""

from dataclasses import dataclass, replace

from repro.core.ports import PORT_BYTES, Port
from repro.core.rights import Rights
from repro.errors import MalformedCapability
from repro.util.bits import constant_time_eq

#: Width of the object-number field (Fig. 2: 24 bits).
OBJECT_BITS = 24
OBJECT_BYTES = OBJECT_BITS // 8

#: Canonical check-field width (Fig. 2: 48 bits).
CHECK_BYTES = 6

#: Total canonical capability size: 6 + 3 + 1 + 6 bytes = 128 bits.
CAPABILITY_BYTES = PORT_BYTES + OBJECT_BYTES + 1 + CHECK_BYTES

#: Extended check fields must be at least this long, so that an extended
#: encoding can never be confused with the 16-byte canonical one.
_MIN_EXTENDED_CHECK = 8

_EXTENDED_HEADER = PORT_BYTES + OBJECT_BYTES + 1 + 2  # + 2-byte check length


def validate_packed_length(buf, start, length):
    """Check that ``buf[start:start+length]`` frames one packed capability.

    Pure length arithmetic — no objects are built.  Raises exactly the
    :class:`~repro.errors.MalformedCapability` that :meth:`Capability.unpack`
    would raise for the same slice, which is what lets ``Message.unpack``
    validate a frame eagerly while materializing its capabilities lazily:
    after this passes, ``unpack`` on the slice cannot fail (ports decode
    from fixed 6-byte fields, any byte is a valid ``Rights``).
    """
    if length == CAPABILITY_BYTES:
        return
    if length < _EXTENDED_HEADER:
        raise MalformedCapability("capability too short: %d bytes" % length)
    head = start + _EXTENDED_HEADER
    check_len = (buf[head - 2] << 8) | buf[head - 1]
    if check_len < _MIN_EXTENDED_CHECK:
        raise MalformedCapability(
            "extended check length %d below minimum %d"
            % (check_len, _MIN_EXTENDED_CHECK)
        )
    if length != _EXTENDED_HEADER + check_len:
        raise MalformedCapability(
            "capability length %d does not match declared check length %d"
            % (length, check_len)
        )


@dataclass(frozen=True)
class Capability:
    """An unforgeable-in-practice reference to one object on one server.

    Capabilities live in user address space as plain data; what makes them
    safe to hand around is that the ``check`` field is *sparse* — a random
    value (or a one-way image of one) in a space far too large to guess.
    """

    port: Port
    object: int
    rights: Rights
    check: bytes

    def __post_init__(self):
        if not 0 <= self.object < (1 << OBJECT_BITS):
            raise ValueError(
                "object number %#x outside the %d-bit field"
                % (self.object, OBJECT_BITS)
            )
        if not isinstance(self.rights, Rights):
            object.__setattr__(self, "rights", Rights(self.rights))
        if len(self.check) != CHECK_BYTES and len(self.check) < _MIN_EXTENDED_CHECK:
            raise ValueError(
                "check field must be %d bytes (canonical) or >= %d bytes "
                "(extended), got %d"
                % (CHECK_BYTES, _MIN_EXTENDED_CHECK, len(self.check))
            )

    @property
    def is_canonical(self):
        """True when this capability packs to the 128-bit Fig. 2 layout."""
        return len(self.check) == CHECK_BYTES

    def pack(self):
        """Serialise to bytes (16 bytes canonical, longer for extended).

        The image is cached on the instance: capabilities are frozen, so
        the encoding can never change, and the hot path (header cap on
        every request of a session) re-packs the same object per frame.
        """
        packed = self.__dict__.get("_packed")
        if packed is not None:
            return packed
        head = (
            self.port.to_bytes()
            + self.object.to_bytes(OBJECT_BYTES, "big")
            + bytes([int(self.rights)])
        )
        if len(self.check) == CHECK_BYTES:
            packed = head + self.check
        else:
            packed = head + len(self.check).to_bytes(2, "big") + self.check
        object.__setattr__(self, "_packed", packed)
        return packed

    @classmethod
    def _trusted(cls, port, obj, rights, check):
        """Build a capability skipping the ``__post_init__`` range checks.

        Only for wire decoding of *pre-validated* frames: the caller
        guarantees ``obj`` came from a 3-byte field, ``rights`` is a
        :class:`Rights`, and ``check`` is bytes of a validated length
        (``Message.unpack`` checks the framing arithmetic eagerly even
        when it materializes the object lazily).
        """
        cap = cls.__new__(cls)
        object.__setattr__(cap, "port", port)
        object.__setattr__(cap, "object", obj)
        object.__setattr__(cap, "rights", rights)
        object.__setattr__(cap, "check", check)
        return cap

    @classmethod
    def unpack(cls, data):
        """Parse bytes produced by :meth:`pack`.

        Raises :class:`~repro.errors.MalformedCapability` on any size or
        framing violation — a server must never guess at a mangled
        capability.
        """
        if len(data) == CAPABILITY_BYTES:
            port = Port.from_wire(bytes(data[:PORT_BYTES]))
            obj = int.from_bytes(data[PORT_BYTES:PORT_BYTES + OBJECT_BYTES], "big")
            rights = Rights(data[PORT_BYTES + OBJECT_BYTES])
            check = data[PORT_BYTES + OBJECT_BYTES + 1:]
            # _trusted is sound: every field above came from a fixed-width
            # slice of a 16-byte frame, so each is in range by construction.
            return cls._trusted(port, obj, rights, bytes(check))
        if len(data) < _EXTENDED_HEADER:
            raise MalformedCapability(
                "capability too short: %d bytes" % len(data)
            )
        port = Port.from_wire(bytes(data[:PORT_BYTES]))
        obj = int.from_bytes(data[PORT_BYTES:PORT_BYTES + OBJECT_BYTES], "big")
        rights = Rights(data[PORT_BYTES + OBJECT_BYTES])
        check_len = int.from_bytes(
            data[_EXTENDED_HEADER - 2:_EXTENDED_HEADER], "big"
        )
        if check_len < _MIN_EXTENDED_CHECK:
            raise MalformedCapability(
                "extended check length %d below minimum %d"
                % (check_len, _MIN_EXTENDED_CHECK)
            )
        check = data[_EXTENDED_HEADER:_EXTENDED_HEADER + check_len]
        if len(check) != check_len or len(data) != _EXTENDED_HEADER + check_len:
            raise MalformedCapability(
                "capability length %d does not match declared check length %d"
                % (len(data), check_len)
            )
        return cls._trusted(port, obj, rights, bytes(check))

    def with_rights(self, rights):
        """A copy with a different rights field (check unchanged).

        Only meaningful for schemes whose rights field is plaintext; the
        protection schemes produce these, user code normally should not.
        """
        return replace(self, rights=Rights(rights))

    def with_check(self, check):
        """A copy with a different check field."""
        return replace(self, check=bytes(check))

    def same_object(self, other):
        """True when two capabilities name the same object on the same server
        (regardless of rights or check value)."""
        return self.port == other.port and self.object == other.object

    def __eq__(self, other):
        if not isinstance(other, Capability):
            return NotImplemented
        # Constant-time on the check field: equality tests against a
        # genuine capability must not leak matching prefixes.
        return (
            self.port == other.port
            and self.object == other.object
            and int(self.rights) == int(other.rights)
            and constant_time_eq(self.check, other.check)
        )

    def __hash__(self):
        return hash((self.port, self.object, int(self.rights), self.check))

    def __repr__(self):
        return "Capability(port=%012x, object=%d, rights=%s, check=%s…)" % (
            self.port.value,
            self.object,
            format(int(self.rights), "08b"),
            self.check[:4].hex(),
        )
