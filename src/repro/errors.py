"""Exception hierarchy and wire error codes for the Amoeba reproduction.

Amoeba RPC replies carry a small integer status; servers map exceptions to
codes when replying and clients map codes back to exceptions, so the same
exception types flow end to end whether a server is called in-process or
over the (simulated or real) network.
"""


class AmoebaError(Exception):
    """Base class for every error raised by this library."""

    #: Wire status code carried in RPC reply headers.
    code = 1


class CapabilityError(AmoebaError):
    """Base class for capability validation failures."""

    code = 10


class InvalidCapability(CapabilityError):
    """The check field does not validate: forged, corrupted, or revoked."""

    code = 11


class PermissionDenied(CapabilityError):
    """The capability is genuine but lacks the rights bit for the operation."""

    code = 12


class NoSuchObject(CapabilityError):
    """The object number does not exist in the server's object table."""

    code = 13


class MalformedCapability(CapabilityError):
    """The capability bytes cannot be parsed into the Fig. 2 layout."""

    code = 14


class RPCError(AmoebaError):
    """Base class for transport and request/reply failures."""

    code = 20


class PortNotLocated(RPCError):
    """No machine answered a LOCATE for the destination put-port."""

    code = 21


class RPCTimeout(RPCError):
    """The blocking transaction did not complete in time."""

    code = 22


class BadRequest(RPCError):
    """The server could not parse the request (unknown opcode, bad params)."""

    code = 23


class PartitionSuspected(RPCTimeout):
    """Every known replica of a multi-member service went silent at once.

    One dead member is a crash; the *whole* pool timing out in a single
    transaction is the signature of an unreachable network, so the retry
    layer raises this RPCTimeout subclass instead.  Callers that only
    know RPCTimeout keep working; callers that care (failover policies,
    locate caches) can suspect a partition and re-probe after heal
    rather than writing the service off as dead.
    """

    code = 24


class ServerError(AmoebaError):
    """Base class for per-server semantic failures."""

    code = 30


class OutOfSpace(ServerError):
    """The disk or memory resource backing the server is exhausted."""

    code = 31


class NameNotFound(ServerError):
    """Directory lookup failed for the given name."""

    code = 32


class NameExists(ServerError):
    """Directory entry already present and overwrite was not requested."""

    code = 33


class VersionConflict(ServerError):
    """Optimistic commit lost the race: the base version is no longer newest."""

    code = 34


class VersionImmutable(ServerError):
    """Attempt to modify a committed (write-once) file version."""

    code = 35


class InsufficientFunds(ServerError):
    """Bank transfer or payment exceeds the account balance."""

    code = 36


class UnknownCurrency(ServerError):
    """The bank account has no balance in the requested currency."""

    code = 37


class InconvertibleCurrency(ServerError):
    """Conversion requested between currencies with no exchange rate."""

    code = 38


class ProcessStateError(ServerError):
    """Process operation invalid in the current state (e.g. start a runner)."""

    code = 39


class SecurityError(AmoebaError):
    """Cryptographic protocol failure (bootstrap handshake, bad signature)."""

    code = 40


class WriteOnceViolation(ServerError):
    """Attempt to rewrite a block on write-once media (video disk, §3.5)."""

    code = 41


class DiskFault(ServerError):
    """A simulated disk misbehaved (torn write, lost write, bad media)."""

    code = 42


class PowerFailure(DiskFault):
    """The machine lost power mid-I/O; the process owning the disk is gone."""

    code = 43


#: Status code for a successful reply.
STATUS_OK = 0

_CODE_TO_EXCEPTION = {}


def _register(cls):
    _CODE_TO_EXCEPTION[cls.code] = cls


for _cls in (
    AmoebaError,
    CapabilityError,
    InvalidCapability,
    PermissionDenied,
    NoSuchObject,
    MalformedCapability,
    RPCError,
    PortNotLocated,
    RPCTimeout,
    BadRequest,
    PartitionSuspected,
    ServerError,
    OutOfSpace,
    NameNotFound,
    NameExists,
    VersionConflict,
    VersionImmutable,
    InsufficientFunds,
    UnknownCurrency,
    InconvertibleCurrency,
    ProcessStateError,
    SecurityError,
    WriteOnceViolation,
    DiskFault,
    PowerFailure,
):
    _register(_cls)


def error_to_code(exc):
    """Map an exception instance to its wire status code."""
    if isinstance(exc, AmoebaError):
        return exc.code
    return AmoebaError.code


def code_to_error(code, message=""):
    """Map a wire status code back to an exception instance.

    Unknown codes map to the base ``AmoebaError`` so a newer server cannot
    crash an older client.
    """
    cls = _CODE_TO_EXCEPTION.get(code, AmoebaError)
    return cls(message)
