"""Per-stripe write-ahead logging and reboot recovery for object tables.

Every server's :class:`~repro.core.registry.ObjectTable` dies with its
process; this module gives it a disk life.  The design follows the
table's own sharding: **one append-only log per stripe**, so ``create``
/ ``refresh`` / ``destroy`` append under the stripe lock the operation
already holds and logging never serializes cross-shard traffic.
Periodic per-stripe snapshots bound each log's length — a snapshot
encodes the stripe's rows and captures the log's *replay position*
under one stripe acquisition, commits the new superblock, and only then
frees the log blocks before that position.  Nothing acked is ever lost
by truncation, and no instant exists at which the whole table is
locked.

On-disk layout (over a :class:`~repro.disk.virtualdisk.VirtualDisk`):

* **Superblock** — dual slots at blocks 0 and 1, written alternately
  with a monotonically increasing epoch and a CRC; the highest *valid*
  epoch wins at attach, so a torn superblock write simply loses to the
  previous commit.  Per stripe it records the snapshot chain head, the
  log chain head, and the replay offset within that head block.
* **Block chains** — each snapshot and each log is a singly linked
  chain: ``[4B next | 0xFFFFFFFF][2B used]`` then payload.  Records
  span block boundaries, so block size never bounds record size.
* **Records** — ``[1B magic 0xA5][4B length][4B crc32]`` + payload.
  The CRC is what detects a *torn* tail; a whole lost block at the tail
  is deliberately undetectable (the log is shorter but clean) and
  recovery then yields a consistent-but-older state — clients holding
  capabilities for the lost objects get ``NoSuchObject`` and re-create
  through the retry + re-locate path.

Recovery (:meth:`DurableStore.recover`, driven by
``ObjectServer.reboot()``) replays snapshot + log per stripe.  A stripe
whose tail is *suspect* (bad magic, bad CRC, truncated record, broken
chain) keeps its parsed prefix but has every secret regenerated and
every generation bumped — exactly the paper's revocation move: when the
server cannot prove its table wasn't tampered with, it re-keys, old
capabilities fail §2.2 check validation, and clients refresh.  Commit
records (server-side dedup state, see ``ObjectServer``) are replayed
only from clean stripes; a suspect stripe's transactions re-execute,
which is coherent because their effects are exactly what the torn tail
lost.
"""

import struct
import threading
import zlib

from repro.core.registry import DEFAULT_SHARDS, ObjectEntry
from repro.crypto.randomsrc import RandomSource
from repro.disk.virtualdisk import VirtualDisk
from repro.errors import DiskFault

__all__ = ["DurableStore", "StripeLog", "RecoveryReport", "DefaultCodec"]

#: "No block" sentinel in chain next-pointers and snapshot heads.
NO_BLOCK = 0xFFFFFFFF

# Chain block header: next block, used payload bytes, and a 16-bit CRC
# over those six bytes.  The header CRC is what keeps a *torn* header
# from being believed: without it a garbage ``next`` could walk a scan
# into some other stripe's live blocks — and tail truncation would then
# free blocks it does not own.
_CHAIN_HEADER = struct.Struct(">IHH")
_RECORD_HEAD = struct.Struct(">BII")  # magic, payload length, crc32
_RECORD_MAGIC = 0xA5

_SB_SLOTS = (0, 1)
_SB_MAGIC = b"AWAL"
_SB_VERSION = 1
_SB_HEAD = struct.Struct(">4sBBQI")  # magic, version, shards, epoch, crc
_SB_STRIPE = struct.Struct(">III")  # snapshot head, log head, replay offset

# Record operation tags.
OP_ENTRY = 1  # full row image: create *and* snapshot records
OP_REFRESH = 2
OP_DESTROY = 3
OP_UPDATE = 4  # re-logged row payload (a durable server mutated data)
OP_COMMIT = 5  # completed transaction: (src, reply port, packed reply)


def _crc(payload):
    return zlib.crc32(payload) & 0xFFFFFFFF


def _pack_chain_header(buf, nxt, used):
    hcrc = zlib.crc32(struct.pack(">IH", nxt, used)) & 0xFFFF
    _CHAIN_HEADER.pack_into(buf, 0, nxt, used, hcrc)


def _parse_chain_header(raw):
    """Returns ``(next, used, header_ok)``."""
    nxt, used, hcrc = _CHAIN_HEADER.unpack_from(raw)
    ok = (zlib.crc32(raw[:6]) & 0xFFFF) == hcrc
    return nxt, used, ok


def _free_chain(disk, head, stop=NO_BLOCK):
    """Free a chain's blocks from ``head`` up to (excluding) ``stop``.

    Stops (leaking, for the attach-time reclaimer) rather than freeing
    through a block whose header does not verify.
    """
    freed = 0
    block_no = head
    while block_no != stop and block_no != NO_BLOCK:
        raw = disk.read(block_no)
        nxt, _, ok = _parse_chain_header(raw)
        disk.free(block_no)
        freed += 1
        if not ok:
            break
        block_no = nxt
    return freed


class StripeLog:
    """One append-only record stream over a chain of disk blocks.

    Appends are buffered per tail block: each record costs one or two
    whole-block writes (two when it rolls into a fresh block).  The
    internal lock only orders appends against concurrent
    :meth:`tail_position` / :meth:`truncate_front`; callers in the
    object table already hold their stripe lock, which is what makes
    the position capture in a snapshot exact.
    """

    def __init__(self, disk, head=None, tail=None, tail_used=0):
        self.disk = disk
        self.lock = threading.Lock()
        self.capacity = disk.block_size - _CHAIN_HEADER.size
        if self.capacity < 1:
            raise ValueError("block size too small for chain blocks")
        self.records_appended = 0
        if head is None:
            head = disk.allocate()
            self.head = head
            self.tail = head
            self.tail_used = 0
            self._tail_buf = bytearray(disk.block_size)
            self._flush_tail()  # an unwritten head must not scan as torn
        else:
            self.head = head
            self.tail = tail if tail is not None else head
            self.tail_used = tail_used
            self._tail_buf = bytearray(disk.read(self.tail))

    def append(self, payload):
        """Durably append one record (framed, CRC-protected)."""
        if not payload:
            raise ValueError("cannot append an empty record")
        record = (
            _RECORD_HEAD.pack(_RECORD_MAGIC, len(payload), _crc(payload))
            + payload
        )
        with self.lock:
            view = memoryview(record)
            while view:
                space = self.capacity - self.tail_used
                if space == 0:
                    self._roll()
                    space = self.capacity
                n = min(space, len(view))
                start = _CHAIN_HEADER.size + self.tail_used
                self._tail_buf[start:start + n] = view[:n]
                self.tail_used += n
                view = view[n:]
            self._flush_tail()
            self.records_appended += 1

    def _roll(self):
        """The tail block is full: link in a fresh one.

        The old tail is written *with* its forward pointer before the
        new block ever exists on disk; a crash between the two writes
        leaves a pointer to an unwritten block, which the scanner reads
        as zeros — an invalid pointer (block 0 is a superblock slot) —
        and treats as a torn tail, truncating cleanly.
        """
        new = self.disk.allocate()
        _pack_chain_header(self._tail_buf, new, self.capacity)
        self.disk.write(self.tail, bytes(self._tail_buf))
        self.tail = new
        self.tail_used = 0
        self._tail_buf = bytearray(self.disk.block_size)

    def _flush_tail(self):
        _pack_chain_header(self._tail_buf, NO_BLOCK, self.tail_used)
        self.disk.write(self.tail, bytes(self._tail_buf))

    def tail_position(self):
        """The current append position ``(block, payload offset)`` — the
        replay position a snapshot records."""
        with self.lock:
            return (self.tail, self.tail_used)

    def truncate_front(self, new_head):
        """Free every chain block before ``new_head`` (a snapshot just
        made them redundant)."""
        with self.lock:
            old_head, self.head = self.head, new_head
        return _free_chain(self.disk, old_head, stop=new_head)


class _ChainScan:
    """What reading one chain back yields."""

    __slots__ = ("records", "suspect", "chain", "cut_index", "cut_offset")

    def __init__(self):
        self.records = []
        self.suspect = False
        self.chain = []  # (block_no, used, payload[:used])
        self.cut_index = 0
        self.cut_offset = 0

    @property
    def kept_blocks(self):
        if self.suspect:
            return [b[0] for b in self.chain[: self.cut_index + 1]]
        return [b[0] for b in self.chain]


def _scan_chain(disk, head, start_offset=0):
    """Parse a chain's records; tolerant of every torn-tail shape.

    Any structural damage — unparsable pointer, clamped ``used``, bad
    record magic, CRC mismatch, record running past the stream — marks
    the scan *suspect* and computes the cut: the (block index, payload
    offset) where the clean record prefix ends.
    """
    scan = _ChainScan()
    capacity = disk.block_size - _CHAIN_HEADER.size
    block_no = head
    seen = set()
    while True:
        if block_no in seen or not (len(_SB_SLOTS) <= block_no < disk.n_blocks):
            scan.suspect = True
            break
        seen.add(block_no)
        raw = disk.read(block_no)
        nxt, used, header_ok = _parse_chain_header(raw)
        torn_header = not header_ok or used > capacity
        if torn_header:
            # A torn header's fields are garbage: believe neither the
            # forward pointer nor ``used`` — salvage what the record
            # CRCs can prove from the full payload area, follow nothing.
            used = capacity
            scan.suspect = True
        payload = raw[_CHAIN_HEADER.size: _CHAIN_HEADER.size + used]
        scan.chain.append((block_no, used, payload))
        if torn_header or nxt == NO_BLOCK:
            break
        block_no = nxt
    if not scan.chain:
        return scan  # head pointer itself unusable
    # Assemble the record stream and remember where each block's
    # contribution starts, to map the cut back to a block offset.
    stream = bytearray()
    starts = []
    for i, (_, _, payload) in enumerate(scan.chain):
        starts.append(len(stream))
        skip = start_offset if i == 0 else 0
        stream.extend(payload[skip:])
    pos = 0
    total = len(stream)
    while pos < total:
        if total - pos < _RECORD_HEAD.size:
            scan.suspect = True
            break
        magic, length, crc = _RECORD_HEAD.unpack_from(stream, pos)
        body = pos + _RECORD_HEAD.size
        if magic != _RECORD_MAGIC or total - body < length:
            scan.suspect = True
            break
        payload = bytes(stream[body: body + length])
        if _crc(payload) != crc:
            scan.suspect = True
            break
        scan.records.append(payload)
        pos = body + length
    # Cut: the latest block whose contribution starts at or before the
    # clean prefix's end.
    cut_index = 0
    for i, start in enumerate(starts):
        if start <= pos:
            cut_index = i
    scan.cut_index = cut_index
    scan.cut_offset = (pos - starts[cut_index]) + (
        start_offset if cut_index == 0 else 0
    )
    return scan


class _Reader:
    """Cursor over one record payload; raises ValueError when short."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf):
        self.buf = buf
        self.pos = 0

    def take(self, n):
        end = self.pos + n
        if end > len(self.buf):
            raise ValueError("record payload too short")
        out = self.buf[self.pos: end]
        self.pos = end
        return out

    def u8(self):
        return self.take(1)[0]

    def uint(self, n):
        return int.from_bytes(self.take(n), "big")


def _pack_secret(secret):
    """Secrets are ints (simple/XOR/commutative schemes) or bytes
    (encrypted scheme); tag so recovery restores the right type."""
    if isinstance(secret, bool) or not isinstance(
        secret, (int, bytes, bytearray)
    ):
        raise TypeError("cannot log secret of type %s" % type(secret).__name__)
    if isinstance(secret, int):
        raw = secret.to_bytes((secret.bit_length() + 7) // 8 or 1, "big")
        tag = 0
    else:
        raw = bytes(secret)
        tag = 1
    return bytes([tag]) + len(raw).to_bytes(2, "big") + raw


def _unpack_secret(reader):
    tag = reader.u8()
    raw = bytes(reader.take(reader.uint(2)))
    if tag == 0:
        return int.from_bytes(raw, "big")
    if tag == 1:
        return raw
    raise ValueError("unknown secret tag %d" % tag)


class DefaultCodec:
    """Data codec for the common primitive payloads.

    Servers storing richer objects supply their own codec (see
    ``DirectoryCodec`` in :mod:`repro.servers.directory`) — the store
    never pickles, so what lands on disk is an explicit, versionable
    format.
    """

    def encode(self, data):
        if data is None:
            return b"\x00"
        if isinstance(data, (bytes, bytearray)):
            return b"\x01" + bytes(data)
        if isinstance(data, str):
            return b"\x02" + data.encode("utf-8")
        if isinstance(data, bool):
            return b"\x04" + (b"\x01" if data else b"\x00")
        if isinstance(data, int):
            return b"\x03" + str(data).encode("ascii")
        raise TypeError(
            "DefaultCodec cannot encode %s; give the DurableStore a codec"
            % type(data).__name__
        )

    def decode(self, raw):
        if not raw:
            raise ValueError("empty data payload")
        tag, body = raw[0], raw[1:]
        if tag == 0:
            return None
        if tag == 1:
            return bytes(body)
        if tag == 2:
            return body.decode("utf-8")
        if tag == 3:
            return int(body.decode("ascii"))
        if tag == 4:
            return body == b"\x01"
        raise ValueError("unknown data tag %d" % tag)


class RecoveryReport:
    """What one :meth:`DurableStore.recover` pass found and rebuilt."""

    def __init__(self):
        self.entries_restored = 0
        self.records_replayed = 0
        self.suspect_stripes = []
        self.secrets_regenerated = 0
        #: (src, reply port value) -> packed reply bytes, from clean
        #: stripes only; ``ObjectServer.reboot()`` seeds its ReplyCache
        #: from these so retries straddling the crash replay instead of
        #: re-executing.
        self.commits = {}
        self.blocks_reclaimed = 0

    def as_dict(self):
        return {
            "entries_restored": self.entries_restored,
            "records_replayed": self.records_replayed,
            "suspect_stripes": list(self.suspect_stripes),
            "secrets_regenerated": self.secrets_regenerated,
            "commits": len(self.commits),
            "blocks_reclaimed": self.blocks_reclaimed,
        }

    def __repr__(self):
        return "RecoveryReport(%r)" % (self.as_dict(),)


class DurableStore:
    """Write-ahead log + snapshots for one object table, on one disk.

    Constructing on a blank disk *formats* it (reserving the two
    superblock slots); constructing on a disk that carries a valid
    superblock *attaches*, scanning every chain and holding the parsed
    state until :meth:`recover` replays it into a table — until then
    ``needs_recovery`` is True and ``ObjectServer.start()`` refuses to
    serve, so un-recovered state can never be silently overwritten.

    Concurrency contract: the table calls ``log_*`` under the owning
    stripe's lock (that ordering is what makes snapshot positions
    exact); :meth:`snapshot` takes each stripe lock briefly via
    ``ObjectTable.stripe_locked`` and never stops the world.
    """

    def __init__(self, disk=None, codec=None, shards=DEFAULT_SHARDS):
        self.disk = disk if disk is not None else VirtualDisk(4096)
        self.codec = codec if codec is not None else DefaultCodec()
        self._lock = threading.Lock()  # serializes snapshot + superblock
        self._dirty = threading.local()  # per-thread wrote-since-reply flag
        self.snapshots_taken = 0
        self.blocks_reclaimed = 0
        self._pending = None
        if self.disk.is_written(_SB_SLOTS[0]) or self.disk.is_written(
            _SB_SLOTS[1]
        ):
            self._attach()
        else:
            self._format(shards)

    # ------------------------------------------------------------------
    # format / attach
    # ------------------------------------------------------------------

    def _format(self, shards):
        if shards < 1 or shards > 255 or shards & (shards - 1):
            raise ValueError("shards must be a power of two in [1, 255]")
        # Two superblock slots, one log head per stripe, and at least a
        # little room for snapshot chains.
        if self.disk.n_blocks < len(_SB_SLOTS) + 2 * shards:
            raise ValueError(
                "disk too small: %d stripes need at least %d blocks"
                % (shards, len(_SB_SLOTS) + 2 * shards)
            )
        self.shards = shards
        for slot in _SB_SLOTS:
            self.disk.reserve(slot)
        self.epoch = 0
        self._logs = [StripeLog(self.disk) for _ in range(shards)]
        self._snapshots = [NO_BLOCK] * shards
        self._positions = [(log.head, 0) for log in self._logs]
        self.needs_recovery = False
        self._commit_superblock()

    def _attach(self):
        best = None
        for slot in _SB_SLOTS:
            parsed = self._read_superblock(slot)
            if parsed is not None and (best is None or parsed[0] > best[0]):
                best = parsed
        if best is None:
            raise DiskFault("no valid superblock on this disk")
        self.epoch, self.shards, stripes = best
        reachable = set(_SB_SLOTS)
        self._logs = []
        self._snapshots = []
        self._positions = []
        pending = []
        for snap_head, log_head, log_offset in stripes:
            suspect = False
            snap_records = []
            if snap_head != NO_BLOCK:
                snap_scan = _scan_chain(self.disk, snap_head)
                snap_records = snap_scan.records
                suspect |= snap_scan.suspect
                reachable.update(snap_scan.kept_blocks)
            scan = _scan_chain(self.disk, log_head, log_offset)
            suspect |= scan.suspect
            reachable.update(scan.kept_blocks)
            if scan.suspect and scan.chain:
                self._truncate_torn(scan)
            if scan.chain:
                tail_no, tail_used, _ = scan.chain[scan.cut_index]
                if scan.suspect:
                    tail_used = scan.cut_offset
                log = StripeLog(
                    self.disk, head=log_head, tail=tail_no, tail_used=tail_used
                )
            else:
                # The head block itself was unusable: start a fresh log.
                log = StripeLog(self.disk)
                log_head = log.head
                log_offset = 0
                reachable.add(log.head)
            self._logs.append(log)
            self._snapshots.append(snap_head)
            self._positions.append((log_head, log_offset))
            pending.append((snap_records, scan.records, suspect))
        # A power-failed snapshot can leave blocks allocated but linked
        # into nothing the superblock knows; reclaim them.
        leaked = self.disk.allocated_blocks() - reachable
        for block_no in sorted(leaked):
            self.disk.free(block_no)
        self.blocks_reclaimed = len(leaked)
        self._pending = pending
        self.needs_recovery = True

    def _truncate_torn(self, scan):
        """Rewrite the torn chain's last clean block (cleared forward
        pointer, clean prefix length) and free the damaged tail, so the
        next scan and future appends agree on where the log ends."""
        block_no, used, payload = scan.chain[scan.cut_index]
        buf = bytearray(self.disk.block_size)
        _pack_chain_header(buf, NO_BLOCK, scan.cut_offset)
        keep = payload[: scan.cut_offset]
        buf[_CHAIN_HEADER.size: _CHAIN_HEADER.size + len(keep)] = keep
        self.disk.write(block_no, bytes(buf))
        for doomed, _, _ in scan.chain[scan.cut_index + 1:]:
            self.disk.free(doomed)

    def _read_superblock(self, slot):
        raw = self.disk.read(slot)
        try:
            magic, version, shards, epoch, crc = _SB_HEAD.unpack_from(raw)
        except struct.error:
            return None
        if magic != _SB_MAGIC or version != _SB_VERSION:
            return None
        if shards < 1 or shards > 255 or shards & (shards - 1):
            return None
        length = _SB_HEAD.size + _SB_STRIPE.size * shards
        if length > len(raw):
            return None
        body = bytearray(raw[:length])
        body[_SB_HEAD.size - 4: _SB_HEAD.size] = b"\x00\x00\x00\x00"
        if _crc(bytes(body)) != crc:
            return None
        stripes = []
        offset = _SB_HEAD.size
        for _ in range(shards):
            stripes.append(_SB_STRIPE.unpack_from(raw, offset))
            offset += _SB_STRIPE.size
        return (epoch, shards, stripes)

    def _commit_superblock(self):
        self.epoch += 1
        body = bytearray(_SB_HEAD.size + _SB_STRIPE.size * self.shards)
        offset = _SB_HEAD.size
        for i in range(self.shards):
            pos_block, pos_offset = self._positions[i]
            _SB_STRIPE.pack_into(
                body, offset, self._snapshots[i], pos_block, pos_offset
            )
            offset += _SB_STRIPE.size
        _SB_HEAD.pack_into(
            body, 0, _SB_MAGIC, _SB_VERSION, self.shards, self.epoch, 0
        )
        crc = _crc(bytes(body))
        _SB_HEAD.pack_into(
            body, 0, _SB_MAGIC, _SB_VERSION, self.shards, self.epoch, crc
        )
        self.disk.write(_SB_SLOTS[self.epoch % 2], bytes(body))

    # ------------------------------------------------------------------
    # record payloads
    # ------------------------------------------------------------------

    def _entry_payload(self, entry):
        data_raw = self.codec.encode(entry.data)
        parts = [
            bytes([OP_ENTRY]),
            entry.number.to_bytes(3, "big"),
            entry.generation.to_bytes(4, "big"),
        ]
        if entry.lifetime is None:
            parts.append(b"\xff")
        else:
            parts.append(b"\x01" + int(entry.lifetime).to_bytes(4, "big"))
        parts.append(_pack_secret(entry.secret))
        parts.append(len(data_raw).to_bytes(4, "big"))
        parts.append(data_raw)
        return b"".join(parts)

    # ------------------------------------------------------------------
    # logging (callers hold the owning stripe's lock)
    # ------------------------------------------------------------------

    def log_create(self, shard_index, entry):
        self._dirty.flag = True
        self._logs[shard_index].append(self._entry_payload(entry))

    def log_update(self, shard_index, number, data):
        self._dirty.flag = True
        data_raw = self.codec.encode(data)
        self._logs[shard_index].append(
            bytes([OP_UPDATE])
            + number.to_bytes(3, "big")
            + len(data_raw).to_bytes(4, "big")
            + data_raw
        )

    def log_refresh(self, shard_index, number, secret, generation):
        self._dirty.flag = True
        self._logs[shard_index].append(
            bytes([OP_REFRESH])
            + number.to_bytes(3, "big")
            + generation.to_bytes(4, "big")
            + _pack_secret(secret)
        )

    def log_destroy(self, shard_index, number):
        self._dirty.flag = True
        self._logs[shard_index].append(
            bytes([OP_DESTROY]) + number.to_bytes(3, "big")
        )

    def consume_dirty(self):
        """True when *this thread* wrote durable state since the last
        call.  A handler runs start to finish on one thread, so the
        server's reply path uses this to log commit records only for
        requests that actually mutated the table — a pure read or echo
        is idempotent, safe to re-execute after a reboot, and pays no
        WAL write."""
        flag = getattr(self._dirty, "flag", False)
        if flag:
            self._dirty.flag = False
        return flag

    def log_commit(self, shard_index, src, reply_value, reply_raw):
        self._logs[shard_index].append(
            bytes([OP_COMMIT])
            + int(src).to_bytes(8, "big")
            + int(reply_value).to_bytes(6, "big")
            + len(reply_raw).to_bytes(4, "big")
            + bytes(reply_raw)
        )

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def snapshot(self, table):
        """Snapshot every stripe, one at a time — never stop-the-world."""
        for index in range(self.shards):
            self.snapshot_stripe(table, index)

    def snapshot_stripe(self, table, index):
        """Checkpoint one stripe and truncate its log.

        The entry encodings and the log's replay position are captured
        under a single stripe acquisition, so every record before the
        position is provably redundant with the snapshot; the position
        itself only becomes authoritative when the superblock commits,
        and the old blocks are freed strictly after that — a power
        failure at any instant leaves either the old complete state or
        the new complete state.
        """
        if self.needs_recovery:
            raise RuntimeError(
                "the store holds un-recovered state; a snapshot now "
                "would truncate logs that were never replayed — call "
                "recover() first"
            )
        if table.shard_count != self.shards:
            raise ValueError(
                "table has %d shards but the store was formatted with %d"
                % (table.shard_count, self.shards)
            )
        log = self._logs[index]

        def grab(entries):
            payloads = [self._entry_payload(e) for e in entries.values()]
            return payloads, log.tail_position()

        with self._lock:
            payloads, (pos_block, pos_offset) = table.stripe_locked(
                index, grab
            )
            if payloads:
                snap = StripeLog(self.disk)
                for payload in payloads:
                    snap.append(payload)
                new_head = snap.head
            else:
                new_head = NO_BLOCK
            old_snap = self._snapshots[index]
            self._snapshots[index] = new_head
            self._positions[index] = (pos_block, pos_offset)
            self._commit_superblock()
            if old_snap != NO_BLOCK:
                _free_chain(self.disk, old_snap)
            log.truncate_front(pos_block)
            self.snapshots_taken += 1

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(self, table, rng=None):
        """Replay the attached state into an (empty) object table.

        Returns a :class:`RecoveryReport`.  Suspect stripes keep their
        parsed record prefix but every restored entry gets a fresh
        secret and a bumped generation — outstanding capabilities for
        those objects fail check validation and must be refreshed, the
        conservative end of the paper's revocation policy.
        """
        if table.shard_count != self.shards:
            raise ValueError(
                "table has %d shards but the store was formatted with %d"
                % (table.shard_count, self.shards)
            )
        report = RecoveryReport()
        report.blocks_reclaimed = self.blocks_reclaimed
        pending, self._pending = self._pending, None
        self.needs_recovery = False
        if pending is None:
            return report
        rng = rng or RandomSource()
        scheme = table.scheme
        for index, (snap_records, log_records, suspect) in enumerate(pending):
            entries = {}
            commits = {}
            clean = True
            for payload in snap_records:
                clean &= self._apply_record(payload, entries, commits, report)
            for payload in log_records:
                clean &= self._apply_record(payload, entries, commits, report)
            if not clean:
                suspect = True
            if suspect:
                report.suspect_stripes.append(index)
                commits = {}
                for entry in entries.values():
                    entry.secret = scheme.new_secret(rng)
                    entry.generation += 1
                    entry.verified.clear()
                    report.secrets_regenerated += 1
            for entry in entries.values():
                table.restore_entry(entry)
            report.entries_restored += len(entries)
            report.commits.update(commits)
        return report

    def _apply_record(self, payload, entries, commits, report):
        """Apply one parsed record; False marks the stripe suspect (a
        CRC-clean record that still fails to decode means tampering or
        a codec mismatch — either way, re-key the stripe)."""
        try:
            reader = _Reader(payload)
            op = reader.u8()
            if op == OP_ENTRY:
                number = reader.uint(3)
                generation = reader.uint(4)
                lifetime_tag = reader.u8()
                lifetime = None
                if lifetime_tag == 0x01:
                    lifetime = reader.uint(4)
                elif lifetime_tag != 0xFF:
                    raise ValueError("bad lifetime tag")
                secret = _unpack_secret(reader)
                data = self.codec.decode(bytes(reader.take(reader.uint(4))))
                entries[number] = ObjectEntry(
                    number=number,
                    secret=secret,
                    data=data,
                    generation=generation,
                    lifetime=lifetime,
                )
            elif op == OP_REFRESH:
                number = reader.uint(3)
                generation = reader.uint(4)
                secret = _unpack_secret(reader)
                entry = entries.get(number)
                if entry is not None:
                    entry.secret = secret
                    entry.generation = generation
                    entry.verified.clear()
            elif op == OP_DESTROY:
                entries.pop(reader.uint(3), None)
            elif op == OP_UPDATE:
                number = reader.uint(3)
                data = self.codec.decode(bytes(reader.take(reader.uint(4))))
                entry = entries.get(number)
                if entry is not None:
                    entry.data = data
            elif op == OP_COMMIT:
                src = reader.uint(8)
                reply_value = reader.uint(6)
                commits[(src, reply_value)] = bytes(
                    reader.take(reader.uint(4))
                )
            else:
                raise ValueError("unknown record op %d" % op)
        except (ValueError, TypeError, OverflowError):
            return False
        report.records_replayed += 1
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self):
        """Store counters (stable keys for the benchmarks)."""
        return {
            "shards": self.shards,
            "epoch": self.epoch,
            "records_appended": sum(
                log.records_appended for log in self._logs
            ),
            "snapshots_taken": self.snapshots_taken,
            "disk_writes": self.disk.writes,
            "disk_reads": self.disk.reads,
            "used_blocks": self.disk.used_blocks,
            "blocks_reclaimed": self.blocks_reclaimed,
        }

    def __repr__(self):
        return "DurableStore(shards=%d, epoch=%d, %r)" % (
            self.shards, self.epoch, self.disk,
        )
