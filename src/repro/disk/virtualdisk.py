"""A simulated raw disk: numbered blocks, allocation, write-once media.

The paper's storage servers sit on real disks (and, for the multiversion
file server, on video disks and "other write-once media").  This module is
the laptop-scale substitute: an in-memory array of fixed-size blocks with
an allocation bitmap, read/write counters for the benchmarks, and an
optional write-once mode in which a block, once written, can never be
rewritten (and never freed), matching §3.5's constraint that committed
pages are immutable.
"""

from repro.errors import OutOfSpace, WriteOnceViolation

#: Default block geometry: 1986-plausible 512-byte sectors.
DEFAULT_BLOCK_SIZE = 512


class VirtualDisk:
    """An array of ``n_blocks`` blocks of ``block_size`` bytes each."""

    def __init__(self, n_blocks, block_size=DEFAULT_BLOCK_SIZE, write_once=False):
        if n_blocks < 1:
            raise ValueError("disk needs at least one block")
        if block_size < 1:
            raise ValueError("block size must be positive")
        self.n_blocks = n_blocks
        self.block_size = block_size
        self.write_once = write_once
        self._blocks = {}
        self._free = list(range(n_blocks - 1, -1, -1))
        self._written = set()
        #: I/O counters for the benchmarks.
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    @property
    def free_blocks(self):
        return len(self._free)

    @property
    def used_blocks(self):
        return self.n_blocks - len(self._free)

    def allocate(self):
        """Reserve a free block and return its number."""
        if not self._free:
            raise OutOfSpace("disk full: all %d blocks in use" % self.n_blocks)
        return self._free.pop()

    def free(self, block_no):
        """Return a block to the free pool (never allowed on write-once
        media — the bits are physically burnt)."""
        self._check_block_no(block_no)
        if self.write_once and block_no in self._written:
            raise WriteOnceViolation(
                "block %d is burnt into write-once media" % block_no
            )
        self._blocks.pop(block_no, None)
        self._written.discard(block_no)
        self._free.append(block_no)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------

    def read(self, block_no):
        """Read a whole block (unwritten blocks read as zeros)."""
        self._check_block_no(block_no)
        self.reads += 1
        data = self._blocks.get(block_no)
        if data is None:
            return bytes(self.block_size)
        return bytes(data)

    def write(self, block_no, data):
        """Write a whole block, zero-padding short data."""
        self._check_block_no(block_no)
        if len(data) > self.block_size:
            raise ValueError(
                "%d bytes exceed the %d-byte block" % (len(data), self.block_size)
            )
        if self.write_once and block_no in self._written:
            raise WriteOnceViolation(
                "block %d on write-once media is already written" % block_no
            )
        self.writes += 1
        padded = bytes(data) + bytes(self.block_size - len(data))
        self._blocks[block_no] = padded
        self._written.add(block_no)

    def is_written(self, block_no):
        self._check_block_no(block_no)
        return block_no in self._written

    def _check_block_no(self, block_no):
        if not 0 <= block_no < self.n_blocks:
            raise ValueError(
                "block %d outside disk of %d blocks" % (block_no, self.n_blocks)
            )

    def __repr__(self):
        return "VirtualDisk(%d/%d blocks used, %d-byte blocks%s)" % (
            self.used_blocks,
            self.n_blocks,
            self.block_size,
            ", write-once" if self.write_once else "",
        )
