"""A simulated raw disk: numbered blocks, allocation, write-once media.

The paper's storage servers sit on real disks (and, for the multiversion
file server, on video disks and "other write-once media").  This module is
the laptop-scale substitute: an in-memory array of fixed-size blocks with
an allocation bitmap, read/write counters for the benchmarks, and an
optional write-once mode in which a block, once written, can never be
rewritten (and never freed), matching §3.5's constraint that committed
pages are immutable.

Thread safety: every public operation takes one internal lock, because
the write-ahead log (:mod:`repro.disk.wal`) appends from an
``ObjectServer(workers=N)`` pool — allocation, the I/O counters, and the
block map must not race.  The lock is never held across anything but
dict/list work, so it costs one uncontended acquisition per call.

Fault injection: a :class:`~repro.disk.diskfaults.DiskFaultPlan` passed
as ``faults`` intercepts every write — it can tear it (a prefix lands,
the tail keeps the old bits), lose it entirely (the device acks, the
medium never changes), or declare a power failure, after which every
write raises :class:`~repro.errors.PowerFailure` until ``revive()``.
Reads are never faulted: the recovery story this feeds is about what a
*crash during writing* leaves behind, not flaky media.
"""

import threading

from repro.errors import OutOfSpace, WriteOnceViolation

#: Default block geometry: 1986-plausible 512-byte sectors.
DEFAULT_BLOCK_SIZE = 512


class VirtualDisk:
    """An array of ``n_blocks`` blocks of ``block_size`` bytes each."""

    def __init__(
        self, n_blocks, block_size=DEFAULT_BLOCK_SIZE, write_once=False,
        faults=None,
    ):
        if n_blocks < 1:
            raise ValueError("disk needs at least one block")
        if block_size < 1:
            raise ValueError("block size must be positive")
        self.n_blocks = n_blocks
        self.block_size = block_size
        self.write_once = write_once
        #: Optional :class:`~repro.disk.diskfaults.DiskFaultPlan`; may
        #: also be assigned after construction (tests arm faults only
        #: for the phase under study).
        self.faults = faults
        self._blocks = {}
        self._free = list(range(n_blocks - 1, -1, -1))
        #: Blocks currently handed out by allocate()/reserve().  A block
        #: must be in exactly one of ``_free``/``_allocated``; free()
        #: enforces it, so a double free (or freeing a block that was
        #: never allocated) can no longer put one block in two owners'
        #: hands.
        self._allocated = set()
        self._written = set()
        self._lock = threading.Lock()
        #: I/O counters for the benchmarks.
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    @property
    def free_blocks(self):
        return len(self._free)

    @property
    def used_blocks(self):
        return self.n_blocks - len(self._free)

    def allocate(self):
        """Reserve a free block and return its number."""
        with self._lock:
            if not self._free:
                raise OutOfSpace(
                    "disk full: all %d blocks in use" % self.n_blocks
                )
            block_no = self._free.pop()
            self._allocated.add(block_no)
            return block_no

    def reserve(self, block_no):
        """Claim a *specific* free block (fixed on-disk locations like a
        superblock).  Raises if it is already allocated."""
        self._check_block_no(block_no)
        with self._lock:
            if block_no in self._allocated:
                raise ValueError("block %d is already allocated" % block_no)
            self._free.remove(block_no)
            self._allocated.add(block_no)
            return block_no

    def free(self, block_no):
        """Return a block to the free pool (never allowed on write-once
        media — the bits are physically burnt).

        Raises ``ValueError`` on a double free or on freeing a block that
        was never allocated: either would push the number onto the free
        list twice and hand the same block to two owners.
        """
        self._check_block_no(block_no)
        with self._lock:
            if self.write_once and block_no in self._written:
                raise WriteOnceViolation(
                    "block %d is burnt into write-once media" % block_no
                )
            if block_no not in self._allocated:
                raise ValueError(
                    "freeing block %d, which is not allocated "
                    "(double free or never allocated)" % block_no
                )
            self._allocated.discard(block_no)
            self._blocks.pop(block_no, None)
            self._written.discard(block_no)
            self._free.append(block_no)

    def allocated_blocks(self):
        """Snapshot of the currently allocated block numbers (recovery
        uses this to reclaim blocks a crashed writer allocated but never
        linked into any on-disk structure)."""
        with self._lock:
            return frozenset(self._allocated)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------

    def read(self, block_no):
        """Read a whole block (unwritten blocks read as zeros)."""
        self._check_block_no(block_no)
        with self._lock:
            self.reads += 1
            data = self._blocks.get(block_no)
        if data is None:
            return bytes(self.block_size)
        return bytes(data)

    def write(self, block_no, data):
        """Write a whole block, zero-padding short data.

        With a fault plan armed, the write may be torn (prefix new, tail
        old), silently lost (acked but the medium unchanged), or may
        raise :class:`~repro.errors.PowerFailure`.
        """
        self._check_block_no(block_no)
        if len(data) > self.block_size:
            raise ValueError(
                "%d bytes exceed the %d-byte block" % (len(data), self.block_size)
            )
        padded = bytes(data) + bytes(self.block_size - len(data))
        with self._lock:
            if self.write_once and block_no in self._written:
                raise WriteOnceViolation(
                    "block %d on write-once media is already written" % block_no
                )
            if self.faults is not None:
                # May raise PowerFailure — in which case the device never
                # acked and the counters stay untouched.
                padded = self.faults.apply_write(
                    block_no, padded, self._blocks.get(block_no)
                )
                if padded is None:  # lost write: acked, medium unchanged
                    self.writes += 1
                    return
            self.writes += 1
            self._blocks[block_no] = padded
            self._written.add(block_no)

    def is_written(self, block_no):
        self._check_block_no(block_no)
        with self._lock:
            return block_no in self._written

    def _check_block_no(self, block_no):
        if not 0 <= block_no < self.n_blocks:
            raise ValueError(
                "block %d outside disk of %d blocks" % (block_no, self.n_blocks)
            )

    def __repr__(self):
        return "VirtualDisk(%d/%d blocks used, %d-byte blocks%s)" % (
            self.used_blocks,
            self.n_blocks,
            self.block_size,
            ", write-once" if self.write_once else "",
        )
