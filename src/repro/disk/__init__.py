"""Storage substrate: the virtual disk behind the §3 storage servers,
plus the write-ahead log / snapshot store and disk fault injection that
give object tables a life across reboots."""

from repro.disk.diskfaults import DiskFaultPlan
from repro.disk.virtualdisk import VirtualDisk
from repro.disk.wal import DurableStore, RecoveryReport, StripeLog

__all__ = [
    "VirtualDisk",
    "DiskFaultPlan",
    "DurableStore",
    "RecoveryReport",
    "StripeLog",
]
