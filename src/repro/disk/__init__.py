"""Storage substrate: the virtual disk behind the §3 storage servers."""

from repro.disk.virtualdisk import VirtualDisk

__all__ = ["VirtualDisk"]
