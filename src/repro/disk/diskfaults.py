"""Deterministic disk fault injection: torn writes, lost writes, power loss.

The network side has :mod:`repro.net.faults`; this is the same idea for
the storage side, so the write-ahead log's recovery path
(:mod:`repro.disk.wal`) is tested against the crashes real disks
actually produce rather than against clean shutdowns.  A
:class:`DiskFaultPlan` is a *seeded, reproducible* fault schedule:
per-write decisions drawn from one private ``random.Random(seed)`` in
write order, so the same seed over the same I/O stream produces the
same faults on any host — the property that lets the recovery benchmark
keep the DES determinism-by-double-run contract with disk faults armed.

Fault semantics
---------------
* **torn write** — the write is interrupted partway through the sector:
  a seeded-length *prefix* of the new bytes lands, the tail keeps the
  old contents (zeros for a never-written block).  The device acks.
  This is what the WAL's per-record CRC exists to catch.
* **lost write** — the device acks but the medium never changes (a
  volatile write cache that never flushed).  Deliberately *undetectable*
  by checksums: the surviving log is shorter but internally clean, and
  recovery yields a consistent-but-older state.
* **power failure** — after ``power_fail_after`` acked writes, the next
  write raises :class:`~repro.errors.PowerFailure` and the disk stays
  dead (every later write raises too) until :meth:`revive` — modelling
  the machine going dark mid-snapshot, the worst case for a
  truncate-after-checkpoint protocol.

Targeted faults: ``torn_at``/``lost_at`` name exact write ordinals
(0-based, counting every write through the plan), so a test can tear
precisely the superblock commit or lose precisely a transaction's
commit record instead of fishing with probabilities.
"""

import random
import threading

from repro.errors import PowerFailure

__all__ = ["DiskFaultPlan"]


class DiskFaultPlan:
    """One seeded fault schedule shared by a disk's writes.

    Thread-safe: decisions are serialized under a lock (WAL appends
    arrive from worker-pool threads).  Determinism holds whenever the
    *write order* is deterministic — true under the single-threaded
    simulators and asserted by the recovery benchmark's double run.
    """

    def __init__(self, seed=0, torn=0.0, lost=0.0, power_fail_after=None,
                 torn_at=(), lost_at=()):
        for name, p in (("torn", torn), ("lost", lost)):
            if not 0.0 <= p <= 1.0:
                raise ValueError("%s probability %r outside [0, 1]" % (name, p))
        if power_fail_after is not None and power_fail_after < 0:
            raise ValueError("power_fail_after cannot be negative")
        self.seed = seed
        self.torn = torn
        self.lost = lost
        self.power_fail_after = power_fail_after
        self.torn_at = set(torn_at)
        self.lost_at = set(lost_at)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.reset_stats()

    def reset_stats(self):
        self.writes_seen = 0
        self.torn_writes = 0
        self.lost_writes = 0
        self.failed = False

    @property
    def silent(self):
        """True when this plan can never fire (skip all RNG draws)."""
        return not (self.torn or self.lost or self.torn_at or self.lost_at
                    or self.power_fail_after is not None or self.failed)

    def apply_write(self, block_no, new, old):
        """Decide one write's fate; called by ``VirtualDisk.write`` with
        the padded new contents and the block's current contents (None
        for a never-written block).

        Returns the bytes that actually reach the medium, or ``None``
        for a lost write (acked, medium unchanged).  Raises
        :class:`~repro.errors.PowerFailure` when the power budget is
        exhausted — the failed write never acked.
        """
        with self._lock:
            if self.failed:
                raise PowerFailure("the machine is powered off")
            index = self.writes_seen
            if (self.power_fail_after is not None
                    and index >= self.power_fail_after):
                self.failed = True
                raise PowerFailure(
                    "power lost on write %d (block %d)" % (index, block_no)
                )
            self.writes_seen = index + 1
            # Draw both probabilities unconditionally (when armed) so the
            # decision stream depends only on the plan's configuration
            # and the write order, never on which faults happened to hit.
            torn = self.torn > 0 and self._rng.random() < self.torn
            lost = self.lost > 0 and self._rng.random() < self.lost
            if index in self.torn_at:
                torn = True
            if index in self.lost_at:
                lost = True
            if lost:
                self.lost_writes += 1
                return None
            if torn:
                self.torn_writes += 1
                base = old if old is not None else bytes(len(new))
                # Tear inside the sector: at least one new byte lands,
                # at least one old byte survives.
                cut = 1 + self._rng.randrange(len(new) - 1) if len(new) > 1 else 1
                return new[:cut] + base[cut:]
            return new

    def revive(self):
        """Power back on: writes flow again (the power budget is spent)."""
        with self._lock:
            self.failed = False
            self.power_fail_after = None

    def stats(self):
        """Counters as a dict (stable keys for the benchmarks)."""
        with self._lock:
            return {
                "writes_seen": self.writes_seen,
                "torn_writes": self.torn_writes,
                "lost_writes": self.lost_writes,
                "powered_off": self.failed,
            }

    def __repr__(self):
        return ("DiskFaultPlan(seed=%r, torn=%g, lost=%g, "
                "power_fail_after=%r)" % (
                    self.seed, self.torn, self.lost, self.power_fail_after))
