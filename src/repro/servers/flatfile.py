"""The flat file server (§3.3): linear byte sequences, no open state.

"The flat file server provides its clients with files consisting of a
linear sequence of bytes ... The server does not have any concept of an
'open' file.  One can operate on any file for which a valid capability
can be presented."

Two storage backends exist:

* an in-memory store (the default) for speed, and
* a *block-server* store, which makes the flat file server itself a
  client of a :class:`~repro.servers.block.BlockServer` — the §3.2
  modular stack, with file bytes striped over capability-named blocks.
"""

from repro.core.rights import Rights
from repro.errors import BadRequest
from repro.ipc.client import ServiceClient
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE

R_READ = 0x01
R_WRITE = 0x02

FILE_CREATE = USER_BASE + 0
FILE_READ = USER_BASE + 1
FILE_WRITE = USER_BASE + 2
FILE_SIZE = USER_BASE + 3

#: Largest single transfer, keeping messages datagram-sized.
MAX_TRANSFER = 48 * 1024


class MemoryFile:
    """A file as a growable byte array."""

    def __init__(self, initial=b""):
        self.content = bytearray(initial)

    @property
    def size(self):
        return len(self.content)

    def read(self, offset, length):
        if offset < 0 or length < 0:
            raise BadRequest("negative offset or length")
        return bytes(self.content[offset:offset + length])

    def write(self, offset, data):
        if offset < 0:
            raise BadRequest("negative offset")
        end = offset + len(data)
        if end > len(self.content):
            self.content.extend(bytes(end - len(self.content)))
        self.content[offset:end] = data

    def release(self):
        self.content = bytearray()


class BlockFile:
    """A file striped over block-server blocks, fetched by capability.

    The flat file server holds the block capabilities; clients of the
    file server never see them — layering exactly as §3.2 intends.
    """

    def __init__(self, block_client):
        self._blocks = []  # block capabilities, in file order
        self._client = block_client
        self._block_size = None
        self.size = 0

    def _ensure_block(self, index):
        while len(self._blocks) <= index:
            cap, block_size = self._client.alloc()
            self._block_size = block_size
            self._blocks.append(cap)
        return self._blocks[index]

    def _geometry(self):
        if self._block_size is None:
            cap, block_size = self._client.alloc()
            self._block_size = block_size
            self._blocks.append(cap)
        return self._block_size

    def read(self, offset, length):
        if offset < 0 or length < 0:
            raise BadRequest("negative offset or length")
        length = max(0, min(length, self.size - offset))
        if length == 0:
            return b""
        block_size = self._geometry()
        out = bytearray()
        position = offset
        while position < offset + length:
            index, within = divmod(position, block_size)
            chunk = self._client.read(self._blocks[index])
            take = min(block_size - within, offset + length - position)
            out.extend(chunk[within:within + take])
            position += take
        return bytes(out)

    def write(self, offset, data):
        if offset < 0:
            raise BadRequest("negative offset")
        block_size = self._geometry()
        position = offset
        remaining = memoryview(bytes(data))
        while remaining:
            index, within = divmod(position, block_size)
            cap = self._ensure_block(index)
            take = min(block_size - within, len(remaining))
            if within == 0 and take == block_size:
                new_block = bytes(remaining[:take])
            else:
                current = bytearray(self._client.read(cap))
                current[within:within + take] = remaining[:take]
                new_block = bytes(current)
            self._client.write(cap, new_block)
            position += take
            remaining = remaining[take:]
        self.size = max(self.size, offset + len(data))

    def release(self):
        for cap in self._blocks:
            self._client.free(cap)
        self._blocks = []
        self.size = 0

    @property
    def block_count(self):
        return len(self._blocks)


class FlatFileServer(ObjectServer):
    """CREATE / READ / WRITE / DESTROY over linear byte files."""

    service_name = "flat file server"

    def __init__(self, node, block_client=None, **kwargs):
        super().__init__(node, **kwargs)
        #: When set, files live on the block server behind this client.
        self.block_client = block_client

    def _new_file(self, initial):
        if self.block_client is None:
            return MemoryFile(initial)
        f = BlockFile(self.block_client)
        if initial:
            f.write(0, initial)
        return f

    @command(FILE_CREATE)
    def _create(self, ctx):
        """CREATE FILE with optional initial contents."""
        if len(ctx.request.data) > MAX_TRANSFER:
            raise BadRequest("initial contents exceed %d bytes" % MAX_TRANSFER)
        f = self._new_file(ctx.request.data)
        cap = self.table.create(f)
        return ctx.ok(capability=cap)

    @command(FILE_READ)
    def _read(self, ctx):
        """READ FILE at the position given by the offset parameter."""
        entry, _ = ctx.lookup(Rights(R_READ))
        if ctx.request.size > MAX_TRANSFER:
            raise BadRequest("transfer larger than %d bytes" % MAX_TRANSFER)
        data = entry.data.read(ctx.request.offset, ctx.request.size)
        return ctx.ok(data=data)

    @command(FILE_WRITE)
    def _write(self, ctx):
        """WRITE FILE at the position given by the offset parameter."""
        entry, _ = ctx.lookup(Rights(R_WRITE))
        if len(ctx.request.data) > MAX_TRANSFER:
            raise BadRequest("transfer larger than %d bytes" % MAX_TRANSFER)
        entry.data.write(ctx.request.offset, ctx.request.data)
        return ctx.ok(size=entry.data.size)

    @command(FILE_SIZE)
    def _size(self, ctx):
        entry, _ = ctx.lookup(Rights(R_READ))
        return ctx.ok(size=entry.data.size)

    def on_destroy(self, entry):
        entry.data.release()

    def describe(self, entry):
        return "flat file of %d bytes" % entry.data.size


class FlatFileClient(ServiceClient):
    """Typed client for the flat file server."""

    def create(self, initial=b""):
        """CREATE FILE; returns the file capability."""
        return self.call(FILE_CREATE, data=initial).capability

    def read(self, file_cap, offset=0, size=MAX_TRANSFER):
        """READ FILE; short reads happen at end of file."""
        return self.call(
            FILE_READ, capability=file_cap, offset=offset, size=size
        ).data

    def write(self, file_cap, offset, data):
        """WRITE FILE; returns the file size afterwards."""
        return self.call(
            FILE_WRITE, capability=file_cap, offset=offset, data=data
        ).size

    def size(self, file_cap):
        return self.call(FILE_SIZE, capability=file_cap).size

    def read_all(self, file_cap):
        """Read a whole file regardless of size, chunk by chunk."""
        out = bytearray()
        size = self.size(file_cap)
        offset = 0
        while offset < size:
            chunk = self.read(file_cap, offset, min(MAX_TRANSFER, size - offset))
            if not chunk:
                break
            out.extend(chunk)
            offset += len(chunk)
        return bytes(out)
