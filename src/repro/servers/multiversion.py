"""The multiversion file server (§3.5): tree-of-pages, COW, atomic commit.

"Each file consists of a tree of pages ... a user can ask to make a new
version of a file, which results in a capability for the new version.
The new version acts like it is a page-by-page copy of the original,
although in fact, pages are only copied when they are changed.  The new
version can be modified at will, and then atomically 'committed', thus
becoming the new file.  A file is thus a sequence of versions.  Once a
version of a file has been committed, it cannot be modified."

Commit is *optimistic* (the design comes from Mullender & Tanenbaum's
1982 optimistic-concurrency file server): a version records which
committed version it was derived from, and commit fails with
:class:`VersionConflict` if the file has moved on — the loser re-derives
and retries.  Pages live on a :class:`~repro.disk.virtualdisk.VirtualDisk`
that may be write-once ("designed for use with video disks and other
'write once' media"): copy-on-write never rewrites a page in place, so
the scheme runs unchanged on burnt media.
"""

from repro.core.rights import Rights
from repro.disk.virtualdisk import VirtualDisk
from repro.errors import (
    BadRequest,
    VersionConflict,
    VersionImmutable,
)
from repro.ipc.client import ServiceClient
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE

R_READ = 0x01
R_WRITE = 0x02

MV_CREATE = USER_BASE + 0
MV_NEW_VERSION = USER_BASE + 1
MV_READ = USER_BASE + 2
MV_WRITE = USER_BASE + 3
MV_COMMIT = USER_BASE + 4
MV_ABORT = USER_BASE + 5
MV_NVERSIONS = USER_BASE + 6
MV_READ_SEQ = USER_BASE + 7

MAX_TRANSFER = 48 * 1024


class MVFile:
    """A file: the append-only sequence of committed versions.

    Each version is a page table — a list of disk block numbers (``None``
    for never-written holes, which read as zeros).
    """

    def __init__(self):
        self.versions = [([], 0)]  # (page table, byte size); seq 0 is empty

    @property
    def latest_seq(self):
        return len(self.versions) - 1

    def version(self, seq):
        if not 0 <= seq < len(self.versions):
            raise BadRequest(
                "version %d outside history of %d versions"
                % (seq, len(self.versions))
            )
        return self.versions[seq]


class MVVersion:
    """An uncommitted working version derived from a committed one."""

    def __init__(self, file_number, base_seq, pages, size):
        self.file_number = file_number
        self.base_seq = base_seq
        self.pages = list(pages)
        self.size = size
        self.committed_as = None  # seq once committed
        self.aborted = False

    @property
    def is_open(self):
        return self.committed_as is None and not self.aborted


class MultiversionFileServer(ObjectServer):
    """Versioned tree-of-pages files with optimistic atomic commit."""

    service_name = "multiversion file server"

    def __init__(self, node, disk=None, **kwargs):
        super().__init__(node, **kwargs)
        self.disk = disk or VirtualDisk(n_blocks=8192)
        self._refcounts = {}
        #: COW effectiveness counters for the benchmarks.
        self.pages_copied = 0
        self.pages_shared = 0

    # ------------------------------------------------------------------
    # page bookkeeping
    # ------------------------------------------------------------------

    def _ref(self, block_no):
        if block_no is not None:
            self._refcounts[block_no] = self._refcounts.get(block_no, 0) + 1

    def _unref(self, block_no):
        if block_no is None:
            return
        count = self._refcounts.get(block_no, 0) - 1
        if count > 0:
            self._refcounts[block_no] = count
            return
        self._refcounts.pop(block_no, None)
        if not self.disk.write_once:
            self.disk.free(block_no)

    def _write_page(self, content):
        block_no = self.disk.allocate()
        self.disk.write(block_no, content)
        self._refcounts[block_no] = 1
        return block_no

    def _read_page(self, block_no):
        if block_no is None:
            return bytes(self.disk.block_size)
        return self.disk.read(block_no)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    @command(MV_CREATE)
    def _create(self, ctx):
        """Create a file whose version 0 is empty and committed."""
        cap = self.table.create(MVFile())
        return ctx.ok(capability=cap)

    @command(MV_NEW_VERSION)
    def _new_version(self, ctx):
        """Branch a working version off the latest committed version.

        No pages are copied — the new page table references the committed
        blocks, and the reference counts record the sharing.
        """
        entry, _ = ctx.lookup(Rights(R_WRITE))
        mvfile = self._as_file(entry)
        pages, size = mvfile.version(mvfile.latest_seq)
        for block in pages:
            self._ref(block)
            if block is not None:
                self.pages_shared += 1
        version = MVVersion(entry.number, mvfile.latest_seq, pages, size)
        cap = self.table.create(version)
        return ctx.ok(capability=cap, size=mvfile.latest_seq)

    @command(MV_READ)
    def _read(self, ctx):
        """Read from the latest committed version (file capability) or
        from a working version (version capability)."""
        entry, _ = ctx.lookup(Rights(R_READ))
        if isinstance(entry.data, MVFile):
            pages, size = entry.data.version(entry.data.latest_seq)
        elif isinstance(entry.data, MVVersion):
            pages, size = entry.data.pages, entry.data.size
        else:
            raise BadRequest("object %d is not a file or version" % entry.number)
        data = self._read_range(pages, size, ctx.request.offset, ctx.request.size)
        return ctx.ok(data=data)

    @command(MV_READ_SEQ)
    def _read_seq(self, ctx):
        """Read any historical committed version: seq in the size field,
        transfer length as a 4-byte big-endian integer in data."""
        entry, _ = ctx.lookup(Rights(R_READ))
        mvfile = self._as_file(entry)
        if len(ctx.request.data) != 4:
            raise BadRequest("READ_SEQ needs a 4-byte length in the data field")
        length = int.from_bytes(ctx.request.data, "big")
        pages, size = mvfile.version(ctx.request.size)
        data = self._read_range(pages, size, ctx.request.offset, length)
        return ctx.ok(data=data)

    @command(MV_WRITE)
    def _write(self, ctx):
        """Write to an *uncommitted* version; shared pages copy on write."""
        entry, _ = ctx.lookup(Rights(R_WRITE))
        version = self._as_version(entry)
        if not version.is_open:
            raise VersionImmutable(
                "version is %s and can no longer be modified"
                % ("committed" if version.committed_as is not None else "aborted")
            )
        offset, data = ctx.request.offset, ctx.request.data
        if len(data) > MAX_TRANSFER:
            raise BadRequest("transfer larger than %d bytes" % MAX_TRANSFER)
        if offset < 0:
            raise BadRequest("negative offset")
        page_size = self.disk.block_size
        end = offset + len(data)
        while len(version.pages) * page_size < end:
            version.pages.append(None)
        position = offset
        remaining = memoryview(bytes(data))
        while remaining:
            index, within = divmod(position, page_size)
            take = min(page_size - within, len(remaining))
            old_block = version.pages[index]
            if within == 0 and take == page_size:
                content = bytes(remaining[:take])
            else:
                page = bytearray(self._read_page(old_block))
                page[within:within + take] = remaining[:take]
                content = bytes(page)
            # Copy on write: never touch the old block, which may be
            # shared with committed versions (or burnt into the media).
            version.pages[index] = self._write_page(content)
            if old_block is not None:
                self.pages_copied += 1
            self._unref(old_block)
            position += take
            remaining = remaining[take:]
        version.size = max(version.size, end)
        return ctx.ok(size=version.size)

    @command(MV_COMMIT)
    def _commit(self, ctx):
        """Atomically make the working version the file's newest version.

        Optimistic concurrency: fails with :class:`VersionConflict` when
        some other version committed since this one was derived.
        """
        entry, _ = ctx.lookup(Rights(R_WRITE))
        version = self._as_version(entry)
        if not version.is_open:
            raise VersionImmutable("version already committed or aborted")
        mvfile_entry = self.table._entry(version.file_number)
        mvfile = mvfile_entry.data
        if mvfile.latest_seq != version.base_seq:
            raise VersionConflict(
                "file advanced to version %d while this one was derived "
                "from %d" % (mvfile.latest_seq, version.base_seq)
            )
        mvfile.versions.append((list(version.pages), version.size))
        version.committed_as = mvfile.latest_seq
        # Ownership of the page references passes to the file; the
        # version object keeps reading through its (now frozen) table.
        return ctx.ok(size=version.committed_as)

    @command(MV_ABORT)
    def _abort(self, ctx):
        """Discard a working version, releasing its private pages."""
        entry, _ = ctx.lookup(Rights(R_WRITE))
        version = self._as_version(entry)
        if not version.is_open:
            raise VersionImmutable("version already committed or aborted")
        for block in version.pages:
            self._unref(block)
        version.aborted = True
        version.pages = []
        version.size = 0
        return ctx.ok()

    @command(MV_NVERSIONS)
    def _n_versions(self, ctx):
        entry, _ = ctx.lookup(Rights(R_READ))
        mvfile = self._as_file(entry)
        return ctx.ok(size=len(mvfile.versions))

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _read_range(self, pages, size, offset, length):
        if offset < 0 or length < 0:
            raise BadRequest("negative offset or length")
        if length > MAX_TRANSFER:
            raise BadRequest("transfer larger than %d bytes" % MAX_TRANSFER)
        length = max(0, min(length, size - offset))
        if length == 0:
            return b""
        page_size = self.disk.block_size
        out = bytearray()
        position = offset
        while position < offset + length:
            index, within = divmod(position, page_size)
            block = pages[index] if index < len(pages) else None
            page = self._read_page(block)
            take = min(page_size - within, offset + length - position)
            out.extend(page[within:within + take])
            position += take
        return bytes(out)

    @staticmethod
    def _as_file(entry):
        if not isinstance(entry.data, MVFile):
            raise BadRequest("object %d is not a multiversion file" % entry.number)
        return entry.data

    @staticmethod
    def _as_version(entry):
        if not isinstance(entry.data, MVVersion):
            raise BadRequest("object %d is not a version" % entry.number)
        return entry.data

    def on_destroy(self, entry):
        if isinstance(entry.data, MVFile):
            for pages, _ in entry.data.versions:
                for block in pages:
                    self._unref(block)
        elif isinstance(entry.data, MVVersion) and entry.data.is_open:
            for block in entry.data.pages:
                self._unref(block)

    def describe(self, entry):
        if isinstance(entry.data, MVFile):
            return "multiversion file, %d committed versions" % len(
                entry.data.versions
            )
        if isinstance(entry.data, MVVersion):
            state = (
                "open"
                if entry.data.is_open
                else ("committed" if entry.data.committed_as is not None else "aborted")
            )
            return "working version (base %d, %s)" % (entry.data.base_seq, state)
        return super().describe(entry)


class MultiversionClient(ServiceClient):
    """Typed client for the multiversion file server."""

    def create_file(self):
        return self.call(MV_CREATE).capability

    def new_version(self, file_cap):
        """Branch a working version; returns ``(version_cap, base_seq)``."""
        reply = self.call(MV_NEW_VERSION, capability=file_cap)
        return reply.capability, reply.size

    def read(self, cap, offset=0, size=MAX_TRANSFER):
        return self.call(MV_READ, capability=cap, offset=offset, size=size).data

    def read_version(self, file_cap, seq, offset=0, length=MAX_TRANSFER):
        return self.call(
            MV_READ_SEQ,
            capability=file_cap,
            offset=offset,
            size=seq,
            data=length.to_bytes(4, "big"),
        ).data

    def write(self, version_cap, offset, data):
        return self.call(
            MV_WRITE, capability=version_cap, offset=offset, data=data
        ).size

    def commit(self, version_cap):
        """Atomic commit; returns the new sequence number."""
        return self.call(MV_COMMIT, capability=version_cap).size

    def abort(self, version_cap):
        self.call(MV_ABORT, capability=version_cap)

    def n_versions(self, file_cap):
        return self.call(MV_NVERSIONS, capability=file_cap).size
