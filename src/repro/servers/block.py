"""The block server (§3.2): raw disk blocks as capability-named objects.

"The block server can be requested to allocate a disk block and return a
capability for it.  Using this capability, the block can be written,
read, or deallocated.  The block server has no concept of a file."

Splitting block storage from file semantics is the paper's modularity
argument: anyone can build "any kind of special-purpose file system"
above this interface — which is exactly what
:class:`~repro.servers.flatfile.FlatFileServer` does when configured with
a block-server backend.
"""

from repro.core.rights import Rights
from repro.disk.virtualdisk import VirtualDisk
from repro.errors import BadRequest
from repro.ipc.client import ServiceClient
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE

R_READ = 0x01
R_WRITE = 0x02

BLK_ALLOC = USER_BASE + 0
BLK_READ = USER_BASE + 1
BLK_WRITE = USER_BASE + 2
BLK_SIZE = USER_BASE + 3


class BlockServer(ObjectServer):
    """Allocates, reads, and writes raw disk blocks by capability."""

    service_name = "block server"

    def __init__(self, node, disk=None, **kwargs):
        super().__init__(node, **kwargs)
        self.disk = disk or VirtualDisk(n_blocks=4096)

    @command(BLK_ALLOC)
    def _alloc(self, ctx):
        """Allocate one block; optional initial contents in the data field."""
        if len(ctx.request.data) > self.disk.block_size:
            raise BadRequest(
                "initial data exceeds the %d-byte block" % self.disk.block_size
            )
        block_no = self.disk.allocate()
        if ctx.request.data:
            self.disk.write(block_no, ctx.request.data)
        cap = self.table.create(block_no)
        return ctx.ok(capability=cap, size=self.disk.block_size)

    @command(BLK_READ)
    def _read(self, ctx):
        entry, _ = ctx.lookup(Rights(R_READ))
        return ctx.ok(data=self.disk.read(entry.data))

    @command(BLK_WRITE)
    def _write(self, ctx):
        entry, _ = ctx.lookup(Rights(R_WRITE))
        self.disk.write(entry.data, ctx.request.data)
        return ctx.ok()

    @command(BLK_SIZE)
    def _size(self, ctx):
        ctx.lookup()
        return ctx.ok(size=self.disk.block_size)

    def on_destroy(self, entry):
        """Deallocation: the block returns to the free pool."""
        self.disk.free(entry.data)

    def describe(self, entry):
        return "disk block %d (%d bytes)" % (entry.data, self.disk.block_size)


class BlockClient(ServiceClient):
    """Typed client for the block server."""

    def alloc(self, initial=b""):
        """Allocate a block; returns ``(capability, block_size)``."""
        reply = self.call(BLK_ALLOC, data=initial)
        return reply.capability, reply.size

    def read(self, block_cap):
        return self.call(BLK_READ, capability=block_cap).data

    def write(self, block_cap, data):
        self.call(BLK_WRITE, capability=block_cap, data=data)

    def block_size(self, block_cap):
        return self.call(BLK_SIZE, capability=block_cap).size

    def free(self, block_cap):
        """Deallocate: the standard DESTROY releases the disk block."""
        self.destroy(block_cap)
