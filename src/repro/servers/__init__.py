"""The Amoeba server suite of §3.

Every server the paper describes, each an ordinary user process built on
:class:`~repro.ipc.server.ObjectServer`: the block server, the flat file
server, the directory server, the multiversion file server, the bank
server, the charging file server that combines the last two (§3.6's
quota-by-pricing), and the UNIX-like file system facade.
"""

from repro.servers.bank import BankClient, BankServer
from repro.servers.block import BlockClient, BlockServer
from repro.servers.charging import ChargingFlatFileServer
from repro.servers.directory import DirectoryClient, DirectoryServer, resolve_path
from repro.servers.flatfile import FlatFileClient, FlatFileServer
from repro.servers.multiversion import MultiversionClient, MultiversionFileServer
from repro.servers.sweeper import ReachabilitySweeper
from repro.servers.unixfs import UnixFs

__all__ = [
    "BankClient",
    "BankServer",
    "BlockClient",
    "BlockServer",
    "ChargingFlatFileServer",
    "DirectoryClient",
    "DirectoryServer",
    "FlatFileClient",
    "FlatFileServer",
    "MultiversionClient",
    "MultiversionFileServer",
    "ReachabilitySweeper",
    "UnixFs",
    "resolve_path",
]
