"""The directory server (§3.4): (ASCII name, capability) sets.

"The directory server manages directories, each of which is a set of
(ASCII name, capability) pairs."  Directories map names to *whole
capabilities*, and the stored capabilities "need not all be file
capabilities and certainly need not all be located in the same place or
managed by the same server" — a path walk hops transparently between
directory servers because each lookup returns a capability whose port
says where to go next.  :func:`resolve_path` implements that client-side
walk.
"""

import struct

from repro.core.capability import Capability
from repro.core.rights import Rights
from repro.errors import BadRequest, NameExists, NameNotFound
from repro.ipc.client import ServiceClient
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE

R_LOOKUP = 0x01
R_MODIFY = 0x02

DIR_CREATE = USER_BASE + 0
DIR_LOOKUP = USER_BASE + 1
DIR_ENTER = USER_BASE + 2
DIR_REMOVE = USER_BASE + 3
DIR_LIST = USER_BASE + 4

#: Longest accepted entry name; generous for 1986.
MAX_NAME = 255


def _check_name(name):
    if not name:
        raise BadRequest("directory entry name cannot be empty")
    if len(name) > MAX_NAME:
        raise BadRequest("name longer than %d bytes" % MAX_NAME)
    if "/" in name:
        raise BadRequest("entry names cannot contain '/'")
    return name


class Directory:
    """One directory object: an ordered name -> capability map."""

    def __init__(self):
        self.entries = {}

    def __len__(self):
        return len(self.entries)


class DirectoryCodec:
    """On-disk form of a :class:`Directory` for the durable store.

    Explicit and versionable — per entry ``[2B name length][name utf-8]
    [2B cap length][packed capability]`` — never pickle.  Encoding
    snapshots the name map with one ``list(...)`` call (atomic under
    the GIL), so a handler mutating the directory concurrently can
    never tear the encoding mid-entry.
    """

    def encode(self, data):
        if not isinstance(data, Directory):
            raise TypeError(
                "DirectoryCodec cannot encode %s" % type(data).__name__
            )
        items = list(data.entries.items())
        parts = [struct.pack(">I", len(items))]
        for name, capability in items:
            raw_name = name.encode("utf-8")
            raw_cap = capability.pack()
            parts.append(struct.pack(">HH", len(raw_name), len(raw_cap)))
            parts.append(raw_name)
            parts.append(raw_cap)
        return b"".join(parts)

    def decode(self, raw):
        directory = Directory()
        (count,) = struct.unpack_from(">I", raw)
        offset = 4
        for _ in range(count):
            name_len, cap_len = struct.unpack_from(">HH", raw, offset)
            offset += 4
            name = raw[offset: offset + name_len].decode("utf-8")
            offset += name_len
            capability = Capability.unpack(raw[offset: offset + cap_len])
            offset += cap_len
            directory.entries[name] = capability
        if offset != len(raw):
            raise ValueError("trailing bytes in directory payload")
        return directory


class DirectoryServer(ObjectServer):
    """Lookup, enter, and remove (name, capability) pairs.

    The first durable service: construct via :meth:`durable` (or pass
    ``store=DurableStore(disk, codec=DirectoryCodec())``) and every
    create/enter/remove survives a crash — ``reboot()`` on a new
    incarnation replays the disk (see ``ObjectServer.reboot``).
    """

    service_name = "directory server"

    @classmethod
    def durable(cls, node, disk=None, dedup=True, **kwargs):
        """Build a durable directory server on ``disk`` (a fresh
        :class:`~repro.disk.virtualdisk.VirtualDisk` when omitted).
        Dedup defaults on: a durable name service should also suppress
        duplicate ENTER/REMOVE across retries and reboots."""
        from repro.disk.wal import DurableStore

        store = DurableStore(disk, codec=DirectoryCodec())
        return cls(node, store=store, dedup=dedup, **kwargs)

    @command(DIR_CREATE)
    def _create(self, ctx):
        """Create a fresh empty directory, returning its capability."""
        cap = self.table.create(Directory())
        return ctx.ok(capability=cap)

    @command(DIR_LOOKUP)
    def _lookup(self, ctx):
        """Look up one name; the stored capability comes back verbatim."""
        entry, _ = ctx.lookup(Rights(R_LOOKUP))
        directory = self._as_directory(entry)
        name = ctx.request.data.decode("utf-8", "replace")
        try:
            stored = directory.entries[name]
        except KeyError:
            raise NameNotFound("no entry %r in this directory" % name) from None
        return ctx.ok(capability=stored)

    @command(DIR_ENTER)
    def _enter(self, ctx):
        """Enter (name, capability); the capability rides as an extra cap.

        ``size`` non-zero allows replacing an existing entry.
        """
        entry, _ = ctx.lookup(Rights(R_MODIFY))
        directory = self._as_directory(entry)
        name = _check_name(ctx.request.data.decode("utf-8", "replace"))
        if not ctx.request.extra_caps:
            raise BadRequest("ENTER requires the capability to store")
        if name in directory.entries and not ctx.request.size:
            raise NameExists("entry %r already exists" % name)
        directory.entries[name] = ctx.request.extra_caps[0]
        self.table.persist(entry.number)
        return ctx.ok()

    @command(DIR_REMOVE)
    def _remove(self, ctx):
        entry, _ = ctx.lookup(Rights(R_MODIFY))
        directory = self._as_directory(entry)
        name = ctx.request.data.decode("utf-8", "replace")
        if name not in directory.entries:
            raise NameNotFound("no entry %r in this directory" % name)
        del directory.entries[name]
        self.table.persist(entry.number)
        return ctx.ok()

    @command(DIR_LIST)
    def _list(self, ctx):
        entry, _ = ctx.lookup(Rights(R_LOOKUP))
        directory = self._as_directory(entry)
        listing = "\n".join(sorted(directory.entries))
        return ctx.ok(data=listing.encode("utf-8"), size=len(directory.entries))

    @staticmethod
    def _as_directory(entry):
        if not isinstance(entry.data, Directory):
            raise BadRequest("object %d is not a directory" % entry.number)
        return entry.data

    def describe(self, entry):
        return "directory with %d entries" % len(entry.data)

    def create_root(self):
        """Mint a root directory locally (bootstrap; not a wire operation)."""
        return self.table.create(Directory())


class DirectoryClient(ServiceClient):
    """Typed client for one directory server."""

    def create_directory(self, parent_cap=None, name=None, overwrite=False):
        """Create a directory; optionally enter it into a parent."""
        cap = self.call(DIR_CREATE).capability
        if parent_cap is not None:
            if name is None:
                raise ValueError("a name is required to enter into a parent")
            self.enter(parent_cap, name, cap, overwrite=overwrite)
        return cap

    def lookup(self, dir_cap, name):
        return self.call(
            DIR_LOOKUP, capability=dir_cap, data=name.encode("utf-8")
        ).capability

    def enter(self, dir_cap, name, target_cap, overwrite=False):
        self.call(
            DIR_ENTER,
            capability=dir_cap,
            data=name.encode("utf-8"),
            extra_caps=(target_cap,),
            size=1 if overwrite else 0,
        )

    def remove(self, dir_cap, name):
        self.call(DIR_REMOVE, capability=dir_cap, data=name.encode("utf-8"))

    def list(self, dir_cap):
        reply = self.call(DIR_LIST, capability=dir_cap)
        text = reply.data.decode("utf-8")
        return text.split("\n") if text else []


def resolve_path(node, root_cap, path, rng=None, locator=None, client_factory=None):
    """Walk ``a/b/c`` from a root directory, hopping servers transparently.

    Each step asks whichever server the *current* capability names — "if
    the capability returned happens to be for a directory managed by a
    different directory server, then the ensuing request ... just goes to
    the new server.  The distribution is completely transparent."

    ``client_factory(port) -> ServiceClient`` may be supplied to reuse
    configured clients (signatures, sealing); the default builds plain
    clients per hop.
    """
    current = root_cap
    components = [c for c in path.split("/") if c]
    for component in components:
        if client_factory is not None:
            client = client_factory(current.port)
        else:
            client = DirectoryClient(node, current.port, rng=rng, locator=locator)
        reply = client.call(
            DIR_LOOKUP, capability=current, data=component.encode("utf-8")
        )
        current = reply.capability
    return current
