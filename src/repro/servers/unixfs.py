"""A UNIX-like file system facade over the directory and flat file servers.

§3.5 closes: "The third file system is a capability-based UNIX file
system, to ease the problem of moving existing applications from UNIX to
Amoeba."  This module is that compatibility layer: paths, file
descriptors, and read/write/seek, implemented entirely with directory
lookups and flat-file operations — no new server, just a client library,
which is itself a demonstration of how far user-space capability
management goes.
"""

import os

from repro.errors import BadRequest, NameNotFound
from repro.servers.directory import DirectoryClient, resolve_path
from repro.servers.flatfile import FlatFileClient


class _OpenFile:
    """One file-descriptor table entry."""

    def __init__(self, capability, mode):
        self.capability = capability
        self.mode = mode
        self.position = 0


class UnixFs:
    """open/read/write/seek/close over Amoeba capabilities.

    Parameters
    ----------
    node:
        The client station.
    root_cap:
        Capability for the root directory.
    file_port:
        Put-port of the flat file server used to create new files.
    """

    def __init__(self, node, root_cap, file_port, rng=None, locator=None):
        self.node = node
        self.root_cap = root_cap
        self.rng = rng
        self.locator = locator
        self._files = FlatFileClient(node, file_port, rng=rng, locator=locator)
        self._fds = {}
        self._next_fd = 3  # 0..2 are spoken for, as tradition demands

    # ------------------------------------------------------------------
    # path plumbing
    # ------------------------------------------------------------------

    def _split(self, path):
        path = path.strip("/")
        if not path:
            raise BadRequest("empty path")
        parent, _, name = path.rpartition("/")
        return parent, name

    def _dir_client(self, dir_cap):
        return DirectoryClient(
            self.node, dir_cap.port, rng=self.rng, locator=self.locator
        )

    def _resolve(self, path):
        return resolve_path(
            self.node, self.root_cap, path, rng=self.rng, locator=self.locator
        )

    def _resolve_parent(self, path):
        parent, name = self._split(path)
        parent_cap = self._resolve(parent) if parent else self.root_cap
        return parent_cap, name

    # ------------------------------------------------------------------
    # the POSIX-flavoured calls
    # ------------------------------------------------------------------

    def creat(self, path):
        """Create an empty file and enter it under ``path``."""
        parent_cap, name = self._resolve_parent(path)
        file_cap = self._files.create()
        self._dir_client(parent_cap).enter(parent_cap, name, file_cap)
        return file_cap

    def open(self, path, mode="r"):
        """Open ``path``; modes are "r", "w" (truncate), and "a" (append).

        Returns a small-integer file descriptor.
        """
        if mode not in ("r", "w", "a"):
            raise BadRequest("unsupported mode %r" % mode)
        if mode == "w":
            # Flat files have no truncate (§3.3's operation set is
            # CREATE/DESTROY/READ/WRITE), so "w" is: new file, replace
            # the directory entry, destroy the old file.
            parent_cap, name = self._resolve_parent(path)
            directory = self._dir_client(parent_cap)
            new_cap = self._files.create()
            try:
                old_cap = directory.lookup(parent_cap, name)
            except NameNotFound:
                old_cap = None
            directory.enter(parent_cap, name, new_cap, overwrite=True)
            if old_cap is not None:
                self._client_for(old_cap).destroy(old_cap)
            capability = new_cap
        else:
            try:
                capability = self._resolve(path)
            except NameNotFound:
                if mode == "a":
                    return self.open_cap(self.creat(path), mode)
                raise
        return self.open_cap(capability, mode)

    def open_cap(self, capability, mode="r"):
        """Open an already-held capability without any path lookup."""
        handle = _OpenFile(capability, mode)
        if mode == "a":
            handle.position = self._file_client(capability).size(capability)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = handle
        return fd

    def read(self, fd, count):
        handle = self._handle(fd)
        data = self._file_client(handle.capability).read(
            handle.capability, handle.position, count
        )
        handle.position += len(data)
        return data

    def write(self, fd, data):
        handle = self._handle(fd)
        if handle.mode == "r":
            raise BadRequest("fd %d is read-only" % fd)
        self._file_client(handle.capability).write(
            handle.capability, handle.position, data
        )
        handle.position += len(data)
        return len(data)

    def lseek(self, fd, offset, whence=os.SEEK_SET):
        handle = self._handle(fd)
        if whence == os.SEEK_SET:
            position = offset
        elif whence == os.SEEK_CUR:
            position = handle.position + offset
        elif whence == os.SEEK_END:
            size = self._file_client(handle.capability).size(handle.capability)
            position = size + offset
        else:
            raise BadRequest("bad whence %r" % whence)
        if position < 0:
            raise BadRequest("seek before start of file")
        handle.position = position
        return position

    def close(self, fd):
        self._handle(fd)
        del self._fds[fd]

    def unlink(self, path):
        """Remove the directory entry and destroy the file."""
        parent_cap, name = self._resolve_parent(path)
        directory = self._dir_client(parent_cap)
        target = directory.lookup(parent_cap, name)
        directory.remove(parent_cap, name)
        self._client_for(target).destroy(target)

    def mkdir(self, path):
        """Create a subdirectory (on the parent's directory server)."""
        parent_cap, name = self._resolve_parent(path)
        directory = self._dir_client(parent_cap)
        return directory.create_directory(parent_cap, name)

    def listdir(self, path="/"):
        target = self._resolve(path) if path.strip("/") else self.root_cap
        return self._dir_client(target).list(target)

    def stat(self, path):
        """Size and server port for a path (what a capability reveals)."""
        capability = self._resolve(path)
        size = self._file_client(capability).size(capability)
        return {"size": size, "port": capability.port, "object": capability.object}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _handle(self, fd):
        try:
            return self._fds[fd]
        except KeyError:
            raise BadRequest("bad file descriptor %d" % fd) from None

    def _file_client(self, capability):
        if capability.port == self._files.put_port:
            return self._files
        return FlatFileClient(
            self.node, capability.port, rng=self.rng, locator=self.locator
        )

    def _client_for(self, capability):
        return self._file_client(capability)

    def __repr__(self):
        return "UnixFs(open fds=%d)" % len(self._fds)
