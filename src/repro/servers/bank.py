"""The bank server (§3.6): accounting and resource control.

"The principal operation on bank accounts is transferring virtual money
from one account to another."  Accounts hold balances "in different,
possibly convertible, possibly inconvertible, currencies", and servers
charge for resources — "CPU time could be charged in francs,
phototypesetter pages in yen" — so quotas fall out of pricing.

A transfer presents *two* capabilities: the payer's account (withdraw
right) in the header and the payee's account (deposit right) as an extra
capability, so a client can hand a server a deposit-only capability for
its account without exposing withdrawal — rights restriction doing real
policy work.
"""

from repro.core.rights import Rights
from repro.errors import (
    BadRequest,
    InconvertibleCurrency,
    InsufficientFunds,
    InvalidCapability,
    UnknownCurrency,
)
from repro.ipc.client import ServiceClient
from repro.ipc.server import ObjectServer, command
from repro.ipc.stdops import USER_BASE

R_INSPECT = 0x01
R_WITHDRAW = 0x02
R_DEPOSIT = 0x04
#: Creating money from nothing: held only by the bank's own root account.
R_MINT = 0x40

BANK_OPEN = USER_BASE + 0
BANK_BALANCE = USER_BASE + 1
BANK_TRANSFER = USER_BASE + 2
BANK_CONVERT = USER_BASE + 3
BANK_MINT = USER_BASE + 4


class Account:
    """One bank account: integer balances per currency."""

    def __init__(self):
        self.balances = {}

    def balance(self, currency):
        return self.balances.get(currency, 0)

    def deposit(self, currency, amount):
        self.balances[currency] = self.balance(currency) + amount

    def withdraw(self, currency, amount):
        if currency not in self.balances:
            # Never held this currency at all — distinct from having
            # spent it down to zero, which is InsufficientFunds below.
            raise UnknownCurrency("account holds no %s" % currency)
        held = self.balances[currency]
        if held < amount:
            raise InsufficientFunds(
                "balance %d %s cannot cover %d" % (held, currency, amount)
            )
        self.balances[currency] = held - amount


def _parse_amount(text):
    """Parse ``currency:amount`` (amounts are positive integers)."""
    try:
        currency, amount_text = text.split(":")
        amount = int(amount_text)
    except ValueError:
        raise BadRequest(
            "expected 'currency:amount', got %r" % text
        ) from None
    if not currency:
        raise BadRequest("empty currency name")
    if amount <= 0:
        raise BadRequest("amounts must be positive, got %d" % amount)
    return currency, amount


class BankServer(ObjectServer):
    """Multi-currency accounts with transfer, conversion, and minting."""

    service_name = "bank server"

    def __init__(self, node, exchange_rates=None, **kwargs):
        super().__init__(node, **kwargs)
        #: (from_currency, to_currency) -> (numerator, denominator).
        #: Absent pairs are inconvertible.
        self.exchange_rates = dict(exchange_rates or {})
        #: Total money minted per currency (conservation bookkeeping).
        self.minted = {}

    def create_account(self, initial=None, mint_right=False):
        """Open an account locally (bank-operator bootstrap, not wire).

        Returns the owner capability; ``mint_right`` accounts can create
        money and are how an economy is seeded.
        """
        account = Account()
        for currency, amount in (initial or {}).items():
            account.deposit(currency, amount)
            self.minted[currency] = self.minted.get(currency, 0) + amount
        cap = self.table.create(account)
        if not mint_right:
            cap = self.table.restrict(cap, Rights(0xFF).without(R_MINT))
        return cap

    @command(BANK_OPEN)
    def _open(self, ctx):
        """Open a fresh, empty account (no mint right)."""
        cap = self.table.create(Account())
        restricted = self.table.restrict(cap, Rights(0xFF).without(R_MINT))
        return ctx.ok(capability=restricted)

    @command(BANK_BALANCE)
    def _balance(self, ctx):
        entry, _ = ctx.lookup(Rights(R_INSPECT))
        account = self._as_account(entry)
        listing = ",".join(
            "%s:%d" % (currency, amount)
            for currency, amount in sorted(account.balances.items())
            if amount
        )
        return ctx.ok(data=listing.encode("utf-8"))

    @command(BANK_TRANSFER)
    def _transfer(self, ctx):
        """Move money: payer capability in the header (withdraw right),
        payee capability as the first extra capability (deposit right)."""
        payer_entry, _ = ctx.lookup(Rights(R_WITHDRAW))
        payer = self._as_account(payer_entry)
        if not ctx.request.extra_caps:
            raise BadRequest("TRANSFER requires the payee capability")
        payee_cap = ctx.request.extra_caps[0]
        if payee_cap.port != self.put_port:
            raise InvalidCapability("payee account is not at this bank")
        payee_entry, _ = self.table.lookup(payee_cap, Rights(R_DEPOSIT))
        payee = self._as_account(payee_entry)
        currency, amount = _parse_amount(ctx.request.data.decode("utf-8"))
        payer.withdraw(currency, amount)
        payee.deposit(currency, amount)
        return ctx.ok()

    @command(BANK_CONVERT)
    def _convert(self, ctx):
        """Exchange within one account: data is ``from:to:amount``."""
        entry, _ = ctx.lookup(Rights(R_WITHDRAW))
        account = self._as_account(entry)
        parts = ctx.request.data.decode("utf-8").split(":")
        if len(parts) != 3:
            raise BadRequest("expected 'from:to:amount'")
        src, dst, amount_text = parts
        try:
            amount = int(amount_text)
        except ValueError:
            raise BadRequest("bad amount %r" % amount_text) from None
        if amount <= 0:
            raise BadRequest("amounts must be positive")
        rate = self.exchange_rates.get((src, dst))
        if rate is None:
            raise InconvertibleCurrency(
                "no exchange rate from %s to %s" % (src, dst)
            )
        numerator, denominator = rate
        converted = amount * numerator // denominator
        if converted <= 0:
            raise BadRequest("amount too small to convert at this rate")
        account.withdraw(src, amount)
        account.deposit(dst, converted)
        # Conversion changes per-currency totals by design; record it so
        # conservation checks can account for exchanges.
        self.minted[src] = self.minted.get(src, 0) - amount
        self.minted[dst] = self.minted.get(dst, 0) + converted
        return ctx.ok(data=("%s:%d" % (dst, converted)).encode("utf-8"))

    @command(BANK_MINT)
    def _mint(self, ctx):
        """Create money (R_MINT only — the central bank's privilege)."""
        entry, _ = ctx.lookup(Rights(R_MINT))
        account = self._as_account(entry)
        currency, amount = _parse_amount(ctx.request.data.decode("utf-8"))
        account.deposit(currency, amount)
        self.minted[currency] = self.minted.get(currency, 0) + amount
        return ctx.ok()

    # ------------------------------------------------------------------
    # invariants and helpers
    # ------------------------------------------------------------------

    def total_in_circulation(self, currency):
        """Sum of this currency over all accounts (conservation checks)."""
        total = 0
        for number in self.table.numbers():
            entry = self.table._entry(number)
            if isinstance(entry.data, Account):
                total += entry.data.balance(currency)
        return total

    @staticmethod
    def _as_account(entry):
        if not isinstance(entry.data, Account):
            raise BadRequest("object %d is not an account" % entry.number)
        return entry.data

    def describe(self, entry):
        account = entry.data
        if isinstance(account, Account):
            return "bank account, %d currencies" % len(account.balances)
        return super().describe(entry)


class BankClient(ServiceClient):
    """Typed client for the bank server."""

    def open_account(self):
        """Open an empty account; the returned capability cannot mint."""
        return self.call(BANK_OPEN).capability

    def balance(self, account_cap):
        """Balances as a dict currency -> amount."""
        text = self.call(BANK_BALANCE, capability=account_cap).data.decode("utf-8")
        if not text:
            return {}
        out = {}
        for pair in text.split(","):
            currency, amount = pair.split(":")
            out[currency] = int(amount)
        return out

    def transfer(self, payer_cap, payee_cap, currency, amount):
        """Move ``amount`` of ``currency`` from payer to payee."""
        self.call(
            BANK_TRANSFER,
            capability=payer_cap,
            extra_caps=(payee_cap,),
            data=("%s:%d" % (currency, amount)).encode("utf-8"),
        )

    def convert(self, account_cap, src, dst, amount):
        """Exchange currencies inside one account; returns the proceeds."""
        reply = self.call(
            BANK_CONVERT,
            capability=account_cap,
            data=("%s:%s:%d" % (src, dst, amount)).encode("utf-8"),
        )
        currency, got = reply.data.decode("utf-8").split(":")
        return int(got)

    def mint(self, account_cap, currency, amount):
        """Create money (requires the mint right)."""
        self.call(
            BANK_MINT,
            capability=account_cap,
            data=("%s:%d" % (currency, amount)).encode("utf-8"),
        )
