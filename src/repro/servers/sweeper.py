"""Reachability-based garbage collection over capability-named objects.

Sparse capabilities keep no holder records, so storage servers cannot
know which objects are still wanted.  Amoeba's answer (which this module
reproduces) is mark-and-age: a sweeper process walks everything reachable
from the naming roots, *touches* each capability at its own server
(STD_TOUCH proves liveness and resets the object's lifetime), and then
each server runs an aging pass that collects whatever went unproven.

The sweeper is an ordinary client: it holds the root directory
capabilities and needs no privileges beyond them — one more consequence
of keeping capability management out of the kernel.
"""

from repro.crypto.randomsrc import RandomSource
from repro.errors import AmoebaError
from repro.ipc.client import ServiceClient
from repro.ipc.stdops import STD_TOUCH
from repro.servers.directory import DIR_LIST, DIR_LOOKUP


class ReachabilitySweeper:
    """Mark (touch) everything reachable from a set of root directories.

    Parameters
    ----------
    node:
        The station the sweeper runs on.
    roots:
        Root directory capabilities to walk from.
    client_factory:
        Optional ``f(port) -> ServiceClient`` for configured clients
        (signatures, sealing); defaults to plain clients per server.
    """

    def __init__(self, node, roots, rng=None, locator=None,
                 client_factory=None):
        self.node = node
        self.roots = list(roots)
        self.rng = rng or RandomSource()
        self.locator = locator
        self._client_factory = client_factory
        self._clients = {}
        #: Statistics from the last mark phase.
        self.touched = 0
        self.unreachable_errors = 0

    def _client(self, port):
        client = self._clients.get(port)
        if client is None:
            if self._client_factory is not None:
                client = self._client_factory(port)
            else:
                client = ServiceClient(
                    self.node, port, rng=self.rng, locator=self.locator
                )
            self._clients[port] = client
        return client

    def mark(self):
        """Touch every object reachable from the roots; returns the count.

        Directories are recognised by answering DIR_LIST; anything else
        is a leaf.  Cycles and shared subtrees are handled with a visited
        set keyed on (server port, object number) — rights and check
        fields deliberately excluded, so many capabilities for one object
        mark it once.
        """
        self.touched = 0
        self.unreachable_errors = 0
        visited = set()
        stack = list(self.roots)
        while stack:
            capability = stack.pop()
            key = (capability.port, capability.object)
            if key in visited:
                continue
            visited.add(key)
            client = self._client(capability.port)
            try:
                client.call(STD_TOUCH, capability=capability)
                self.touched += 1
            except AmoebaError:
                # Dead entry (stale capability in some directory): skip.
                self.unreachable_errors += 1
                continue
            stack.extend(self._children(client, capability))
        return self.touched

    def _children(self, client, capability):
        """The capabilities stored under a directory, or [] for leaves."""
        try:
            names = client.call(
                DIR_LIST, capability=capability
            ).data.decode("utf-8")
        except AmoebaError:
            return []
        children = []
        for name in filter(None, names.split("\n")):
            try:
                reply = client.call(
                    DIR_LOOKUP, capability=capability,
                    data=name.encode("utf-8"),
                )
            except AmoebaError:
                self.unreachable_errors += 1
                continue
            if reply.capability is not None:
                children.append(reply.capability)
        return children

    def collect(self, servers):
        """One full GC cycle: mark, then age every given server.

        Returns ``(touched, expired)`` counts.  ``servers`` are the
        :class:`~repro.ipc.server.ObjectServer` instances whose operators
        cooperate in the sweep (aging is always a server-local decision).
        """
        touched = self.mark()
        expired = sum(len(server.sweep()) for server in servers)
        return touched, expired

    def __repr__(self):
        return "ReachabilitySweeper(roots=%d, touched=%d)" % (
            len(self.roots),
            self.touched,
        )
