"""A flat file server that charges for disk space (§3.6).

"To obtain permission to create a file, a client would present a
capability for one of his accounts ... by having the file server charge x
dollars per kiloblock of disk space, quotas can be implemented by
limiting how many dollars each client has.  In some cases (e.g., disk
blocks, but not typesetter pages), returning the resource might result in
the client getting his money [back]."

The client attaches a *withdraw-capable* capability for its bank account
as an extra capability on CREATE and WRITE; the server — itself just a
bank client — transfers the charge into its own account.  Destroying a
file refunds the paid storage.  Running out of dollars *is* the quota.
"""

import math

from repro.core.rights import Rights
from repro.errors import BadRequest
from repro.ipc.server import command
from repro.servers.flatfile import (
    FILE_CREATE,
    FILE_WRITE,
    MAX_TRANSFER,
    R_WRITE,
    FlatFileServer,
)


class ChargingFlatFileServer(FlatFileServer):
    """Flat files with per-kiloblock pricing through the bank server.

    Parameters
    ----------
    bank_client:
        A :class:`~repro.servers.bank.BankClient` bound to the bank.
    revenue_cap:
        Deposit-capable capability for *this server's* account.
    price:
        Dollars charged per ``charge_unit`` bytes of growth.
    currency:
        Which currency storage is priced in (disk space is "dollars" in
        the paper's example).
    """

    service_name = "charging flat file server"

    def __init__(
        self,
        node,
        bank_client,
        revenue_cap,
        price=1,
        charge_unit=1024,
        currency="USD",
        refund_on_destroy=True,
        **kwargs,
    ):
        super().__init__(node, **kwargs)
        self.bank_client = bank_client
        self.revenue_cap = revenue_cap
        self.price = price
        self.charge_unit = charge_unit
        self.currency = currency
        self.refund_on_destroy = refund_on_destroy
        #: file object id(data) -> (payer capability, total paid).
        self._billing = {}

    def _units(self, nbytes):
        return math.ceil(nbytes / self.charge_unit)

    def _charge(self, payer_cap, old_size, new_size):
        """Charge for growth from old_size to new_size; returns dollars."""
        delta_units = self._units(new_size) - self._units(old_size)
        if delta_units <= 0:
            return 0
        cost = delta_units * self.price
        # The server is an ordinary bank client; InsufficientFunds from
        # the bank propagates to our client untouched — that is the quota.
        self.bank_client.transfer(
            payer_cap, self.revenue_cap, self.currency, cost
        )
        return cost

    def _payer_from(self, ctx):
        if not ctx.request.extra_caps:
            raise BadRequest(
                "storage here costs money: attach a bank account capability"
            )
        return ctx.request.extra_caps[0]

    @command(FILE_CREATE)
    def _create(self, ctx):
        if len(ctx.request.data) > MAX_TRANSFER:
            raise BadRequest("initial contents exceed %d bytes" % MAX_TRANSFER)
        payer_cap = self._payer_from(ctx)
        f = self._new_file(b"")
        paid = self._charge(payer_cap, 0, max(len(ctx.request.data), 1))
        if ctx.request.data:
            f.write(0, ctx.request.data)
        cap = self.table.create(f)
        self._billing[id(f)] = [payer_cap, paid]
        return ctx.ok(capability=cap)

    @command(FILE_WRITE)
    def _write(self, ctx):
        entry, _ = ctx.lookup(Rights(R_WRITE))
        f = entry.data
        new_end = ctx.request.offset + len(ctx.request.data)
        if new_end > f.size:
            billing = self._billing.get(id(f))
            payer_cap = (
                ctx.request.extra_caps[0]
                if ctx.request.extra_caps
                else (billing[0] if billing else None)
            )
            if payer_cap is None:
                raise BadRequest("growth requires a bank account capability")
            paid = self._charge(payer_cap, f.size, new_end)
            if billing is not None:
                billing[1] += paid
        if len(ctx.request.data) > MAX_TRANSFER:
            raise BadRequest("transfer larger than %d bytes" % MAX_TRANSFER)
        f.write(ctx.request.offset, ctx.request.data)
        return ctx.ok(size=f.size)

    def on_destroy(self, entry):
        """Disk blocks come back, and so does the money (§3.6)."""
        billing = self._billing.pop(id(entry.data), None)
        if billing is not None and self.refund_on_destroy and billing[1] > 0:
            payer_cap, paid = billing
            # Refund flows from the server's account back to the payer.
            # The payer capability must allow deposits for this to work;
            # a withdraw-only capability simply forfeits the refund.
            try:
                self.bank_client.transfer(
                    self.revenue_cap, payer_cap, self.currency, paid
                )
            except Exception:
                pass
        super().on_destroy(entry)
