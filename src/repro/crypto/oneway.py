"""The one-way function F used for ports, signatures, and check fields.

The paper (§2.2) requires a publicly known function F such that P = F(G) is
easy to compute but recovering G from P is infeasible.  We instantiate F
with SHA-256, domain-separated by a tag and truncated to the field width
(48 bits by default, matching the port and check-field widths of Fig. 2).

Distinct *tags* give independent one-way functions from the same hash; the
port logic, the XOR-rights scheme, and the software key derivations all use
different tags so that values never collide across uses.
"""

import hashlib

from repro.util.bits import mask

#: Width of Amoeba ports and check fields, in bits (Fig. 2).
PORT_BITS = 48

#: Entries kept in each instance's memo of F(value); when the memo fills
#: it is dropped wholesale (F recomputes in ~1 µs, eviction bookkeeping
#: would cost more than it saves).
_MEMO_MAX = 1 << 16


class OneWayFunction:
    """A truncated, domain-separated SHA-256 one-way function.

    Instances are callable on integers in ``[0, 2**width_bits)`` and return
    integers in the same range, so F can be iterated (as the commutative
    scheme's conceptual model requires) and compared against wire fields
    directly.

    F is deterministic, so every instance memoizes ``value -> F(value)``:
    the wire path applies F to the same handful of port values again and
    again (listen, egress, poll all one-way the same reply secret), and a
    dict hit is an order of magnitude cheaper than a SHA-256 round trip.
    """

    def __init__(self, tag=b"amoeba/F", width_bits=PORT_BITS):
        if width_bits <= 0 or width_bits > 256:
            raise ValueError("width_bits must be in (0, 256], got %d" % width_bits)
        if isinstance(tag, str):
            tag = tag.encode("utf-8")
        self.tag = tag
        self.width_bits = width_bits
        self._in_bytes = (width_bits + 7) // 8
        self._mask = mask(width_bits)
        self._memo = {}
        self._int_prefix = tag + b"\x00"

    def __call__(self, value):
        """Apply F to an integer, returning an integer of the same width."""
        memo = self._memo
        image = memo.get(value)
        if image is not None:
            return image
        image = self.raw(value)
        if len(memo) >= _MEMO_MAX:
            memo.clear()
        memo[value] = image
        return image

    def raw(self, value):
        """F without the memo, for callers that keep their own cache.

        The F-box caches ``value -> Port`` itself; routing its misses
        through here keeps each mapping in exactly one cache instead of
        two (the memo above still serves the scheme/derivation callers).
        """
        if value < 0 or value > self._mask:
            raise ValueError(
                "input %#x outside the %d-bit domain" % (value, self.width_bits)
            )
        digest = hashlib.sha256(
            self._int_prefix + value.to_bytes(self._in_bytes, "big")
        ).digest()
        return int.from_bytes(digest, "big") & self._mask

    def apply_bytes(self, data):
        """Apply F to arbitrary bytes, returning ``width_bits`` as bytes.

        Used where the input is not a fixed-width integer (e.g. key
        derivation in the software-protection bootstrap).
        """
        if isinstance(data, str):
            data = data.encode("utf-8")
        digest = hashlib.sha256(self.tag + b"\x01" + data).digest()
        out_bytes = (self.width_bits + 7) // 8
        value = int.from_bytes(digest, "big") & self._mask
        return value.to_bytes(out_bytes, "big")

    def __repr__(self):
        return "OneWayFunction(tag=%r, width_bits=%d)" % (self.tag, self.width_bits)


_DEFAULT = OneWayFunction()


def default_oneway():
    """The library-wide default F (48-bit, tag ``amoeba/F``).

    Every F-box in a network must use the same F for put-ports to match;
    this accessor is that shared instance.
    """
    return _DEFAULT
