"""Commutative one-way functions for client-side rights restriction.

Rights-protection scheme 3 (§2.3) needs N one-way functions
``F_0 .. F_{N-1}`` — one per rights bit — that *commute*:
``F_i(F_j(x)) == F_j(F_i(x))`` for all i, j, so that the order in which a
capability's rights are stripped does not matter.

The paper defers the construction to Mullender's thesis; the standard
instance, used here, is modular exponentiation with fixed prime exponents
over an RSA modulus ``n``::

    F_k(x) = x ** e_k  (mod n)

Exponentiations commute (``x**(e_i * e_j)``), and computing e-th roots
modulo ``n`` without the factorisation of ``n`` is believed as hard as
RSA.  The default modulus below was generated once with both ``p - 1`` and
``q - 1`` coprime to every exponent (so each ``F_k`` is a *permutation* of
the group) and the factors were discarded.

Deviation from Fig. 2 (recorded in DESIGN.md): sound group elements need
~512 bits, not 48, so scheme-3 capabilities carry an extended check field.
"""

from repro.util.bits import mask

#: 512-bit RSA modulus with unknown factorisation; p-1 and q-1 are coprime
#: to all of DEFAULT_EXPONENTS, making each F_k a permutation of Z_n*.
DEFAULT_MODULUS = int(
    "0x887fd9bc0fc7df6feaba0d65c5a08b2346ffd63062c5eab18f16c26a93135c26"
    "079d62d59ca7e43c5e49be07573ba19803d35b70597ff9dda5168d688d662f1d",
    16,
)

#: One small odd prime per rights bit; distinct primes guarantee that
#: stripping different rights composes to a different exponent.
DEFAULT_EXPONENTS = (3, 5, 7, 11, 13, 17, 19, 23)


class CommutativeOneWayFamily:
    """The family ``F_k(x) = x**e_k mod n`` of commuting one-way functions.

    One instance is shared by a server and all of its clients: applying
    ``F_k`` requires no secret, which is exactly what lets a client strip
    right ``k`` from a capability without contacting the server.
    """

    def __init__(self, modulus=DEFAULT_MODULUS, exponents=DEFAULT_EXPONENTS):
        if modulus < (1 << 32):
            raise ValueError("modulus is far too small to be one-way")
        if len(set(exponents)) != len(exponents):
            raise ValueError("exponents must be distinct")
        for e in exponents:
            if e < 2:
                raise ValueError("exponent %d cannot be one-way" % e)
        self.modulus = modulus
        self.exponents = tuple(exponents)
        #: Number of rights bits this family can protect.
        self.n_functions = len(self.exponents)
        #: Bytes needed to carry one group element in a check field.
        self.element_bytes = (modulus.bit_length() + 7) // 8

    def apply(self, k, x):
        """Apply ``F_k`` to group element ``x``."""
        self._check_index(k)
        self._check_element(x)
        return pow(x, self.exponents[k], self.modulus)

    def apply_many(self, ks, x):
        """Apply ``F_k`` for every index in ``ks`` (order irrelevant).

        The composite exponent is computed first so a server verifying a
        capability with several stripped rights pays one modular
        exponentiation, not one per right.
        """
        self._check_element(x)
        exponent = 1
        for k in ks:
            self._check_index(k)
            exponent *= self.exponents[k]
        if exponent == 1:
            return x
        return pow(x, exponent, self.modulus)

    def indices_for_deleted_rights(self, rights_bits, width):
        """Return the function indices for the rights *absent* from a mask.

        The server applies the functions "corresponding to the deleted
        rights" (§2.3); this maps a plaintext rights field to those indices.
        """
        if width > self.n_functions:
            raise ValueError(
                "rights width %d exceeds the %d available functions"
                % (width, self.n_functions)
            )
        if rights_bits < 0 or rights_bits > mask(width):
            raise ValueError("rights %#x outside %d-bit field" % (rights_bits, width))
        return [k for k in range(width) if not (rights_bits >> k) & 1]

    def random_element(self, rng):
        """Draw a uniformly random group element suitable as an object secret.

        Elements are drawn from ``[2, n - 2]``; the excluded fixed points
        0, 1, and n-1 would survive any exponentiation unchanged.
        """
        return rng.randint(2, self.modulus - 2)

    def _check_index(self, k):
        if not 0 <= k < self.n_functions:
            raise IndexError(
                "function index %d outside [0, %d)" % (k, self.n_functions)
            )

    def _check_element(self, x):
        if not 0 <= x < self.modulus:
            raise ValueError("element %#x outside the group" % x)

    def __repr__(self):
        return "CommutativeOneWayFamily(n_functions=%d, modulus_bits=%d)" % (
            self.n_functions,
            self.modulus.bit_length(),
        )
