"""Random number source for sparse capabilities.

Sparse capabilities are protected *only* by the unguessability of their
random fields ("Knowledge of a port is taken by the system as prima facie
evidence..."), so randomness quality is load-bearing.  By default we draw
from ``os.urandom``.  For reproducible tests and benchmarks a seed may be
supplied, in which case a deterministic SHA-256 counter DRBG is used — the
distribution is still uniform, only predictable to whoever knows the seed.

The seeded stream is stable for a given seed *within* a revision of this
module; it is not stable across revisions (the draw granularity may
change — e.g. the pooling below changed it), so never persist expected
values derived from a seed.
"""

import hashlib
import os
import threading


class RandomSource:
    """Uniform random bits, bytes, and integers.

    Parameters
    ----------
    seed:
        ``None`` (default) for operating-system entropy, or any ``bytes`` /
        ``int`` / ``str`` for a deterministic stream derived from the seed.
    """

    def __init__(self, seed=None):
        self._lock = threading.Lock()
        if seed is None:
            self._state = None
        else:
            self._state = hashlib.sha256(self._encode_seed(seed)).digest()
            self._counter = 0
            # Undrawn DRBG output: each SHA block is 32 bytes, most draws
            # are 6-byte ports, so pooling the remainder makes the
            # amortized cost one hash per 32 bytes instead of per draw.
            self._pool = bytearray()

    @staticmethod
    def _encode_seed(seed):
        if isinstance(seed, bytes):
            return seed
        if isinstance(seed, str):
            return seed.encode("utf-8")
        if isinstance(seed, int):
            return seed.to_bytes((seed.bit_length() + 8) // 8, "big", signed=True)
        raise TypeError("seed must be bytes, str, or int, got %r" % type(seed))

    @property
    def deterministic(self):
        """True when this source replays a seed-derived stream."""
        return self._state is not None

    def bytes(self, n):
        """Return ``n`` uniformly random bytes."""
        if n < 0:
            raise ValueError("cannot draw %d bytes" % n)
        if self._state is None:
            return os.urandom(n)
        with self._lock:
            pool = self._pool
            while len(pool) < n:
                pool.extend(
                    hashlib.sha256(
                        self._state + self._counter.to_bytes(8, "big")
                    ).digest()
                )
                self._counter += 1
            out = bytes(pool[:n])
            del pool[:n]
            return out

    def bits(self, n):
        """Return a uniformly random integer with exactly ``n`` random bits.

        The result is in ``[0, 2**n)``; it is *not* forced to have the top
        bit set.
        """
        if n < 0:
            raise ValueError("cannot draw %d bits" % n)
        if n == 0:
            return 0
        nbytes = (n + 7) // 8
        value = int.from_bytes(self.bytes(nbytes), "big")
        return value >> (8 * nbytes - n)

    def randint(self, lo, hi):
        """Return a uniform integer in the inclusive range ``[lo, hi]``.

        Uses rejection sampling so the distribution is exactly uniform.
        """
        if lo > hi:
            raise ValueError("empty range [%d, %d]" % (lo, hi))
        span = hi - lo + 1
        nbits = span.bit_length()
        while True:
            candidate = self.bits(nbits)
            if candidate < span:
                return lo + candidate

    def choice(self, seq):
        """Return a uniformly chosen element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def shuffle(self, items):
        """Return a new list with the items in uniformly random order."""
        items = list(items)
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]
        return items
