"""Public-key cryptosystem for the software-protection bootstrap (§2.4).

When F-boxes are absent, a newly booted machine establishes conventional
keys with its peers using the public key of well-known servers: the client
sends a fresh conventional key encrypted with the server's public key, and
the server proves its identity by answering under that key with a message
also sealed by its *private* key ("encrypted ... with the inverse of F's
public key" in the paper's phrasing — i.e. a signature).

This module provides textbook RSA with random padding and hash-then-sign
signatures, built on :mod:`repro.crypto.primes`.  It reproduces the
protocol's mechanics; it is not hardened production RSA.
"""

import hashlib
from dataclasses import dataclass

from repro.crypto.primes import generate_prime
from repro.crypto.randomsrc import RandomSource
from repro.errors import SecurityError

_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class PublicKey:
    """An RSA public key ``(n, e)``; safe to publish network-wide."""

    n: int
    e: int

    @property
    def modulus_bytes(self):
        return (self.n.bit_length() + 7) // 8

    def encrypt(self, message, rng=None):
        """Encrypt a short message with random PKCS#1-style padding.

        Random padding makes encryptions non-deterministic, which the
        bootstrap protocol needs so replayed ciphertexts are detectable
        via the fresh keys inside, not by ciphertext equality.
        """
        rng = rng or RandomSource()
        k = self.modulus_bytes
        if len(message) > k - 11:
            raise ValueError(
                "message of %d bytes exceeds the %d-byte RSA payload limit"
                % (len(message), k - 11)
            )
        pad_len = k - 3 - len(message)
        padding = bytearray()
        while len(padding) < pad_len:
            chunk = rng.bytes(pad_len - len(padding))
            padding.extend(b for b in chunk if b != 0)
        block = b"\x00\x02" + bytes(padding) + b"\x00" + message
        value = int.from_bytes(block, "big")
        return pow(value, self.e, self.n).to_bytes(k, "big")

    def verify(self, message, signature):
        """Check a hash-then-sign signature; returns True/False."""
        if len(signature) != self.modulus_bytes:
            return False
        sig_value = int.from_bytes(signature, "big")
        if sig_value >= self.n:
            return False
        recovered = pow(sig_value, self.e, self.n)
        expected = int.from_bytes(_digest(message), "big")
        return recovered == expected


@dataclass(frozen=True)
class KeyPair:
    """An RSA keypair; the private exponent never leaves this object."""

    public: PublicKey
    _d: int

    def decrypt(self, ciphertext):
        """Invert :meth:`PublicKey.encrypt`, validating the padding."""
        k = self.public.modulus_bytes
        if len(ciphertext) != k:
            raise SecurityError("ciphertext length %d != modulus length %d"
                                % (len(ciphertext), k))
        value = int.from_bytes(ciphertext, "big")
        if value >= self.public.n:
            raise SecurityError("ciphertext out of range")
        block = pow(value, self._d, self.public.n).to_bytes(k, "big")
        if block[:2] != b"\x00\x02":
            raise SecurityError("bad padding header")
        try:
            split = block.index(b"\x00", 2)
        except ValueError:
            raise SecurityError("unterminated padding") from None
        if split < 10:
            raise SecurityError("padding too short")
        return block[split + 1:]

    def sign(self, message):
        """Produce a hash-then-sign signature over ``message``."""
        value = int.from_bytes(_digest(message), "big")
        signature = pow(value, self._d, self.public.n)
        return signature.to_bytes(self.public.modulus_bytes, "big")


def _digest(message):
    if isinstance(message, str):
        message = message.encode("utf-8")
    return hashlib.sha256(message).digest()


def generate_keypair(bits=512, rng=None):
    """Generate an RSA keypair with a ``bits``-bit modulus.

    512 bits keeps pure-Python keygen fast while exercising the real
    protocol; the bootstrap tests use deterministic RNGs for speed.
    """
    if bits < 128:
        raise ValueError("modulus under 128 bits cannot carry a session key")
    rng = rng or RandomSource()
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _PUBLIC_EXPONENT == 0:
            continue
        d = pow(_PUBLIC_EXPONENT, -1, phi)
        return KeyPair(public=PublicKey(n=n, e=_PUBLIC_EXPONENT), _d=d)
