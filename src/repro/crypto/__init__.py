"""Cryptographic substrate for sparse capabilities.

The paper relies on four primitives, all built here from ``hashlib`` and
integer arithmetic (no external crypto packages):

* a one-way function ``F`` for ports and check fields (:mod:`~repro.crypto.oneway`),
* a family of *commutative* one-way functions for client-side rights
  restriction (:mod:`~repro.crypto.commutative`),
* a conventional block cipher standing in for DES
  (:mod:`~repro.crypto.feistel`), and
* a public-key cryptosystem for the no-F-box bootstrap protocol
  (:mod:`~repro.crypto.publickey`).

None of this is production cryptography; it is a faithful, testable
reproduction of the paper's constructions.
"""

from repro.crypto.commutative import CommutativeOneWayFamily
from repro.crypto.feistel import FeistelCipher
from repro.crypto.oneway import OneWayFunction, default_oneway
from repro.crypto.publickey import KeyPair, PublicKey, generate_keypair
from repro.crypto.randomsrc import RandomSource

__all__ = [
    "CommutativeOneWayFamily",
    "FeistelCipher",
    "KeyPair",
    "OneWayFunction",
    "PublicKey",
    "RandomSource",
    "default_oneway",
    "generate_keypair",
]
