"""Prime generation for the public-key substrate (Miller–Rabin).

Only the §2.4 bootstrap protocol needs public-key cryptography; primes are
generated once per server identity, so pure-Python performance is fine.
"""

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def is_probable_prime(n, rng, rounds=40):
    """Miller–Rabin primality test with ``rounds`` random witnesses.

    With 40 rounds the error probability is below 2**-80, far below the
    48-bit sparseness the capability scheme itself relies on.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randint(2, n - 2)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits, rng, avoid_divisors_of_p_minus_1=()):
    """Generate a random prime with exactly ``bits`` bits.

    ``avoid_divisors_of_p_minus_1`` lists small primes that must *not*
    divide ``p - 1``; the commutative family needs this so its exponents
    stay coprime to the group order.
    """
    if bits < 8:
        raise ValueError("refusing to generate a prime under 8 bits")
    while True:
        candidate = rng.bits(bits) | (1 << (bits - 1)) | 1
        if any((candidate - 1) % e == 0 for e in avoid_divisors_of_p_minus_1):
            continue
        if is_probable_prime(candidate, rng):
            return candidate
