"""A pure-Python Feistel block cipher standing in for DES.

Two of the paper's constructions need a conventional block cipher:

* rights-protection scheme 1 (§2.3) encrypts the concatenated RIGHTS and
  CHECK fields — a 56-bit block — under a per-object key, and demands "an
  encryption function that mixes the bits thoroughly" (a plain XOR "will
  not do");
* the software-protection key matrix (§2.4) encrypts whole 128-bit
  capabilities under per-(source, destination) conventional keys.

No crypto packages are available offline, so we build a balanced Feistel
network whose round function is truncated SHA-256.  A Feistel network is a
permutation for any round function, so decryption is exact; with a strong
round function and 16+ rounds it behaves as a pseudo-random permutation,
which is all the schemes require (the tests verify avalanche behaviour).
"""

import hashlib

from repro.util.bits import mask

#: RIGHTS (8 bits) + CHECK (48 bits) form the scheme-1 plaintext block.
RIGHTS_CHECK_BLOCK_BITS = 56

#: A whole Fig. 2 capability is one 128-bit block for the key matrix.
CAPABILITY_BLOCK_BITS = 128


class FeistelCipher:
    """Balanced Feistel permutation over a ``block_bits``-wide integer block.

    Parameters
    ----------
    key:
        Arbitrary-length key bytes.
    block_bits:
        Even block width in bits; the default matches the scheme-1
        RIGHTS+CHECK block.
    rounds:
        Number of Feistel rounds; 16 mirrors DES and is ample for a
        SHA-256 round function.
    """

    def __init__(self, key, block_bits=RIGHTS_CHECK_BLOCK_BITS, rounds=16):
        if isinstance(key, str):
            key = key.encode("utf-8")
        if not key:
            raise ValueError("key must be non-empty")
        if block_bits < 8 or block_bits % 2:
            raise ValueError(
                "block_bits must be an even width >= 8, got %d" % block_bits
            )
        if rounds < 4:
            raise ValueError("fewer than 4 Feistel rounds is not a cipher")
        self.block_bits = block_bits
        self.rounds = rounds
        self._half_bits = block_bits // 2
        self._half_mask = mask(self._half_bits)
        self._half_bytes = (self._half_bits + 7) // 8
        self._block_mask = mask(block_bits)
        # Precompute per-round key material so the hot path hashes once
        # per round over a fixed-size input.
        self._round_keys = [
            hashlib.sha256(key + b"/round/" + bytes([r])).digest()
            for r in range(rounds)
        ]

    def _round(self, r, half):
        digest = hashlib.sha256(
            self._round_keys[r] + half.to_bytes(self._half_bytes, "big")
        ).digest()
        return int.from_bytes(digest[: self._half_bytes], "big") & self._half_mask

    def encrypt(self, plaintext):
        """Encrypt one integer block."""
        if plaintext < 0 or plaintext > self._block_mask:
            raise ValueError(
                "plaintext %#x outside %d-bit block" % (plaintext, self.block_bits)
            )
        left = plaintext >> self._half_bits
        right = plaintext & self._half_mask
        for r in range(self.rounds):
            left, right = right, left ^ self._round(r, right)
        # The final swapless form: recombine as (right, left) so that
        # decryption is the same network with reversed round keys.
        return (right << self._half_bits) | left

    def decrypt(self, ciphertext):
        """Invert :meth:`encrypt` on one integer block."""
        if ciphertext < 0 or ciphertext > self._block_mask:
            raise ValueError(
                "ciphertext %#x outside %d-bit block" % (ciphertext, self.block_bits)
            )
        right = ciphertext >> self._half_bits
        left = ciphertext & self._half_mask
        for r in reversed(range(self.rounds)):
            left, right = right ^ self._round(r, left), left
        return (left << self._half_bits) | right

    def encrypt_bytes(self, data):
        """Encrypt a byte string exactly one block long."""
        return self._crypt_bytes(data, self.encrypt)

    def decrypt_bytes(self, data):
        """Decrypt a byte string exactly one block long."""
        return self._crypt_bytes(data, self.decrypt)

    def _crypt_bytes(self, data, op):
        block_bytes = self.block_bits // 8
        if self.block_bits % 8:
            raise ValueError(
                "byte interface needs a byte-aligned block, have %d bits"
                % self.block_bits
            )
        if len(data) != block_bytes:
            raise ValueError(
                "expected %d-byte block, got %d bytes" % (block_bytes, len(data))
            )
        value = int.from_bytes(data, "big")
        return op(value).to_bytes(block_bytes, "big")

    def __repr__(self):
        return "FeistelCipher(block_bits=%d, rounds=%d)" % (
            self.block_bits,
            self.rounds,
        )


class WideBlockCipher:
    """A length-preserving permutation over byte strings of any length >= 2.

    The key matrix of §2.4 must encrypt whole capabilities; canonical
    capabilities are one 128-bit Feistel block, but the commutative
    scheme's extended capabilities are ~76 bytes.  This cipher is a
    balanced byte-wise Feistel over the full string (round function:
    SHA-256 in counter mode), so any single flipped ciphertext byte
    scrambles the whole plaintext — the "decrypts to make sense" test the
    matrix scheme relies on stays sound for long capabilities.
    """

    def __init__(self, key, rounds=4):
        if isinstance(key, str):
            key = key.encode("utf-8")
        if not key:
            raise ValueError("key must be non-empty")
        if rounds < 4:
            raise ValueError("Luby–Rackoff needs at least 4 rounds")
        if rounds % 2:
            raise ValueError(
                "rounds must be even so odd-length blocks invert cleanly"
            )
        self._key = key
        self.rounds = rounds
        # The key schedule: one partially-hashed SHA-256 state per round,
        # absorbed with key + domain tag + round number once at
        # construction.  Each round stream then only copies the state and
        # absorbs the data half — identical digests to hashing the full
        # concatenation, without re-hashing the key material per frame.
        self._round_states = [
            hashlib.sha256(key + b"/wide/" + bytes([r])) for r in range(rounds)
        ]

    def _round_stream(self, r, data, length):
        """Keystream of ``length`` bytes: SHA-256(key, round, data, counter)."""
        state = self._round_states[r].copy()
        state.update(data)
        seed = state.digest()
        out = bytearray()
        counter = 0
        while len(out) < length:
            out.extend(
                hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
            )
            counter += 1
        return bytes(out[:length])

    @staticmethod
    def _xor(a, b):
        # a and b are always the same length here (the stream is cut to
        # len(a)); whole-integer XOR beats a per-byte generator ~10x on
        # message-sized halves.
        return (
            int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
        ).to_bytes(len(a), "big")

    def encrypt(self, plaintext):
        """Encrypt a byte string; the result has the same length.

        One round: ``(L, R) -> (R, L xor F_r(R))``.  With an even round
        count the halves return to their original lengths, so odd-length
        blocks work too.
        """
        if len(plaintext) < 2:
            raise ValueError("wide block must be at least 2 bytes")
        half = len(plaintext) // 2
        left, right = plaintext[:half], plaintext[half:]
        for r in range(self.rounds):
            left, right = right, self._xor(
                left, self._round_stream(r, right, len(left))
            )
        return left + right

    def decrypt(self, ciphertext):
        """Invert :meth:`encrypt`: ``(L, R) -> (R xor F_r(L), L)``."""
        if len(ciphertext) < 2:
            raise ValueError("wide block must be at least 2 bytes")
        half = len(ciphertext) // 2
        left, right = ciphertext[:half], ciphertext[half:]
        for r in reversed(range(self.rounds)):
            left, right = (
                self._xor(right, self._round_stream(r, left, len(right))),
                left,
            )
        return left + right

    def __repr__(self):
        return "WideBlockCipher(rounds=%d)" % self.rounds


# ----------------------------------------------------------------------
# per-key cipher cache
# ----------------------------------------------------------------------

#: Cached cipher instances; dropped wholesale when full, like the one-way
#: memo — link and matrix key populations are small (one per line or per
#: machine pair), so the bound exists only to survive hostile key churn.
_CIPHER_CACHE_MAX = 1024

_feistel_cache = {}
_wide_cache = {}


def feistel_for_key(key, block_bits=RIGHTS_CHECK_BLOCK_BITS, rounds=16):
    """A shared :class:`FeistelCipher` for ``key``, key schedule built once.

    Constructing a ``FeistelCipher`` hashes ``rounds`` round keys; on the
    per-frame paths (capability sealing, scheme 1) that schedule was being
    rebuilt for every encrypt *and* decrypt.  Ciphers are stateless after
    construction, so one instance per (key, geometry) is safe to share —
    including across threads.
    """
    if isinstance(key, str):
        key = key.encode("utf-8")
    cache_key = (key, block_bits, rounds)
    cipher = _feistel_cache.get(cache_key)
    if cipher is None:
        if len(_feistel_cache) >= _CIPHER_CACHE_MAX:
            _feistel_cache.clear()
        cipher = FeistelCipher(key, block_bits=block_bits, rounds=rounds)
        _feistel_cache[cache_key] = cipher
    return cipher


def wide_cipher_for_key(key, rounds=4):
    """A shared :class:`WideBlockCipher` for ``key`` (see
    :func:`feistel_for_key`); used by the link-encryption and sealing
    paths so per-round key states are absorbed once per key, not per
    frame."""
    if isinstance(key, str):
        key = key.encode("utf-8")
    cache_key = (key, rounds)
    cipher = _wide_cache.get(cache_key)
    if cipher is None:
        if len(_wide_cache) >= _CIPHER_CACHE_MAX:
            _wide_cache.clear()
        cipher = WideBlockCipher(key, rounds=rounds)
        _wide_cache[cache_key] = cipher
    return cipher
