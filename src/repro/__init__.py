"""repro — a reproduction of "Using Sparse Capabilities in a Distributed
Operating System" (Tanenbaum, Mullender, van Renesse; ICDCS 1986).

The library rebuilds the Amoeba capability architecture in Python:

* :mod:`repro.core` — sparse capabilities, ports, and the four
  rights-protection algorithms of §2.3;
* :mod:`repro.net` — the simulated broadcast LAN, F-boxes, and the
  intruder of Fig. 1 (plus a real UDP transport);
* :mod:`repro.ipc` — the blocking RPC, server skeleton, and LOCATE;
* :mod:`repro.softprot` — §2.4 protection without F-boxes (key matrix,
  capability caches, public-key bootstrap, link encryption);
* :mod:`repro.kernel` — machines, processes, and the memory server;
* :mod:`repro.servers` — the §3 server suite (block, flat file,
  directory, multiversion, bank, charging, UNIX-fs facade);
* :mod:`repro.disk` — the virtual (optionally write-once) disk.

Quickstart::

    from repro import SimNetwork, Machine, FlatFileServer, FlatFileClient

    net = SimNetwork()
    server_machine = Machine(net)
    client_machine = Machine(net)
    files = FlatFileServer(server_machine.nic).start()
    client = FlatFileClient(client_machine.nic, files.put_port)
    cap = client.create(b"hello, sparse capabilities")
    print(client.read(cap, 0, 26))
"""

from repro.core import (
    ALL_RIGHTS,
    Capability,
    CommutativeScheme,
    EncryptedRightsScheme,
    NO_RIGHTS,
    ObjectTable,
    Port,
    PrivatePort,
    Rights,
    SimpleCheckScheme,
    XorOneWayScheme,
    scheme_by_name,
)
from repro.errors import (
    AmoebaError,
    CapabilityError,
    InvalidCapability,
    PermissionDenied,
)
from repro.ipc import Locator, ObjectServer, ServiceClient, command, trans
from repro.kernel import Machine, MemoryClient, MemoryServer
from repro.net import FBox, Intruder, Message, Nic, SimNetwork
from repro.servers import (
    BankClient,
    BankServer,
    BlockClient,
    BlockServer,
    ChargingFlatFileServer,
    DirectoryClient,
    DirectoryServer,
    FlatFileClient,
    FlatFileServer,
    MultiversionClient,
    MultiversionFileServer,
    UnixFs,
    resolve_path,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_RIGHTS",
    "AmoebaError",
    "BankClient",
    "BankServer",
    "BlockClient",
    "BlockServer",
    "Capability",
    "CapabilityError",
    "ChargingFlatFileServer",
    "CommutativeScheme",
    "DirectoryClient",
    "DirectoryServer",
    "EncryptedRightsScheme",
    "FBox",
    "FlatFileClient",
    "FlatFileServer",
    "Intruder",
    "InvalidCapability",
    "Locator",
    "Machine",
    "MemoryClient",
    "MemoryServer",
    "Message",
    "MultiversionClient",
    "MultiversionFileServer",
    "NO_RIGHTS",
    "Nic",
    "ObjectServer",
    "ObjectTable",
    "PermissionDenied",
    "Port",
    "PrivatePort",
    "Rights",
    "ServiceClient",
    "SimNetwork",
    "SimpleCheckScheme",
    "UnixFs",
    "XorOneWayScheme",
    "command",
    "resolve_path",
    "scheme_by_name",
    "trans",
]
