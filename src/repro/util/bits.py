"""Bit and byte manipulation helpers used across the capability machinery.

All wire formats in this reproduction are big-endian, matching the fixed
field layout of the paper's Fig. 2 (48-bit port, 24-bit object, 8-bit
rights, 48-bit check field).
"""

import hmac


def mask(bits):
    """Return an integer with the low ``bits`` bits set.

    >>> mask(8)
    255
    >>> mask(0)
    0
    """
    if bits < 0:
        raise ValueError("bit width must be non-negative, got %d" % bits)
    return (1 << bits) - 1


def int_to_bytes(value, length):
    """Pack a non-negative integer into exactly ``length`` big-endian bytes.

    Raises ``ValueError`` if the value does not fit (a truncating pack would
    silently weaken a check field, so overflow is always an error).
    """
    if value < 0:
        raise ValueError("cannot pack negative value %d" % value)
    if value >> (8 * length):
        raise ValueError(
            "value %#x does not fit in %d bytes" % (value, length)
        )
    return value.to_bytes(length, "big")


def bytes_to_int(data):
    """Unpack big-endian bytes into a non-negative integer."""
    return int.from_bytes(data, "big")


def xor_bytes(a, b):
    """XOR two equal-length byte strings.

    Used by the XOR-one-way rights scheme and the Feistel round mixing.
    """
    if len(a) != len(b):
        raise ValueError(
            "xor_bytes requires equal lengths, got %d and %d" % (len(a), len(b))
        )
    return bytes(x ^ y for x, y in zip(a, b))


def constant_time_eq(a, b):
    """Compare two byte strings without leaking a timing side channel.

    Capability check fields are sparse secrets: a naive early-exit compare
    would let an intruder grow a valid check field byte by byte.
    """
    return hmac.compare_digest(a, b)
