"""Small shared utilities (bit packing, constant-time comparison)."""

from repro.util.bits import (
    bytes_to_int,
    constant_time_eq,
    int_to_bytes,
    mask,
    xor_bytes,
)

__all__ = [
    "bytes_to_int",
    "constant_time_eq",
    "int_to_bytes",
    "mask",
    "xor_bytes",
]
