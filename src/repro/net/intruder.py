"""The intruder of Fig. 1: every attack the paper's threat model allows.

An intruder is an ordinary station: it owns a NIC (and therefore sits
behind an F-box it cannot bypass), it can tap the broadcast wire and
record every frame, and it can transmit frames with any header contents it
likes — except the source address, which the network stamps (§2.4).

The attacks implemented here are exactly the ones the paper discusses:

* ``attempt_get`` — GET(P) with a stolen put-port; the F-box makes this
  listen on F(P), so the victim's traffic never arrives.
* ``forge_reply`` — answer a sniffed request before the server does; this
  *is* delivered (the reply put-port is visible on the wire) and is only
  defeated by signature checking, which is why §2.2 introduces F(S).
* ``replay`` — retransmit a captured frame verbatim; the intruder's own
  F-box re-applies F to the reply/signature fields, corrupting them, but
  the destination and capability still land.
* ``steal_capability`` — rebuild a sniffed request around the intruder's
  own reply port.  Against bare F-boxes this works (capabilities are
  bearer tokens); the §2.4 key matrix defeats it because the stolen
  capability bytes only decrypt under the victim's (source, dest) key.
"""

from repro.core.ports import PrivatePort, as_port
from repro.crypto.randomsrc import RandomSource
from repro.net.nic import Nic


class Intruder:
    """A malicious station with a wiretap on the simulated LAN."""

    def __init__(self, network, rng=None):
        self.nic = Nic(network)
        self.network = network
        self.rng = rng or RandomSource()
        self.captured = []
        self._tapping = False

    @property
    def address(self):
        return self.nic.address

    # ------------------------------------------------------------------
    # passive attack: wiretapping
    # ------------------------------------------------------------------

    def start_capture(self):
        """Begin recording every frame on the wire (promiscuous mode)."""
        if not self._tapping:
            # Owned by this station: detaching the intruder's machine
            # removes the tap too (no state left behind for dead stations).
            self.network.add_tap(self._tap, owner=self.address)
            self._tapping = True

    def stop_capture(self):
        if self._tapping:
            self.network.remove_tap(self._tap)
            self._tapping = False

    def _tap(self, frame):
        self.captured.append(frame)

    def captured_requests(self):
        """Sniffed frames that look like client requests."""
        return [f for f in self.captured if not f.message.is_reply]

    def captured_replies(self):
        return [f for f in self.captured if f.message.is_reply]

    # ------------------------------------------------------------------
    # active attacks
    # ------------------------------------------------------------------

    def attempt_get(self, put_port):
        """Try to impersonate a server by doing GET on its public put-port.

        Returns the wire port actually listened on — F(P), never P —
        which is the paper's core impersonation defence.
        """
        return self.nic.listen(put_port)

    def intercepted_count(self, put_port):
        """Frames that arrived on the (useless) port from :meth:`attempt_get`."""
        count = 0
        while self.nic.poll(put_port) is not None:
            count += 1
        return count

    def forge_reply(self, request_frame, data=b"", status=0, signature=None):
        """Send a fabricated reply to a sniffed request's reply port.

        ``signature`` is the intruder's guess at the server's signature
        secret S; without the true S the F-box will emit F(guess) != F(S)
        and a signature-checking client will discard the reply.
        """
        request = request_frame.message
        forged = request.reply_to(data=data, status=status)
        if signature is not None:
            forged = forged.copy(signature=signature)
        else:
            forged = forged.copy(
                signature=PrivatePort.generate(self.rng).public
            )
        return self.nic.put(forged)

    def replay(self, frame):
        """Retransmit a captured frame through the intruder's own NIC.

        The destination port and any capability bytes are preserved; the
        reply and signature fields pass through the intruder's F-box a
        second time and are therefore corrupted (double one-waying).
        """
        return self.nic.put(frame.message)

    def steal_capability(self, request_frame, reply_secret=None):
        """Re-issue a sniffed request with the intruder's own reply port.

        Returns ``(reply_private, sent)``; the caller polls
        ``self.nic.poll(reply_private)`` for the hijacked reply.  This is
        the bearer-token theft that motivates the §2.4 protections.
        """
        reply_private = reply_secret or PrivatePort.generate(self.rng)
        self.nic.listen(reply_private)
        # Message.reply must hold the secret so the F-box emits F(secret).
        hijacked = request_frame.message.copy(reply=as_port(reply_private))
        sent = self.nic.put(hijacked)
        return reply_private, sent

    def __repr__(self):
        return "Intruder(address=%d, captured=%d frames)" % (
            self.address,
            len(self.captured),
        )
