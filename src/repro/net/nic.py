"""The network interface: GET/PUT through an F-box (§2.2).

A :class:`Nic` is one machine's attachment to the wire.  All egress goes
through :meth:`put`, which always applies the F-box transformation — there
is deliberately no other way onto the network, reproducing the paper's
"users cannot bypass" assumption.

Receiving follows the GET model: ``listen(X)`` does what the hardware
GET(X) does — computes F(X) and admits frames addressed to it.  A genuine
server passes its secret get-port G and so listens on the public put-port
P = F(G); an intruder passing P listens on the useless F(P).  Admitted
frames land in per-port FIFO queues (client replies) or are handed to a
registered handler (server request loops).
"""

from collections import deque

from repro.core.ports import as_port
from repro.net.fbox import FBox


class Nic:
    """One station on a :class:`~repro.net.network.SimNetwork`.

    Parameters
    ----------
    network:
        The shared medium to attach to.
    fbox:
        Optionally a specific :class:`FBox` (all boxes on one network must
        share the same F for ports to interoperate).
    """

    def __init__(self, network, fbox=None):
        self.fbox = fbox or FBox()
        self.network = network
        self.address = network.attach(self)
        # One sink per admitted wire port: a deque (client GET, frames
        # queue) or a callable (server GET, frames dispatch immediately).
        # A single dict keeps the admission check and delivery to one
        # lookup each on the per-frame path.
        self._sinks = {}
        self._broadcast_handlers = []
        #: Per-NIC counters (frames in/out) for experiments.
        self.sent = 0
        self.received = 0

    # ------------------------------------------------------------------
    # egress
    # ------------------------------------------------------------------

    def put(self, message, dst_machine=None):
        """PUT: transform through the F-box and transmit.

        ``dst_machine`` is used once a port has been located; ``None``
        sends a port-addressed frame that the admission filters route.
        """
        on_wire = self.fbox.transform_egress(message)
        self.sent += 1
        return self.network.send(self, on_wire, dst_machine)

    def put_owned(self, message, dst_machine=None):
        """PUT a message the caller owns outright (it was built privately
        and is never touched again): the F-box transform runs in place,
        folding away one copy.  The transformation itself is exactly
        :meth:`put`'s — there is still no untransformed path to the wire.
        """
        on_wire = self.fbox.transform_egress_owned(message)
        self.sent += 1
        return self.network.send(self, on_wire, dst_machine)

    def put_broadcast(self, message):
        """Broadcast a (transformed) frame to every station — LOCATE etc."""
        on_wire = self.fbox.transform_egress(message)
        self.sent += 1
        return self.network.broadcast(self, on_wire)

    # ------------------------------------------------------------------
    # ingress: GET registration
    # ------------------------------------------------------------------

    def listen(self, port):
        """GET: start admitting frames for F(port); returns that wire port.

        ``port`` is whatever the caller believes is a get-port.  The F-box
        one-ways it unconditionally, which is precisely why knowing a
        put-port P does not let anyone receive the server's traffic.

        The first GET for a port registers it in the network's routing
        index; the index mirrors :meth:`admits` exactly (registered iff
        admitted), which is the invariant indexed routing relies on.
        """
        wire_port = self.fbox.listen_port(as_port(port))
        if wire_port not in self._sinks:
            self._sinks[wire_port] = deque()
            self.network.register_listener(self.address, wire_port)
        return wire_port

    def unlisten(self, port):
        """Withdraw a GET (by the same value passed to :meth:`listen`)."""
        self.unlisten_wire(self.fbox.listen_port(as_port(port)))

    def serve(self, port, handler):
        """GET with a request handler: frames for F(port) invoke
        ``handler(frame)`` immediately instead of queueing.

        This models a server process blocked in GET; the simulated kernel
        runs the handler synchronously on delivery.  Frames already
        queued by an earlier listen() on the same port are the server's
        backlog: they are drained into the handler here rather than
        stranded.
        """
        wire_port = self.fbox.listen_port(as_port(port))
        backlog = self._sinks.get(wire_port)
        if backlog is None:
            self.network.register_listener(self.address, wire_port)
        self._sinks[wire_port] = handler
        if type(backlog) is deque:
            while backlog:
                handler(backlog.popleft())
        return wire_port

    def on_broadcast(self, handler):
        """Add a kernel-level broadcast handler (LOCATE, boot announce...).

        Handlers run in installation order and each sees every broadcast;
        a handler simply ignores commands that are not for it.
        """
        self._broadcast_handlers.append(handler)

    # ------------------------------------------------------------------
    # called by the network
    # ------------------------------------------------------------------

    def admits(self, port):
        """Hardware admission filter: do we have a GET outstanding for it?"""
        return port in self._sinks

    def accept(self, frame):
        """Deliver one admitted frame (called only by the network)."""
        sink = self._sinks.get(frame.message.dest)
        if sink is None:
            return False
        self.received += 1
        if type(sink) is deque:
            sink.append(frame)
        else:
            sink(frame)
        return True

    def accept_broadcast(self, frame):
        """Deliver a broadcast frame to the kernel handlers, if any."""
        if not self._broadcast_handlers:
            return False
        self.received += 1
        for handler in list(self._broadcast_handlers):
            handler(frame)
        return True

    # ------------------------------------------------------------------
    # receive side for clients
    # ------------------------------------------------------------------

    def poll(self, port):
        """Dequeue the next frame admitted for GET(port), or ``None``.

        ``port`` is the same value passed to :meth:`listen` (the secret),
        not the wire port.
        """
        return self.poll_wire(self.fbox.listen_port(as_port(port)))

    # ------------------------------------------------------------------
    # wire-port fast lane (used by trans, which holds the wire port that
    # listen() returned and need not re-derive F(secret) per operation)
    # ------------------------------------------------------------------

    def poll_wire(self, wire_port):
        """Like :meth:`poll`, keyed by the wire port listen() returned."""
        sink = self._sinks.get(wire_port)
        if sink and type(sink) is deque:
            return sink.popleft()
        return None

    def unlisten_wire(self, wire_port):
        """Like :meth:`unlisten`, keyed by the wire port listen() returned."""
        if self._sinks.pop(wire_port, None) is not None:
            self.network.unregister_listener(self.address, wire_port)

    def pending(self, port):
        """Number of queued frames for GET(port)."""
        wire_port = self.fbox.listen_port(as_port(port))
        sink = self._sinks.get(wire_port)
        return len(sink) if type(sink) is deque else 0

    def __repr__(self):
        return "Nic(address=%d, listening=%d ports)" % (
            self.address,
            len(self._sinks),
        )
