"""The network interface: GET/PUT through an F-box (§2.2).

A :class:`Nic` is one machine's attachment to the wire.  All egress goes
through :meth:`put`, which always applies the F-box transformation — there
is deliberately no other way onto the network, reproducing the paper's
"users cannot bypass" assumption.

Receiving follows the GET model: ``listen(X)`` does what the hardware
GET(X) does — computes F(X) and admits frames addressed to it.  A genuine
server passes its secret get-port G and so listens on the public put-port
P = F(G); an intruder passing P listens on the useless F(P).  Admitted
frames land in per-port FIFO queues (client replies) or are handed to a
registered handler (server request loops).
"""

from collections import deque

from repro.core.ports import as_port
from repro.net.fbox import FBox


class _BatchSink:
    """A server GET whose handler takes a *run* of frames at once.

    Registered by :meth:`Nic.serve_batch`.  Calling it with a single
    frame (the synchronous network's accept path) forwards a 1-tuple, so
    batch servers work identically under both delivery disciplines; the
    event loop detects the type and hands over whole queue runs.
    """

    __slots__ = ("batch",)

    def __init__(self, batch):
        self.batch = batch

    def __call__(self, frame):
        self.batch((frame,))


class Nic:
    """One station on a :class:`~repro.net.network.SimNetwork`.

    Parameters
    ----------
    network:
        The shared medium to attach to.
    fbox:
        Optionally a specific :class:`FBox` (all boxes on one network must
        share the same F for ports to interoperate).
    """

    #: Capability attribute, checked once by the RPC layer instead of
    #: probing with TypeError per poll.  Class default False: on the
    #: synchronous and deferred networks poll_wire takes no timeout — the
    #: simulator delivers during put()/pump(), never later.  Attaching to
    #: a DES network overrides it per instance: there a timed poll
    #: *consumes virtual time*, stepping the event heap until the frame
    #: arrives or the virtual deadline passes.
    supports_poll_timeout = False

    def __init__(self, network, fbox=None):
        self.fbox = fbox or FBox()
        self.network = network
        self.address = network.attach(self)
        #: The network's VirtualClock in DES mode, else None.  Read once
        #: here — a network's delivery discipline is fixed at construction.
        self.clock = getattr(network, "clock", None)
        if self.clock is not None:
            self.supports_poll_timeout = True
        # One sink per admitted wire port: a deque (client GET, frames
        # queue) or a callable (server GET, frames dispatch immediately).
        # A single dict keeps the admission check and delivery to one
        # lookup each on the per-frame path.
        self._sinks = {}
        self._broadcast_handlers = []
        #: Per-NIC counters (frames in/out) for experiments.
        self.sent = 0
        self.received = 0

    # ------------------------------------------------------------------
    # egress
    # ------------------------------------------------------------------

    def put(self, message, dst_machine=None):
        """PUT: transform through the F-box and transmit.

        ``dst_machine`` is used once a port has been located; ``None``
        sends a port-addressed frame that the admission filters route.
        """
        on_wire = self.fbox.transform_egress(message)
        self.sent += 1
        return self.network.send(self, on_wire, dst_machine)

    def put_owned(self, message, dst_machine=None):
        """PUT a message the caller owns outright (it was built privately
        and is never touched again): the F-box transform runs in place,
        folding away one copy.  The transformation itself is exactly
        :meth:`put`'s — there is still no untransformed path to the wire.
        """
        on_wire = self.fbox.transform_egress_owned(message)
        self.sent += 1
        return self.network.send(self, on_wire, dst_machine)

    def put_owned_bulk(self, messages, dst_machine=None):
        """PUT a batch of privately built same-destination messages.

        The egress half of a pipelined issue: every message is F-box
        transformed in place (the identical, unconditional transformation
        of :meth:`put_owned`) and the batch goes to the network in one
        :meth:`~repro.net.network.SimNetwork.send_bulk` call.  Returns
        the number of frames the network accepted.
        """
        transform = self.fbox.transform_egress_owned
        on_wire = [transform(m) for m in messages]
        self.sent += len(on_wire)
        return self.network.send_bulk(self, on_wire, dst_machine)

    def put_owned_unicast_bulk(self, pairs):
        """PUT a batch of privately built unicast (message, machine)
        pairs — a batch server's reply egress.  Each message is F-box
        transformed in place exactly as :meth:`put_owned` would."""
        transform = self.fbox.transform_egress_owned
        on_wire = [(transform(m), dst) for m, dst in pairs]
        self.sent += len(on_wire)
        return self.network.send_unicast_bulk(self, on_wire)

    def put_many(self, messages, dst_machine=None):
        """PUT a batch of messages; returns how many were accepted.

        Each message goes through the same F-box transformation as
        :meth:`put` — batching amortizes only the per-call bookkeeping,
        never the transform.
        """
        transform = self.fbox.transform_egress
        send = self.network.send
        accepted = 0
        count = 0
        for message in messages:
            count += 1
            if send(self, transform(message), dst_machine):
                accepted += 1
        self.sent += count
        return accepted

    def put_broadcast(self, message):
        """Broadcast a (transformed) frame to every station — LOCATE etc."""
        on_wire = self.fbox.transform_egress(message)
        self.sent += 1
        return self.network.broadcast(self, on_wire)

    def pump(self, budget=None):
        """Dispatch deferred deliveries on the attached network, if any.

        Stations expose this so protocol code (``trans``, ``trans_many``)
        can drive a deferred network without knowing the topology; on a
        synchronous network it is a no-op returning 0.
        """
        return self.network.pump(budget)

    # ------------------------------------------------------------------
    # ingress: GET registration
    # ------------------------------------------------------------------

    def listen(self, port):
        """GET: start admitting frames for F(port); returns that wire port.

        ``port`` is whatever the caller believes is a get-port.  The F-box
        one-ways it unconditionally, which is precisely why knowing a
        put-port P does not let anyone receive the server's traffic.

        The first GET for a port registers it in the network's routing
        index; the index mirrors :meth:`admits` exactly (registered iff
        admitted), which is the invariant indexed routing relies on.
        """
        wire_port = self.fbox.listen_port(as_port(port))
        if wire_port not in self._sinks:
            self._sinks[wire_port] = deque()
            self.network.register_listener(self.address, wire_port)
        return wire_port

    def listen_fresh(self, ports):
        """Batch GET on a set of fresh (just-drawn) ports.

        The ingress half of a pipelined issue: one call admits every
        reply port of a batch, with a single routing-index registration.
        Each port gets the identical treatment :meth:`listen` gives it —
        one-wayed through the F-box, a queue sink, an index entry — so
        the index-mirrors-admission invariant is untouched.  Returns the
        wire ports, or None if two ports collide (callers then fall back
        to issuing one at a time; with 48-bit random ports this is a
        when-the-sun-burns-out case, but silently sharing a sink would
        cross two transactions' replies).
        """
        sinks = self._sinks
        wires = self.fbox.one_way_batch(ports)
        fresh = []
        for wire_port in wires:
            if wire_port in sinks:
                for seen in fresh:
                    del sinks[seen]
                return None
            sinks[wire_port] = deque()
            fresh.append(wire_port)
        self.network.register_listeners(self.address, fresh)
        return wires

    def take_many(self, wire_ports):
        """Withdraw a batch of GETs, returning each port's queued frames.

        The collect half of a pipelined transaction batch: for every wire
        port, its sink deque (or None if it was not listened) — with the
        GETs withdrawn and the routing index pruned in one batch call.
        """
        sinks = self._sinks
        taken = [sinks.pop(w, None) for w in wire_ports]
        self.network.unregister_listeners(
            self.address,
            [w for w, sink in zip(wire_ports, taken) if sink is not None],
        )
        return taken

    def unlisten(self, port):
        """Withdraw a GET (by the same value passed to :meth:`listen`)."""
        self.unlisten_wire(self.fbox.listen_port(as_port(port)))

    def serve(self, port, handler):
        """GET with a request handler: frames for F(port) invoke
        ``handler(frame)`` immediately instead of queueing.

        This models a server process blocked in GET; the simulated kernel
        runs the handler synchronously on delivery.  Frames already
        queued by an earlier listen() on the same port are the server's
        backlog: they are drained into the handler here rather than
        stranded.
        """
        wire_port = self.fbox.listen_port(as_port(port))
        backlog = self._sinks.get(wire_port)
        if backlog is None:
            self.network.register_listener(self.address, wire_port)
        self._sinks[wire_port] = handler
        if type(backlog) is deque:
            while backlog:
                handler(backlog.popleft())
        return wire_port

    def serve_batch(self, port, batch_handler):
        """GET with a batch request handler: the event loop delivers whole
        queue runs as ``batch_handler(frames)`` — interrupt coalescing
        for servers under heavy traffic.  On a synchronous network each
        frame arrives as a batch of one, so semantics do not fork.
        """
        return self.serve(port, _BatchSink(batch_handler))

    def on_broadcast(self, handler):
        """Add a kernel-level broadcast handler (LOCATE, boot announce...).

        Handlers run in installation order and each sees every broadcast;
        a handler simply ignores commands that are not for it.
        """
        self._broadcast_handlers.append(handler)

    # ------------------------------------------------------------------
    # called by the network
    # ------------------------------------------------------------------

    def admits(self, port):
        """Hardware admission filter: do we have a GET outstanding for it?"""
        return port in self._sinks

    def accept(self, frame):
        """Deliver one admitted frame (called only by the network)."""
        sink = self._sinks.get(frame.message.dest)
        if sink is None:
            return False
        self.received += 1
        if type(sink) is deque:
            sink.append(frame)
        else:
            sink(frame)
        return True

    def accept_run(self, dest, frames):
        """Deliver a run of same-port frames (called only by the event
        loop when this station is the port's lone listener).

        The batch mirror of :meth:`accept`: queue sinks take the whole
        run in one extend, batch sinks get it as a single call, and
        per-frame handlers re-resolve the sink each frame so a handler
        that withdraws its GET mid-run loses the remainder exactly as it
        would frame-by-frame.  Returns the number delivered.
        """
        sink = self._sinks.get(dest)
        if sink is None:
            return 0
        count = len(frames)
        if type(sink) is deque:
            sink.extend(frames)
            self.received += count
            return count
        if type(sink) is _BatchSink:
            self.received += count
            sink.batch(frames)
            return count
        delivered = 0
        sinks = self._sinks
        for frame in frames:
            sink = sinks.get(dest)
            if sink is None:
                break
            self.received += 1
            delivered += 1
            if type(sink) is deque:
                sink.append(frame)
            else:
                sink(frame)
        return delivered

    def accept_broadcast(self, frame):
        """Deliver a broadcast frame to the kernel handlers, if any."""
        if not self._broadcast_handlers:
            return False
        self.received += 1
        for handler in list(self._broadcast_handlers):
            handler(frame)
        return True

    # ------------------------------------------------------------------
    # receive side for clients
    # ------------------------------------------------------------------

    def poll(self, port, timeout=None):
        """Dequeue the next frame admitted for GET(port), or ``None``.

        ``port`` is the same value passed to :meth:`listen` (the secret),
        not the wire port.  ``timeout`` is meaningful only on a DES
        network, where it is a *virtual* duration (see
        :meth:`poll_wire`); elsewhere it is ignored — delivery happens
        during put()/pump(), never later, so there is nothing to wait
        for.
        """
        return self.poll_wire(self.fbox.listen_port(as_port(port)), timeout)

    # ------------------------------------------------------------------
    # wire-port fast lane (used by trans, which holds the wire port that
    # listen() returned and need not re-derive F(secret) per operation)
    # ------------------------------------------------------------------

    def poll_wire(self, wire_port, timeout=None):
        """Like :meth:`poll`, keyed by the wire port listen() returned.

        On a DES network a positive ``timeout`` blocks *in virtual time*:
        the event heap is stepped (delivering frames, advancing the
        clock) until a frame lands on this port or the next arrival lies
        beyond ``clock.now + timeout`` — a timed-out wait then advances
        the clock to its deadline, so waiting costs simulated time
        exactly as the paper's blocking GET costs real time.  Re-entrant
        use (a server handler polling mid-delivery) is safe: nested
        transactions simply consume their share of virtual time deeper
        in the stack.
        """
        sink = self._sinks.get(wire_port)
        if sink and type(sink) is deque:
            return sink.popleft()
        clock = self.clock
        if clock is None or timeout is None or timeout <= 0:
            return None
        deadline = clock.now + timeout
        loop = self.network.loop
        sinks = self._sinks
        while loop.step(until=deadline):
            # Re-resolve per event: the frame may have landed here, and a
            # handler running inside step() may have changed the sink.
            sink = sinks.get(wire_port)
            if sink and type(sink) is deque:
                return sink.popleft()
        clock.advance_to(deadline)
        return None

    def unlisten_wire(self, wire_port):
        """Like :meth:`unlisten`, keyed by the wire port listen() returned."""
        if self._sinks.pop(wire_port, None) is not None:
            self.network.unregister_listener(self.address, wire_port)

    def pending(self, port):
        """Number of queued frames for GET(port)."""
        wire_port = self.fbox.listen_port(as_port(port))
        sink = self._sinks.get(wire_port)
        return len(sink) if type(sink) is deque else 0

    def __repr__(self):
        return "Nic(address=%d, listening=%d ports)" % (
            self.address,
            len(self._sinks),
        )
